"""Counters and latency histograms derived from completed spans.

The :class:`MetricsRegistry` is the aggregate view over the tracer's
span stream: per-VM / per-function call counts, error counts, sync/async
split, payload bytes and latency distributions, plus per-layer time.
It subsumes the router's ad-hoc ``VMMetrics`` — feed a router's metrics
dict through :meth:`MetricsRegistry.absorb_router` to fold its
verification-level counters (rejections, rate delay, resource
estimates) into the same per-VM view.

Layer attribution uses *self time* (a span's duration minus its direct
children's), so nested spans of the same layer — the ``dispatch`` span
around a server stub span — are not double counted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional

from repro.telemetry.histogram import LogHistogram
from repro.telemetry.tracer import Span

#: raw samples kept per histogram before degrading to streaming-only;
#: below this, quantiles are exact (interpolated), above it they come
#: from the log-bucketed histogram within its documented error bound
EXACT_SAMPLE_LIMIT = 512


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _pow2_us_label(seconds: float) -> str:
    micros = seconds * 1e6
    if micros <= 1.0:
        return "<=1us"
    exponent = math.ceil(math.log2(micros))
    return f"<={2 ** exponent}us"


class LatencyHistogram:
    """A latency distribution: exact while small, streaming beyond.

    Every sample is folded into a :class:`LogHistogram` (O(1),
    bounded memory, exact ``merge`` across VMs/devices/functions).  The
    first ``exact_limit`` raw samples are additionally kept verbatim so
    small distributions answer quantiles exactly (linear interpolation,
    the seed's convention); past the limit the raw list is dropped and
    quantiles come from the log-bucketed histogram, within its
    documented relative-error bound (see
    :mod:`repro.telemetry.histogram`).
    """

    __slots__ = ("histogram", "samples", "exact_limit")

    def __init__(self, exact_limit: int = EXACT_SAMPLE_LIMIT) -> None:
        self.histogram = LogHistogram()
        self.exact_limit = exact_limit
        #: raw samples, or None once the exact path has been spilled
        self.samples: Optional[List[float]] = []

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        self.histogram.record(seconds)
        if self.samples is not None:
            self.samples.append(seconds)
            if len(self.samples) > self.exact_limit:
                self.samples = None

    @property
    def exact(self) -> bool:
        """True while quantiles are computed from raw samples."""
        return self.samples is not None

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total(self) -> float:
        return self.histogram.total

    @property
    def mean(self) -> float:
        return self.histogram.mean

    @property
    def max(self) -> float:
        return self.histogram.max

    def quantile(self, q: float) -> float:
        if self.samples is not None:
            return percentile(self.samples, q)
        return self.histogram.quantile(q)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` in; bucket counts merge exactly.  Returns self.

        The exact path survives only while the combined sample count
        stays within ``exact_limit``; otherwise the merged histogram
        answers quantiles from the (exactly merged) bucket counts.
        """
        self.histogram.merge(other.histogram)
        if (self.samples is not None and other.samples is not None
                and len(self.samples) + len(other.samples)
                <= self.exact_limit):
            self.samples.extend(other.samples)
        else:
            self.samples = None
        return self

    @classmethod
    def merged(
        cls, histograms: Iterable["LatencyHistogram"]
    ) -> "LatencyHistogram":
        result = cls()
        for histogram in histograms:
            result.merge(histogram)
        return result

    def buckets(self) -> Dict[str, int]:
        """Counts per power-of-two microsecond bucket (``<=1us`` ...).

        Exact while raw samples are held; afterwards each log-bucket's
        count lands in the power-of-two bucket of its representative
        value (geometric midpoint) — same labels, bounded memory.
        """
        counts: Dict[str, int] = {}
        if self.samples is not None:
            for seconds in self.samples:
                label = _pow2_us_label(seconds)
                counts[label] = counts.get(label, 0) + 1
            return counts
        log = self.histogram
        if log.underflow:
            counts["<=1us"] = log.underflow
        for index in sorted(log.counts):
            low, high = log._bucket_bounds(index)
            label = _pow2_us_label(math.sqrt(low * high))
            counts[label] = counts.get(label, 0) + log.counts[index]
        return counts


@dataclass
class FunctionMetrics:
    """Per-(VM, function) aggregate derived from ``function`` spans."""

    function: str
    calls: int = 0
    errors: int = 0
    sync_calls: int = 0
    async_calls: int = 0
    payload_bytes: int = 0
    #: retransmissions of this function's timed-out frames
    retries: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def total_time(self) -> float:
        return self.latency.total


@dataclass
class VMTelemetry:
    """Per-VM aggregate across all of that VM's functions and layers."""

    vm_id: str
    functions: Dict[str, FunctionMetrics] = field(default_factory=dict)
    #: layer → span count (completed op spans attributed to this VM)
    layer_spans: Dict[str, int] = field(default_factory=dict)
    #: router-level counters absorbed from the router's VMMetrics
    rejected: int = 0
    rate_delay: float = 0.0
    #: commands answered server-lost because the VM's worker crashed
    server_lost: int = 0
    resources: Dict[str, float] = field(default_factory=dict)
    #: guest-runtime recovery counters (absorbed from the runtimes)
    retries: int = 0
    giveups: int = 0
    #: transfer-cache counters (absorbed from the router's VMMetrics)
    xfer_hits: int = 0
    xfer_misses: int = 0
    xfer_bytes_elided: int = 0
    #: SLO breach events attributed to this VM (absorbed from a monitor)
    slo_breaches: int = 0

    def function_metrics(self, function: str) -> FunctionMetrics:
        entry = self.functions.get(function)
        if entry is None:
            entry = self.functions[function] = FunctionMetrics(function)
        return entry

    @property
    def calls(self) -> int:
        return sum(f.calls for f in self.functions.values())

    @property
    def errors(self) -> int:
        return sum(f.errors for f in self.functions.values())

    @property
    def total_time(self) -> float:
        return sum(f.total_time for f in self.functions.values())


@dataclass
class DeviceTelemetry:
    """Per-pool-member aggregate: who runs there and how busy it is."""

    device_id: str
    device_class: str = ""
    compute_scale: float = 1.0
    #: wall-clock busy time across the member's native devices
    busy_time: float = 0.0
    #: latest device-timeline value observed (utilization horizon)
    horizon: float = 0.0
    #: busy time per native API on this member
    per_api: Dict[str, float] = field(default_factory=dict)
    #: VMs resident at the last absorption (snapshot, not a delta)
    vms: List[str] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        return self.busy_time / self.horizon if self.horizon else 0.0


class MetricsRegistry:
    """Aggregates completed spans into per-VM / per-function metrics.

    Attach to a tracer (``Tracer(metrics=registry)``) for streaming
    ingestion, or build one after the fact with :meth:`from_spans`.
    """

    def __init__(self) -> None:
        self.vms: Dict[str, VMTelemetry] = {}
        #: per-pool-member utilization (absorbed from a DevicePool)
        self.devices: Dict[str, DeviceTelemetry] = {}
        # per-source counter snapshots: absorbing the same source twice
        # adds only the delta since the previous absorption, so repeated
        # admin_report() calls cannot double count (and sources whose
        # counters keep growing between absorptions stay correct)
        self._absorbed: Dict[Hashable, Dict[str, float]] = {}

    def _delta(self, key: Hashable, current: Dict[str, float]
               ) -> Dict[str, float]:
        previous = self._absorbed.get(key, {})
        self._absorbed[key] = current
        return {name: value - previous.get(name, 0)
                for name, value in current.items()}

    def vm(self, vm_id: str) -> VMTelemetry:
        entry = self.vms.get(vm_id)
        if entry is None:
            entry = self.vms[vm_id] = VMTelemetry(vm_id)
        return entry

    def ingest(self, span: Span) -> None:
        """Fold one completed span into the aggregates."""
        if span.vm_id is None or not span.finished:
            return
        entry = self.vm(span.vm_id)
        if span.kind == "function":
            stats = entry.function_metrics(span.name)
            stats.calls += 1
            stats.latency.record(span.duration)
            if span.attrs.get("error"):
                stats.errors += 1
            mode = span.attrs.get("mode")
            if mode == "async":
                stats.async_calls += 1
            elif mode == "sync":
                stats.sync_calls += 1
            stats.payload_bytes += int(span.attrs.get("payload_bytes", 0))
        elif span.kind == "op":
            entry.layer_spans[span.layer] = (
                entry.layer_spans.get(span.layer, 0) + 1
            )
            if span.name == "retry" and span.function:
                entry.function_metrics(span.function).retries += 1

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "MetricsRegistry":
        registry = cls()
        for span in spans:
            registry.ingest(span)
        return registry

    def absorb_router(self, router_metrics: Dict[str, Any]) -> None:
        """Fold the router's per-VM ``VMMetrics`` into this registry.

        This is what makes the registry a superset of the router's
        ad-hoc accounting: rejections, rate-limit delay, and resource
        estimates land next to the span-derived counters.  Absorption is
        idempotent per source VM: repeated calls (two ``admin_report()``
        invocations, say) fold in only what changed since the last one.
        """
        for vm_id, metrics in router_metrics.items():
            entry = self.vm(vm_id)
            snapshot = {
                "rejected": metrics.rejected,
                "rate_delay": metrics.rate_delay,
                "server_lost": getattr(metrics, "server_lost", 0),
                "xfer_hits": getattr(metrics, "xfer_hits", 0),
                "xfer_misses": getattr(metrics, "xfer_misses", 0),
                "xfer_bytes_elided": getattr(
                    metrics, "xfer_bytes_elided", 0
                ),
            }
            for resource, amount in metrics.resources.items():
                snapshot[f"resource:{resource}"] = amount
            delta = self._delta(("router", vm_id), snapshot)
            entry.rejected += int(delta["rejected"])
            entry.rate_delay += delta["rate_delay"]
            entry.server_lost += int(delta["server_lost"])
            entry.xfer_hits += int(delta["xfer_hits"])
            entry.xfer_misses += int(delta["xfer_misses"])
            entry.xfer_bytes_elided += int(delta["xfer_bytes_elided"])
            for name, amount in delta.items():
                if name.startswith("resource:"):
                    resource = name[len("resource:"):]
                    entry.resources[resource] = (
                        entry.resources.get(resource, 0.0) + amount
                    )

    def absorb_runtime(self, vm_id: str, runtime: Any) -> None:
        """Fold one guest runtime's recovery counters into this registry.

        VM-level ``retries``/``giveups`` come from the runtimes (they
        exist with tracing off); per-function retry counts come from
        ingested ``retry`` spans when tracing is on.  Idempotent per
        (VM, API) source, like :meth:`absorb_router`.
        """
        entry = self.vm(vm_id)
        key = ("runtime", vm_id, getattr(runtime, "api_name", None))
        delta = self._delta(key, {
            "retries": runtime.retries,
            "giveups": runtime.giveups,
        })
        entry.retries += int(delta["retries"])
        entry.giveups += int(delta["giveups"])

    def absorb_pool(self, pool: Any) -> None:
        """Fold a :class:`~repro.hypervisor.pool.DevicePool`'s member
        utilization into this registry.

        Busy time is absorbed as a delta per (member, API) source —
        idempotent like :meth:`absorb_router` — while the resident-VM
        list and the utilization horizon are point-in-time snapshots.
        """
        for member in pool.devices:
            entry = self.devices.get(member.device_id)
            if entry is None:
                entry = self.devices[member.device_id] = DeviceTelemetry(
                    device_id=member.device_id,
                    device_class=member.device_class.name,
                    compute_scale=member.device_class.compute_scale,
                )
            entry.vms = sorted(member.resident)
            for api, native in member._native.items():
                busy = float(getattr(native, "busy_time", 0.0))
                horizon = float(getattr(native, "timeline", 0.0))
                delta = self._delta(
                    ("pool", member.device_id, api), {"busy": busy}
                )
                entry.busy_time += delta["busy"]
                entry.per_api[api] = (
                    entry.per_api.get(api, 0.0) + delta["busy"]
                )
                entry.horizon = max(entry.horizon, horizon)

    def absorb_slo(self, monitor: Any) -> None:
        """Fold an SLO monitor's per-VM breach counts into this registry.

        Idempotent: repeated absorption of the same monitor adds only
        breaches raised since the previous call.
        """
        for vm_id, breaches in monitor.breaches_by_vm().items():
            entry = self.vm(vm_id)
            delta = self._delta(("slo", vm_id), {"breaches": breaches})
            entry.slo_breaches += int(delta["breaches"])


# ---------------------------------------------------------------------------
# span-tree time attribution
# ---------------------------------------------------------------------------


def self_times(spans: Iterable[Span]) -> Dict[int, float]:
    """Each span's *self* time: duration minus direct children's.

    Clipped at zero — overlapping children (an in-order device absorbing
    a queued op early) cannot make a parent's own time negative.
    """
    materialized = [s for s in spans if s.finished]
    child_total: Dict[Optional[int], float] = {}
    for span in materialized:
        child_total[span.parent_id] = (
            child_total.get(span.parent_id, 0.0) + span.duration
        )
    return {
        span.span_id: max(0.0, span.duration
                          - child_total.get(span.span_id, 0.0))
        for span in materialized
    }


def breakdown(
    spans: Iterable[Span],
    key: Callable[[Span], Hashable],
) -> Dict[Hashable, float]:
    """Self time summed by an arbitrary span key.

    ``breakdown(spans, lambda s: (s.vm_id, s.layer))`` answers "where
    did each VM's virtual time go, per layer" without double counting
    nested spans.  Container spans (``vm``/``api``) are excluded — they
    overlap everything.
    """
    materialized = [
        s for s in spans if s.finished and s.kind not in ("vm", "api")
    ]
    own = self_times(materialized)
    result: Dict[Hashable, float] = {}
    for span in materialized:
        bucket = key(span)
        result[bucket] = result.get(bucket, 0.0) + own[span.span_id]
    return result
