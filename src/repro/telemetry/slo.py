"""Service-level objectives over the virtual clock.

An :class:`SLOTarget` names a population of requests (per-VM and
per-function ``fnmatch`` patterns) and what "good" means for it: a
latency threshold, error-free completion, or both.  The fraction of
good requests must stay at or above ``objective``; the complement
``1 - objective`` is the **error budget**.

The :class:`SLOMonitor` evaluates targets continuously with
multi-window **burn rates** (the Google SRE alerting construction): a
window's burn rate is ``bad_fraction / error_budget`` — 1.0 means the
budget is being consumed exactly at the sustainable rate, 10 means ten
times too fast.  Each :class:`BurnRateWindow` pairs a *long* window
(evidence the problem is real) with a *short* window (evidence it is
still happening); a breach fires only when **both** exceed
``max_burn_rate``, and re-arms once the long window recovers, so a
single burst raises one event rather than a stream.

All windows are measured in *virtual* seconds on the deterministic
clock, so SLO evaluation is reproducible run-to-run.  Recording is
O(#matching targets) amortized per request (sliding-window counters,
no re-scans), cheap enough to leave on under load sweeps.
"""

from __future__ import annotations

import fnmatch
import json
from collections import deque
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Tuple)


class SLOError(Exception):
    """Invalid SLO target or target-file contents."""


@dataclass(frozen=True)
class BurnRateWindow:
    """A (long, short) window pair with its burn-rate threshold."""

    long_window: float
    short_window: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.long_window <= 0 or self.short_window <= 0:
            raise SLOError("burn-rate windows must be positive")
        if self.short_window > self.long_window:
            raise SLOError(
                f"short window {self.short_window} exceeds long window "
                f"{self.long_window}"
            )
        if self.max_burn_rate <= 0:
            raise SLOError("max_burn_rate must be positive")


#: default window pairs, in virtual seconds: a fast-burn pair that
#: catches sharp regressions and a slow-burn pair for sustained leaks
#: (the classic 1h/5m + 6h/30m ladder, scaled to virtual-run length)
DEFAULT_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow(long_window=0.100, short_window=0.010,
                   max_burn_rate=10.0),
    BurnRateWindow(long_window=0.500, short_window=0.050,
                   max_burn_rate=2.0),
)


@dataclass(frozen=True)
class SLOTarget:
    """What a population of requests promises.

    A request is *good* when it completed without error and, if
    ``latency`` is set, within ``latency`` virtual seconds.  At least
    ``objective`` of requests must be good.
    """

    name: str
    vm: str = "*"
    function: str = "*"
    #: latency threshold in virtual seconds (None: error-rate only)
    latency: Optional[float] = None
    objective: float = 0.999
    windows: Tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise SLOError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.latency is not None and self.latency <= 0:
            raise SLOError("latency threshold must be positive")
        if not self.windows:
            raise SLOError(f"target {self.name!r} has no windows")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def matches(self, vm_id: str, function: str) -> bool:
        return (fnmatch.fnmatchcase(vm_id, self.vm)
                and fnmatch.fnmatchcase(function or "", self.function))

    def is_good(self, latency: float, error: bool) -> bool:
        if error:
            return False
        return self.latency is None or latency <= self.latency


@dataclass
class BreachEvent:
    """One SLO breach: both windows of a pair burned too fast."""

    time: float
    target: str
    vm_id: str
    window: BurnRateWindow
    burn_long: float
    burn_short: float


class _SlidingWindow:
    """Good/bad counts over the trailing ``span`` virtual seconds."""

    __slots__ = ("span", "entries", "total", "bad")

    def __init__(self, span: float) -> None:
        self.span = span
        self.entries: Deque[Tuple[float, bool]] = deque()
        self.total = 0
        self.bad = 0

    def add(self, now: float, good: bool) -> None:
        self.entries.append((now, good))
        self.total += 1
        if not good:
            self.bad += 1
        horizon = now - self.span
        while self.entries and self.entries[0][0] < horizon:
            _, was_good = self.entries.popleft()
            self.total -= 1
            if not was_good:
                self.bad -= 1

    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0


class _TargetState:
    """Per-(target, VM) burn-rate state."""

    __slots__ = ("target", "vm_id", "windows", "armed",
                 "good", "total")

    def __init__(self, target: SLOTarget, vm_id: str) -> None:
        self.target = target
        self.vm_id = vm_id
        # per pair: (long window, short window, armed?)
        self.windows: List[Tuple[_SlidingWindow, _SlidingWindow]] = [
            (_SlidingWindow(w.long_window), _SlidingWindow(w.short_window))
            for w in target.windows
        ]
        self.armed = [True] * len(target.windows)
        self.good = 0
        self.total = 0

    def observe(self, now: float, good: bool) -> List[BreachEvent]:
        self.total += 1
        if good:
            self.good += 1
        budget = self.target.error_budget
        events: List[BreachEvent] = []
        for i, pair in enumerate(self.target.windows):
            long_win, short_win = self.windows[i]
            long_win.add(now, good)
            short_win.add(now, good)
            burn_long = long_win.bad_fraction() / budget
            burn_short = short_win.bad_fraction() / budget
            firing = (burn_long > pair.max_burn_rate
                      and burn_short > pair.max_burn_rate)
            if firing and self.armed[i]:
                self.armed[i] = False
                events.append(BreachEvent(
                    time=now, target=self.target.name, vm_id=self.vm_id,
                    window=pair, burn_long=burn_long,
                    burn_short=burn_short,
                ))
            elif not firing and burn_long <= pair.max_burn_rate:
                # long window recovered: re-arm for the next episode
                self.armed[i] = True
        return events


class SLOMonitor:
    """Streams request outcomes through a set of :class:`SLOTarget`.

    Call :meth:`record` once per completed request with the request's
    virtual completion time; breach events accumulate in
    :attr:`events` and are pushed to registered callbacks (and, when a
    flight recorder is active, raised as post-mortem incidents).
    """

    def __init__(self, targets: Iterable[SLOTarget]) -> None:
        self.targets = list(targets)
        self.events: List[BreachEvent] = []
        self._states: Dict[Tuple[int, str], _TargetState] = {}
        self._callbacks: List[Callable[[BreachEvent], None]] = []

    def on_breach(self, callback: Callable[[BreachEvent], None]) -> None:
        self._callbacks.append(callback)

    def record(self, vm_id: str, function: str, latency: float,
               error: bool, now: float) -> List[BreachEvent]:
        """Observe one completed request; returns any new breaches."""
        raised: List[BreachEvent] = []
        for index, target in enumerate(self.targets):
            if not target.matches(vm_id, function):
                continue
            key = (index, vm_id)
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _TargetState(target, vm_id)
            good = target.is_good(latency, error)
            raised.extend(state.observe(now, good))
        if raised:
            self.events.extend(raised)
            for event in raised:
                for callback in self._callbacks:
                    callback(event)
                self._flightrec_incident(event)
        return raised

    def _flightrec_incident(self, event: BreachEvent) -> None:
        from repro.telemetry import flightrec

        recorder = flightrec.active()
        if recorder.enabled:
            recorder.incident(
                "slo-breach", now=event.time, target=event.target,
                vm_id=event.vm_id, burn_long=event.burn_long,
                burn_short=event.burn_short,
            )

    # -- reporting -----------------------------------------------------------

    def breaches_by_vm(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.vm_id] = counts.get(event.vm_id, 0) + 1
        return counts

    @property
    def breached(self) -> bool:
        return bool(self.events)

    def summary(self) -> List[Dict[str, Any]]:
        """Per-(target, VM) lifetime compliance + breach counts."""
        rows: List[Dict[str, Any]] = []
        for (index, vm_id), state in sorted(
                self._states.items(), key=lambda kv: (kv[0][0], kv[0][1])):
            target = self.targets[index]
            breaches = sum(
                1 for e in self.events
                if e.target == target.name and e.vm_id == vm_id
            )
            rows.append({
                "target": target.name,
                "vm": vm_id,
                "objective": target.objective,
                "total": state.total,
                "good": state.good,
                "good_fraction": (state.good / state.total
                                  if state.total else 1.0),
                "compliant": (state.total == 0
                              or state.good / state.total
                              >= target.objective),
                "breaches": breaches,
            })
        return rows


# ---------------------------------------------------------------------------
# target files and offline evaluation
# ---------------------------------------------------------------------------


def _parse_window(data: Dict[str, Any]) -> BurnRateWindow:
    try:
        return BurnRateWindow(
            long_window=float(data["long"]),
            short_window=float(data["short"]),
            max_burn_rate=float(data["max_burn_rate"]),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise SLOError(f"malformed burn-rate window {data!r}: {err}") from err


def parse_slo_targets(data: Dict[str, Any]) -> List[SLOTarget]:
    """Build targets from a parsed target-file dict (see docs)."""
    raw_targets = data.get("targets")
    if not isinstance(raw_targets, list) or not raw_targets:
        raise SLOError('target file needs a non-empty "targets" list')
    targets: List[SLOTarget] = []
    for raw in raw_targets:
        if not isinstance(raw, dict) or "name" not in raw:
            raise SLOError(f'target entry missing "name": {raw!r}')
        latency = None
        if raw.get("latency_us") is not None:
            latency = float(raw["latency_us"]) * 1e-6
        windows = DEFAULT_WINDOWS
        if raw.get("windows"):
            windows = tuple(_parse_window(w) for w in raw["windows"])
        targets.append(SLOTarget(
            name=str(raw["name"]),
            vm=str(raw.get("vm", "*")),
            function=str(raw.get("function", "*")),
            latency=latency,
            objective=float(raw.get("objective", 0.999)),
            windows=windows,
        ))
    return targets


def load_slo_targets(path: str) -> List[SLOTarget]:
    """Parse a JSON SLO target file into :class:`SLOTarget` objects."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as err:
            raise SLOError(f"{path}: not valid JSON: {err}") from err
    if not isinstance(data, dict):
        raise SLOError(f"{path}: target file must be a JSON object")
    return parse_slo_targets(data)


def evaluate_trace(spans: Iterable[Any],
                   targets: Iterable[SLOTarget]) -> SLOMonitor:
    """Replay a recorded trace's function spans through a fresh monitor.

    Spans are replayed in completion order, which is what the sliding
    windows assume; container (vm/api) and op spans are skipped.
    """
    monitor = SLOMonitor(targets)
    completed = [
        s for s in spans
        if s.finished and s.kind == "function" and s.vm_id is not None
    ]
    completed.sort(key=lambda s: s.end)
    for span in completed:
        monitor.record(
            vm_id=span.vm_id,
            function=span.name,
            latency=span.duration,
            error=bool(span.attrs.get("error")),
            now=span.end,
        )
    return monitor
