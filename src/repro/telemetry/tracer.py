"""Hierarchical spans keyed to the virtual clock.

AvA's architectural claim is *recovered interposition*: every forwarded
call crosses the hypervisor router.  The tracer makes that path visible
— each guest-stub invocation opens a ``function`` span, and every layer
it crosses (marshal, transport, router, API server, simulated device)
records child spans with virtual-time start/end and structured
attributes.  Trace context propagates the way it would in a real
deployment: the guest stamps ``(trace_id, span_id)`` into the
:class:`~repro.remoting.codec.Command` wire format and the host-side
layers parent their spans on the id they received, not on any shared
in-process state.

The default tracer is a no-op singleton (:data:`NOOP`): instrumentation
sites pay one attribute check and never touch a clock, so virtual-time
results with tracing off are bit-identical to an uninstrumented build.
Install a real :class:`Tracer` with :func:`install` or the :func:`use`
context manager.

Span taxonomy (``kind`` / typical ``name``):

* ``vm`` — one container span per guest VM,
* ``api`` — one container per (VM, API) runtime binding,
* ``function`` — one per guest-stub invocation (the per-call tree root),
* ``op`` — per-layer children: ``marshal``, ``transport.send``,
  ``router.policy``, ``router.queue``, ``dispatch``, the server stub
  (named after the API function), ``device.compute``, ``device.copy``,
  ``wait.reply``, ``transport.recv``, ``unmarshal``.

Layers: ``guest``, ``transport``, ``router``, ``server``, ``device``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: the canonical layer ordering (Perfetto thread ids, report columns)
LAYERS = ("guest", "transport", "router", "server", "device")

#: sentinel: "parent from the tracer's current open span"
_INHERIT = object()


class TracerError(Exception):
    """Invalid tracer operation (e.g. ending a span twice)."""


@dataclass
class Span:
    """One timed interval on the virtual timeline."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    kind: str = "op"  # "vm" | "api" | "function" | "op"
    vm_id: Optional[str] = None
    api: Optional[str] = None
    function: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Virtual seconds covered; 0.0 while the span is still open."""
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None


class NoopTracer:
    """The zero-cost default: every operation is a no-op.

    ``enabled`` is False so instrumentation sites can skip argument
    construction entirely with a single attribute check.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()
    trace_id = "noop"

    def start_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def current(self) -> None:
        return None

    def container(self, *args: Any, **kwargs: Any) -> None:
        return None

    def all_spans(self) -> List[Span]:
        return []


#: the process-wide no-op tracer
NOOP = NoopTracer()


class Tracer:
    """Records completed spans; maintains a stack of open ones.

    The stack gives synchronous in-process layers automatic nesting
    (a device span recorded during a server stub's execution parents to
    that stub's span); cross-"wire" layers pass ``parent_id`` explicitly
    from the propagated command ids instead.

    ``metrics`` — an optional object with an ``ingest(span)`` method
    (e.g. :class:`~repro.telemetry.metrics.MetricsRegistry`) fed every
    completed span.
    """

    enabled = True

    def __init__(self, trace_id: str = "cava", metrics: Any = None) -> None:
        self.trace_id = trace_id
        self.metrics = metrics
        #: completed spans, in completion order
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: (vm_id, api_or_None) → container span
        self._containers: Dict[Tuple[str, Optional[str]], Span] = {}
        #: extra consumers of completed spans (e.g. the flight recorder)
        self._sinks: List[Any] = []

    def add_sink(self, sink: Any) -> None:
        """Feed every subsequently completed span to ``sink.ingest``."""
        self._sinks.append(sink)

    # -- span lifecycle ------------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def start_span(
        self,
        name: str,
        start: float,
        *,
        layer: str = "guest",
        kind: str = "op",
        vm_id: Optional[str] = None,
        api: Optional[str] = None,
        function: Optional[str] = None,
        parent_id: Any = _INHERIT,
        **attrs: Any,
    ) -> Span:
        """Open a span and push it on the stack.

        ``parent_id`` defaults to the current open span; pass an explicit
        id (or ``None`` for a root) when the parent crossed the wire.
        ``vm_id``/``api``/``function`` inherit from the enclosing open
        span when omitted.
        """
        top = self._stack[-1] if self._stack else None
        if parent_id is _INHERIT:
            parent_id = top.span_id if top is not None else None
        if top is not None:
            vm_id = vm_id if vm_id is not None else top.vm_id
            api = api if api is not None else top.api
            function = function if function is not None else top.function
        span = Span(
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            name=name,
            layer=layer,
            kind=kind,
            vm_id=vm_id,
            api=api,
            function=function,
            start=start,
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span], end: float,
                 **attrs: Any) -> Optional[Span]:
        """Close ``span`` at virtual time ``end`` and record it."""
        if span is None:
            return None
        if span.finished:
            raise TracerError(f"span {span.name!r} ended twice")
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.ingest(span)
        for sink in self._sinks:
            sink.ingest(span)
        return span

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        layer: str = "guest",
        kind: str = "op",
        vm_id: Optional[str] = None,
        api: Optional[str] = None,
        function: Optional[str] = None,
        parent_id: Any = _INHERIT,
        **attrs: Any,
    ) -> Span:
        """Record an already-completed span (never left on the stack)."""
        span = self.start_span(
            name, start, layer=layer, kind=kind, vm_id=vm_id, api=api,
            function=function, parent_id=parent_id, **attrs,
        )
        return self.end_span(span, end)

    @contextlib.contextmanager
    def span(self, name: str, clock: Any, **kwargs: Any) -> Iterator[Span]:
        """Span over a ``with`` body, timed on ``clock.now``."""
        opened = self.start_span(name, clock.now, **kwargs)
        try:
            yield opened
        finally:
            if not opened.finished:
                self.end_span(opened, clock.now)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- vm / api containers -------------------------------------------------

    def container(self, vm_id: str, api: Optional[str] = None,
                  now: float = 0.0) -> Span:
        """The long-lived ``vm`` (and optionally ``api``) container span.

        Containers are created on first use, never pushed on the stack,
        and finalized by :meth:`all_spans` (their end is the trace
        horizon).  They give exports a stable per-VM / per-API root.
        """
        key = (vm_id, api)
        span = self._containers.get(key)
        if span is None:
            parent: Optional[Span] = None
            if api is not None:
                parent = self.container(vm_id, None, now)
            span = Span(
                trace_id=self.trace_id,
                span_id=self._new_id(),
                parent_id=parent.span_id if parent is not None else None,
                name=api if api is not None else vm_id,
                layer="guest",
                kind="api" if api is not None else "vm",
                vm_id=vm_id,
                api=api,
                start=now,
            )
            self._containers[key] = span
        return span

    # -- access --------------------------------------------------------------

    def all_spans(self) -> List[Span]:
        """Completed spans plus finalized vm/api containers."""
        horizon = max(
            (s.end for s in self.spans if s.end is not None), default=0.0
        )
        result = list(self.spans)
        for span in self._containers.values():
            if span.end is None:
                span.end = max(horizon, span.start)
            result.append(span)
        return result

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._containers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tracer({self.trace_id!r}, spans={len(self.spans)}, "
                f"open={len(self._stack)})")


# ---------------------------------------------------------------------------
# the active tracer
# ---------------------------------------------------------------------------

_active: Any = NOOP


def active() -> Any:
    """The currently installed tracer (the no-op singleton by default)."""
    return _active


def install(tracer: Any = None) -> Any:
    """Install ``tracer`` as the active tracer; returns the previous one.

    Pass ``None`` to restore the no-op default.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NOOP
    return previous


@contextlib.contextmanager
def use(tracer: Any) -> Iterator[Any]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
