"""A simulated TPU and a Python-native graph API over it.

Paper §5: "We also plan to extend AvA to support dynamic languages,
e.g. Python, allowing us to auto-virtualize TensorFlow running on the
Google TPU."  This package is that extension's target: a TensorFlow-1.x-
flavoured *Python* API (build a graph of matmul/add/relu/softmax nodes,
compile, run with feeds and fetches) over a simulated TPU with a
systolic-array cost model (128×128 tiles — padding waste included, as
on the real part).

There is no C header here: the CAvA specification is derived from the
Python module itself by :mod:`repro.codegen.pyfront`.
"""

from repro.tpu.device import SimulatedTPU, TPUDeviceSpec
from repro.tpu.graphs import TPUGraph, GraphError
from repro.tpu import api

__all__ = ["GraphError", "SimulatedTPU", "TPUDeviceSpec", "TPUGraph", "api"]
