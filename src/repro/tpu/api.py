"""The TPU's dynamic (Python-native) public API.

There is no C header for this accelerator — the functions below, with
their :mod:`repro.codegen.pyfront` marker annotations, ARE the API
definition CAvA consumes.  Eleven functions in the TensorFlow-1.x
shape: open a device, build a graph of nodes (ids are plain ints,
graph-scoped), compile, run with a feed and a fetch.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence

import numpy as np

from repro.codegen.pyfront import (
    Handle,
    InBuffer,
    NewHandle,
    OutBuffer,
    OutScalar,
)
from repro.remoting.buffers import OutBox, read_bytes, write_back
from repro.tpu.device import SimulatedTPU
from repro.tpu.graphs import (
    BINARY_OPS,
    UNARY_OPS,
    GraphError,
    TPUGraph,
)
from repro.vclock import VirtualClock

TPU_OK = 0
TPU_INVALID = -1
TPU_BUSY = -2
TPU_GRAPH_ERROR = -3
TPU_OVERFLOW = -4
TPU_NOT_COMPILED = -5

#: node-building calls return only fresh ids and may forward async
AVA_ASYNC: set = set()
AVA_NORECORD = {"tpuRun"}
#: graph construction mutates replayable state (migration §4.3)
AVA_RECORD = {
    "tpuPlaceholder": "modify",
    "tpuConstant": "modify",
    "tpuBinaryOp": "modify",
    "tpuUnaryOp": "modify",
    "tpuCompile": "modify",
}
AVA_DEALLOCATES = {
    "tpuCloseDevice": "device_handle",
    "tpuDestroyGraph": "graph_handle",
}

FUNCTION_NAMES = [
    "tpuOpenDevice", "tpuCloseDevice", "tpuCreateGraph", "tpuDestroyGraph",
    "tpuPlaceholder", "tpuConstant", "tpuBinaryOp", "tpuUnaryOp",
    "tpuCompile", "tpuRun", "tpuDeviceStats",
]

NATIVE_CALL_OVERHEAD = 0.3e-6


@dataclass
class TPUSession:
    devices: List[SimulatedTPU]
    clock: VirtualClock = field(default_factory=lambda: VirtualClock("tpuapp"))

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a TPU session needs at least one device")


_SESSION_STACK: List[TPUSession] = []


@contextlib.contextmanager
def tpu_session(
    devices: Optional[Sequence[SimulatedTPU]] = None,
    clock: Optional[VirtualClock] = None,
) -> Iterator[TPUSession]:
    sess = TPUSession(
        devices=list(devices) if devices else [SimulatedTPU()],
        clock=clock or VirtualClock("tpuapp"),
    )
    _SESSION_STACK.append(sess)
    try:
        yield sess
    finally:
        _SESSION_STACK.pop()


def current_tpu_session() -> TPUSession:
    if not _SESSION_STACK:
        raise RuntimeError(
            "no TPU session active; wrap calls in `with tpu_session(...)`"
        )
    return _SESSION_STACK[-1]


def _session() -> TPUSession:
    sess = current_tpu_session()
    sess.clock.advance(NATIVE_CALL_OVERHEAD, "api_call")
    return sess


def _set_box(box, value) -> None:
    if box is not None:
        box[0] = value


# ---------------------------------------------------------------------------
# device and graph lifecycle
# ---------------------------------------------------------------------------


def tpuOpenDevice(device_handle: NewHandle) -> int:
    sess = _session()
    if device_handle is None:
        return TPU_INVALID
    for device in sess.devices:
        if not device.opened:
            device.opened = True
            sess.clock.advance(1e-3, "device_open")  # runtime attach
            _set_box(device_handle, device)
            return TPU_OK
    return TPU_BUSY


def tpuCloseDevice(device_handle: Handle) -> int:
    _session()
    if not isinstance(device_handle, SimulatedTPU) or \
            not device_handle.opened:
        return TPU_INVALID
    device_handle.opened = False
    device_handle.deallocated = True  # handle-table cleanup marker
    return TPU_OK


def tpuCreateGraph(device_handle: Handle, graph_handle: NewHandle) -> int:
    _session()
    if not isinstance(device_handle, SimulatedTPU) or \
            not device_handle.opened:
        return TPU_INVALID
    _set_box(graph_handle, TPUGraph(device=device_handle))
    return TPU_OK


def tpuDestroyGraph(graph_handle: Handle) -> int:
    _session()
    if not isinstance(graph_handle, TPUGraph) or graph_handle.destroyed:
        return TPU_INVALID
    graph_handle.destroyed = True
    graph_handle.deallocated = True
    return TPU_OK


# ---------------------------------------------------------------------------
# graph construction
# ---------------------------------------------------------------------------


def tpuPlaceholder(graph_handle: Handle, rows: int, cols: int,
                   node_id: OutScalar) -> int:
    _session()
    if not isinstance(graph_handle, TPUGraph):
        return TPU_INVALID
    try:
        _set_box(node_id, graph_handle.placeholder(int(rows), int(cols)))
    except GraphError:
        return TPU_GRAPH_ERROR
    return TPU_OK


def tpuConstant(graph_handle: Handle, data: InBuffer, data_size: int,
                rows: int, cols: int, node_id: OutScalar) -> int:
    _session()
    if not isinstance(graph_handle, TPUGraph) or data is None:
        return TPU_INVALID
    payload = read_bytes(data, limit=int(data_size))
    if len(payload) != int(rows) * int(cols) * 4:
        return TPU_INVALID
    value = np.frombuffer(payload, dtype=np.float32).reshape(
        int(rows), int(cols)
    )
    try:
        _set_box(node_id, graph_handle.constant(value))
    except GraphError:
        return TPU_GRAPH_ERROR
    return TPU_OK


def tpuBinaryOp(graph_handle: Handle, op_code: int, a_node: int,
                b_node: int, node_id: OutScalar) -> int:
    _session()
    if not isinstance(graph_handle, TPUGraph):
        return TPU_INVALID
    if int(op_code) not in BINARY_OPS:
        return TPU_INVALID
    try:
        _set_box(node_id,
                 graph_handle.binary(int(op_code), int(a_node),
                                     int(b_node)))
    except GraphError:
        return TPU_GRAPH_ERROR
    return TPU_OK


def tpuUnaryOp(graph_handle: Handle, op_code: int, a_node: int,
               node_id: OutScalar) -> int:
    _session()
    if not isinstance(graph_handle, TPUGraph):
        return TPU_INVALID
    if int(op_code) not in UNARY_OPS:
        return TPU_INVALID
    try:
        _set_box(node_id, graph_handle.unary(int(op_code), int(a_node)))
    except GraphError:
        return TPU_GRAPH_ERROR
    return TPU_OK


# ---------------------------------------------------------------------------
# compile & run
# ---------------------------------------------------------------------------


def tpuCompile(graph_handle: Handle, flops_estimate: OutScalar) -> int:
    sess = _session()
    if not isinstance(graph_handle, TPUGraph):
        return TPU_INVALID
    flops = graph_handle.compile()
    # XLA-ish compilation takes real time, proportional to graph size
    sess.clock.advance(0.5e-3 + 20e-6 * len(graph_handle.nodes), "compile")
    _set_box(flops_estimate, int(flops))
    return TPU_OK


def tpuRun(graph_handle: Handle, feed_node: int, feed_data: InBuffer,
           feed_data_size: int, fetch_node: int, out_data: OutBuffer,
           out_data_capacity: int, produced: OutScalar) -> int:
    sess = _session()
    if not isinstance(graph_handle, TPUGraph) or feed_data is None:
        return TPU_INVALID
    if not graph_handle.compiled:
        return TPU_NOT_COMPILED
    try:
        shape = graph_handle.nodes_shape(int(feed_node))
    except GraphError:
        return TPU_GRAPH_ERROR
    payload = read_bytes(feed_data, limit=int(feed_data_size))
    if len(payload) != shape[0] * shape[1] * 4:
        return TPU_INVALID
    feed = np.frombuffer(payload, dtype=np.float32).reshape(shape)
    try:
        result = graph_handle.run({int(feed_node): feed}, int(fetch_node))
    except GraphError:
        return TPU_GRAPH_ERROR
    blob = result.astype(np.float32).tobytes()
    if len(blob) > int(out_data_capacity):
        return TPU_OVERFLOW
    device = graph_handle.device
    compute = (
        graph_handle.step_cost
        + device.transfer_cost(len(payload) + len(blob))
    )
    end = device.execute_step(compute, not_before=sess.clock.now)
    sess.clock.advance_to(end, "step_wait")
    write_back(out_data, blob)
    _set_box(produced, len(blob))
    return TPU_OK


def tpuDeviceStats(device_handle: Handle, steps: OutScalar,
                   busy_us: OutScalar) -> int:
    _session()
    if not isinstance(device_handle, SimulatedTPU):
        return TPU_INVALID
    _set_box(steps, device_handle.steps_executed)
    _set_box(busy_us, int(device_handle.busy_time * 1e6))
    return TPU_OK
