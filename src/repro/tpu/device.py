"""The simulated TPU: systolic-array cost model and timeline.

Matrix multiplies run on a 128×128 systolic array: operands are padded
to tile boundaries, so a (129, 10) @ (10, 5) matmul costs as much as
(256, 128) @ (128, 128) — the padding waste that dominates small-model
TPU performance in practice.  Element-wise ops are HBM-bandwidth bound;
feeds and fetches cross a PCIe-like link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TPUDeviceSpec:
    """Static capabilities of the simulated TPU."""

    name: str = "AvA Simulated TPU"
    #: systolic array dimension (tiles are array_dim × array_dim)
    array_dim: int = 128
    #: peak matmul throughput, flops per second
    flops: float = 45e12
    #: HBM bandwidth for element-wise work, bytes per second
    hbm_bandwidth: float = 600e9
    #: host link bandwidth for feeds/fetches, bytes per second
    link_bandwidth: float = 10e9
    #: fixed per-step dispatch overhead, seconds
    step_overhead: float = 20e-6


class SimulatedTPU:
    """One TPU: a timeline plus per-category op statistics."""

    def __init__(self, spec: TPUDeviceSpec = TPUDeviceSpec(),
                 index: int = 0) -> None:
        self.spec = spec
        self.index = index
        self.timeline: float = 0.0
        self.busy_time: float = 0.0
        self.opened = False
        self.steps_executed = 0

    def _tiles(self, dim: int) -> int:
        return max(1, math.ceil(dim / self.spec.array_dim))

    def matmul_cost(self, m: int, k: int, n: int) -> float:
        """Padded-tile systolic cost of an (m,k) @ (k,n) multiply."""
        tiles = self._tiles(m) * self._tiles(k) * self._tiles(n)
        padded_flops = tiles * 2 * self.spec.array_dim ** 3
        return padded_flops / self.spec.flops

    def elementwise_cost(self, nbytes: int) -> float:
        return nbytes / self.spec.hbm_bandwidth

    def transfer_cost(self, nbytes: int) -> float:
        return nbytes / self.spec.link_bandwidth

    def execute_step(self, compute_seconds: float,
                     not_before: float) -> float:
        """Run one session step; returns completion time."""
        cost = self.spec.step_overhead + compute_seconds
        start = max(self.timeline, not_before)
        end = start + cost
        self.timeline = end
        self.busy_time += cost
        self.steps_executed += 1
        return end
