"""Lazy computation graphs for the simulated TPU.

A :class:`TPUGraph` holds nodes (placeholders, constants, binary and
unary ops) identified by small integer ids — the TensorFlow-1.x model:
build once, compile, then run repeatedly with feeds.  Execution is
real float32 numpy; the compile step derives the per-step device cost
from the node shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tpu.device import SimulatedTPU

# op codes (the dynamic API passes these as plain ints)
OP_PLACEHOLDER = 0
OP_CONSTANT = 1
OP_MATMUL = 10
OP_ADD = 11
OP_RELU = 20
OP_SOFTMAX = 21
OP_REDUCE_SUM = 22

BINARY_OPS = (OP_MATMUL, OP_ADD)
UNARY_OPS = (OP_RELU, OP_SOFTMAX, OP_REDUCE_SUM)


class GraphError(Exception):
    """Malformed graph construction or execution."""


@dataclass
class Node:
    node_id: int
    op: int
    shape: Tuple[int, int]
    inputs: Tuple[int, ...] = ()
    value: Optional[np.ndarray] = None  # constants only


@dataclass
class TPUGraph:
    """One graph resident on a device."""

    device: SimulatedTPU
    nodes: Dict[int, Node] = field(default_factory=dict)
    compiled: bool = False
    step_cost: float = 0.0
    destroyed: bool = False
    _next_id: int = 1

    # -- construction --------------------------------------------------------

    def _add(self, op: int, shape: Tuple[int, int],
             inputs: Tuple[int, ...] = (),
             value: Optional[np.ndarray] = None) -> int:
        if self.destroyed:
            raise GraphError("graph was destroyed")
        if any(dim <= 0 for dim in shape):
            raise GraphError(f"non-positive shape {shape}")
        for node_id in inputs:
            if node_id not in self.nodes:
                raise GraphError(f"unknown input node {node_id}")
        node = Node(self._next_id, op, shape, inputs, value)
        self.nodes[node.node_id] = node
        self._next_id += 1
        self.compiled = False
        return node.node_id

    def placeholder(self, rows: int, cols: int) -> int:
        return self._add(OP_PLACEHOLDER, (rows, cols))

    def constant(self, value: np.ndarray) -> int:
        value = np.asarray(value, dtype=np.float32)
        if value.ndim != 2:
            raise GraphError("constants must be 2-D")
        return self._add(OP_CONSTANT, value.shape, value=value)

    def binary(self, op: int, a: int, b: int) -> int:
        if op not in BINARY_OPS:
            raise GraphError(f"unknown binary op {op}")
        sa = self.nodes_shape(a)
        sb = self.nodes_shape(b)
        if op == OP_MATMUL:
            if sa[1] != sb[0]:
                raise GraphError(f"matmul shape mismatch {sa} @ {sb}")
            shape = (sa[0], sb[1])
        else:  # ADD broadcasts a row vector
            if sa != sb and not (sb[0] == 1 and sa[1] == sb[1]):
                raise GraphError(f"add shape mismatch {sa} + {sb}")
            shape = sa
        return self._add(op, shape, (a, b))

    def unary(self, op: int, a: int) -> int:
        if op not in UNARY_OPS:
            raise GraphError(f"unknown unary op {op}")
        shape = self.nodes_shape(a)
        if op == OP_REDUCE_SUM:
            shape = (shape[0], 1)
        return self._add(op, shape, (a,))

    def nodes_shape(self, node_id: int) -> Tuple[int, int]:
        node = self.nodes.get(node_id)
        if node is None:
            raise GraphError(f"unknown node {node_id}")
        return node.shape

    # -- compile -----------------------------------------------------------------

    def compile(self) -> float:
        """Derive the per-step device cost; returns estimated flops."""
        flops = 0.0
        cost = 0.0
        for node in self.nodes.values():
            rows, cols = node.shape
            if node.op == OP_MATMUL:
                k = self.nodes[node.inputs[0]].shape[1]
                flops += 2.0 * rows * cols * k
                cost += self.device.matmul_cost(rows, k, cols)
            elif node.op in (OP_ADD, OP_RELU, OP_SOFTMAX, OP_REDUCE_SUM):
                nbytes = rows * cols * 4 * 3  # read a, read b, write out
                flops += rows * cols
                cost += self.device.elementwise_cost(nbytes)
        self.step_cost = cost
        self.compiled = True
        return flops

    # -- execution ---------------------------------------------------------------

    def run(self, feeds: Dict[int, np.ndarray],
            fetch: int) -> np.ndarray:
        """Evaluate ``fetch`` given placeholder feeds (real numpy)."""
        if not self.compiled:
            raise GraphError("graph must be compiled before running")
        if fetch not in self.nodes:
            raise GraphError(f"unknown fetch node {fetch}")
        cache: Dict[int, np.ndarray] = {}

        def evaluate(node_id: int) -> np.ndarray:
            if node_id in cache:
                return cache[node_id]
            node = self.nodes[node_id]
            if node.op == OP_PLACEHOLDER:
                if node_id not in feeds:
                    raise GraphError(f"placeholder {node_id} not fed")
                value = np.asarray(feeds[node_id],
                                   dtype=np.float32).reshape(node.shape)
            elif node.op == OP_CONSTANT:
                value = node.value
            elif node.op == OP_MATMUL:
                value = evaluate(node.inputs[0]) @ evaluate(node.inputs[1])
            elif node.op == OP_ADD:
                value = evaluate(node.inputs[0]) + evaluate(node.inputs[1])
            elif node.op == OP_RELU:
                value = np.maximum(evaluate(node.inputs[0]), 0)
            elif node.op == OP_SOFTMAX:
                logits = evaluate(node.inputs[0])
                shifted = logits - logits.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                value = exp / exp.sum(axis=1, keepdims=True)
            elif node.op == OP_REDUCE_SUM:
                value = evaluate(node.inputs[0]).sum(axis=1, keepdims=True)
            else:  # pragma: no cover - construction rejects unknown ops
                raise GraphError(f"unknown op {node.op}")
            cache[node_id] = value.astype(np.float32)
            return cache[node_id]

        return evaluate(fetch)
