"""Pluggable, hypervisor-interposable transports.

The paper's key interposition argument: forwarding must flow through
hypervisor-managed channels so the hypervisor can "monitor and control
all device accesses".  Every transport here delivers encoded commands to
the :class:`~repro.hypervisor.router.Router` — never directly to the API
server — and differs only in its cost profile and framing mechanics:

* :class:`InProcTransport` — hypercall-like shared-memory doorbell (the
  default, KVM-virtio-ish costs),
* :class:`RingTransport` — a bounded shared-memory ring with per-chunk
  doorbells (large payloads pay for multiple ring slots),
* :class:`NetworkTransport` — TCP-like costs for disaggregated
  accelerators (the LegoOS-style configuration the paper sketches).
"""

from repro.transport.base import DeliveryResult, Transport, TransportError
from repro.transport.inproc import InProcTransport
from repro.transport.ring import RingTransport
from repro.transport.network import NetworkTransport

__all__ = [
    "DeliveryResult",
    "InProcTransport",
    "NetworkTransport",
    "RingTransport",
    "Transport",
    "TransportError",
]
