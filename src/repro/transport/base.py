"""Transport abstraction: encoded commands in, encoded replies out.

A transport's job in this reproduction is deliberately honest: it really
encodes the :class:`~repro.remoting.codec.Command` to wire bytes, really
hands those bytes to the router, and really decodes the reply bytes —
so a marshaling bug breaks tests rather than hiding behind an in-memory
shortcut.  Timing comes from each transport's cost parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.remoting.codec import (
    Command,
    CommandBatch,
    NeedBytes,
    Reply,
    ReplyBatch,
)
from repro.remoting.wire import InterpretedCodec, WireCodec
from repro.telemetry import tracer as _tele

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hypervisor.router import Router


class TransportError(Exception):
    """Transport-level failure (oversized frame, closed channel...)."""


@dataclass
class DeliveryResult:
    """Outcome of one forwarded command.

    ``sent_at``      — guest time when the last byte left the guest.
    ``completed_at`` — host time when execution finished.
    ``reply``        — the decoded reply.
    ``reply_cost``   — transport seconds for the reply leg (charged to
                       the guest only if it synchronously waits).
    ``timed_out``    — no reply arrived before the transport's timeout
                       (frame lost or damaged in flight); the reply is
                       a synthesized error and, for idempotent calls,
                       the guest runtime may retransmit.
    ``need_bytes``   — the router answered with a
                       :class:`~repro.remoting.codec.NeedBytes` instead
                       of a reply: cached refs missed the transfer
                       store and nothing executed.  ``reply`` is a
                       placeholder; the guest runtime restores the
                       elided payloads and re-delivers once.
    """

    reply: Reply
    sent_at: float
    completed_at: float
    reply_cost: float
    timed_out: bool = False
    need_bytes: Optional[NeedBytes] = None


@dataclass
class BatchDeliveryResult:
    """Outcome of one coalesced :class:`CommandBatch` flush.

    ``replies``      — one reply per inner command, in command order
                       (empty when the whole frame failed).
    ``sent_at``      — guest time when the frame left the guest.
    ``completed_at`` — host time when the last inner command finished.
    ``timed_out``    — the frame (or its reply) was lost in flight; the
                       batch dropped *atomically* and, when every inner
                       command is idempotent, may be retransmitted.
    ``error``        — batch-level router rejection (breaker open,
                       oversized batch...); None when routing ran.
    """

    replies: List[Reply] = field(default_factory=list)
    sent_at: float = 0.0
    completed_at: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    #: the router asked for elided payloads back (see DeliveryResult)
    need_bytes: Optional[NeedBytes] = None

    @property
    def failed(self) -> bool:
        """The batch as a whole never produced per-command replies."""
        return (self.timed_out or self.error is not None
                or self.need_bytes is not None)


class Transport:
    """Base class: cost hooks + the shared delivery mechanics."""

    name = "abstract"

    def __init__(self, router: "Router",
                 codec: Optional[WireCodec] = None) -> None:
        self.router = router
        #: the codec this channel marshals frames with; defaults to the
        #: router's, so both ends of the channel agree
        self.codec: WireCodec = (
            codec if codec is not None
            else getattr(router, "codec", None) or InterpretedCodec()
        )
        #: bytes moved guest→host / host→guest (metrics)
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.messages = 0

    # -- cost hooks (subclasses override) -----------------------------------

    def send_cost(self, nbytes: int) -> float:
        raise NotImplementedError

    def recv_cost(self, nbytes: int) -> float:
        raise NotImplementedError

    def enqueue_cost(self, nbytes: int) -> float:
        """Guest-side cost of an *asynchronous* submission.

        Async commands are appended to the shared command queue without
        waiting for a doorbell round trip (the batching/lazy-RPC
        optimization of §4.2) — the guest pays the copy, not the exit.
        Subclasses with per-byte copy costs should override.
        """
        return 0.15e-6

    def flush_cost(self, nbytes: int, count: int) -> float:
        """Guest-side cost of flushing one coalesced frame.

        A batch is priced as *one* frame: the transport's fixed
        asynchronous submission overhead (the single doorbell-equivalent
        charge) is paid once for the whole frame, plus its summed bytes
        — instead of once per command.  See docs/cost-model.md.
        """
        return self.enqueue_cost(nbytes)

    def span_attrs(self, nbytes: int) -> Dict[str, Any]:
        """Transport-specific attributes for the ``transport.send`` span.

        Subclasses add what explains their cost shape (doorbells, ring
        slots, packets).
        """
        return {}

    # -- delivery ------------------------------------------------------------

    def deliver(self, command: Command, guest_now: float,
                asynchronous: bool = False) -> DeliveryResult:
        """Forward one command through the router and collect the reply.

        ``guest_now`` is the guest's virtual time at submission; the
        returned timestamps let the guest runtime implement sync and
        async semantics without the transport caring which it is.
        """
        wire = self.codec.encode_command(command)
        nbytes = len(wire)
        self.tx_bytes += nbytes
        self.messages += 1
        cost = (self.enqueue_cost(nbytes) if asynchronous
                else self.send_cost(nbytes))
        sent_at = guest_now + cost
        tracer = _tele.active()
        if tracer.enabled:
            tracer.record_span(
                "transport.send", guest_now, sent_at,
                layer="transport",
                parent_id=command.span_id,
                vm_id=command.vm_id, api=command.api,
                function=command.function,
                transport=self.name, wire_bytes=nbytes,
                submit="async" if asynchronous else "sync",
                **self.span_attrs(nbytes),
            )
        # the channel, not the frame, attests who is sending: the router's
        # circuit breaker keys on this even when the frame won't decode.
        # The frame crosses as-is — a zero-copy codec's vectored
        # [header, *buffer_views] segments are never flattened here.
        reply_wire = self.router.deliver(wire, arrival=sent_at,
                                         source=command.vm_id)
        decoded = self.codec.decode_reply(reply_wire, reply_to=command)
        self.rx_bytes += len(reply_wire)
        if isinstance(decoded, NeedBytes):
            # the frame's cached refs missed: nothing executed; the
            # guest runtime restores the payloads and re-delivers
            return DeliveryResult(
                reply=Reply(seq=command.seq,
                            complete_time=decoded.complete_time),
                sent_at=sent_at,
                completed_at=decoded.complete_time,
                reply_cost=self.recv_cost(len(reply_wire)),
                need_bytes=decoded,
            )
        if not isinstance(decoded, Reply):
            raise TransportError("router returned a non-reply message")
        return DeliveryResult(
            reply=decoded,
            sent_at=sent_at,
            completed_at=decoded.complete_time,
            reply_cost=self.recv_cost(len(reply_wire)),
        )

    def deliver_batch(self, batch: CommandBatch,
                      guest_now: float) -> BatchDeliveryResult:
        """Forward one coalesced frame of async commands, as one frame.

        The whole batch crosses the channel in a single delivery — one
        frame, one doorbell-equivalent fixed charge — and the router
        answers with a single :class:`ReplyBatch`.
        """
        wire = self.codec.encode_command(batch)
        nbytes = len(wire)
        self.tx_bytes += nbytes
        self.messages += 1
        sent_at = guest_now + self.flush_cost(nbytes, len(batch))
        tracer = _tele.active()
        if tracer.enabled:
            tracer.record_span(
                "transport.flush", guest_now, sent_at,
                layer="transport",
                vm_id=batch.vm_id, function="<batch>",
                transport=self.name, wire_bytes=nbytes,
                commands=len(batch), submit="batch",
                **self.span_attrs(nbytes),
            )
        reply_wire = self.router.deliver(wire, arrival=sent_at,
                                         source=batch.vm_id)
        decoded = self.codec.decode_reply(reply_wire, reply_to=batch)
        self.rx_bytes += len(reply_wire)
        if isinstance(decoded, ReplyBatch):
            return BatchDeliveryResult(
                replies=decoded.replies, sent_at=sent_at,
                completed_at=decoded.complete_time,
            )
        if isinstance(decoded, NeedBytes):
            return BatchDeliveryResult(
                replies=[], sent_at=sent_at,
                completed_at=decoded.complete_time,
                need_bytes=decoded,
            )
        if isinstance(decoded, Reply):
            # batch-level rejection: the router never unbundled the frame
            return BatchDeliveryResult(
                replies=[], sent_at=sent_at,
                completed_at=decoded.complete_time,
                error=decoded.error or "router returned an empty reply",
            )
        raise TransportError("router returned a non-reply message")
