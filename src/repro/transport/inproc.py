"""The default hypercall-style transport.

Models a para-virtual doorbell + shared page pair (virtio-like): a fixed
per-message latency covering the VM exit and hypervisor wakeup, plus a
per-byte copy cost into host-visible memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.remoting.wire import WireCodec
from repro.transport.base import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.router import Router


class InProcTransport(Transport):
    """Shared-memory doorbell transport (the paper's default config)."""

    name = "inproc"

    def __init__(
        self,
        router: "Router",
        latency: float = 1.8e-6,
        byte_cost: float = 0.008e-9,
        enqueue_overhead: float = 0.15e-6,
        codec: Optional[WireCodec] = None,
    ) -> None:
        super().__init__(router, codec=codec)
        if latency < 0 or byte_cost < 0:
            raise ValueError("transport costs cannot be negative")
        self.latency = latency
        # per-byte cost models shared-page forwarding: bulk payloads are
        # handed over by page mapping, not copied through the channel
        self.byte_cost = byte_cost
        self.enqueue_overhead = enqueue_overhead

    def send_cost(self, nbytes: int) -> float:
        return self.latency + nbytes * self.byte_cost

    def recv_cost(self, nbytes: int) -> float:
        return self.latency + nbytes * self.byte_cost

    def enqueue_cost(self, nbytes: int) -> float:
        return self.enqueue_overhead + nbytes * self.byte_cost

    def span_attrs(self, nbytes: int):
        return {"doorbell_us": self.latency * 1e6}
