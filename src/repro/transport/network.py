"""TCP-like transport for disaggregated accelerators.

The paper notes AvA's pluggable transport lets VMs use accelerators on
other machines (the LegoOS configuration).  This transport prices that:
tens of microseconds of one-way latency and NIC-bounded bandwidth, so the
Figure 5 experiment re-run over it shows which workloads tolerate
disaggregation (compute-bound) and which do not (chatty / copy-heavy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.remoting.wire import WireCodec
from repro.transport.base import Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.router import Router


class NetworkTransport(Transport):
    """Datacenter-network transport (disaggregated accelerator)."""

    name = "network"

    def __init__(
        self,
        router: "Router",
        latency: float = 25e-6,
        bandwidth: float = 5e9,  # ~40 GbE effective
        mtu: int = 9000,
        per_packet_cost: float = 0.6e-6,
        codec: Optional[WireCodec] = None,
    ) -> None:
        super().__init__(router, codec=codec)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency = latency
        self.bandwidth = bandwidth
        self.mtu = mtu
        self.per_packet_cost = per_packet_cost

    def _cost(self, nbytes: int) -> float:
        packets = max(1, -(-nbytes // self.mtu))
        return (
            self.latency
            + packets * self.per_packet_cost
            + nbytes / self.bandwidth
        )

    def send_cost(self, nbytes: int) -> float:
        return self._cost(nbytes)

    def recv_cost(self, nbytes: int) -> float:
        return self._cost(nbytes)

    def span_attrs(self, nbytes: int):
        return {
            "packets": max(1, -(-nbytes // self.mtu)),
            "latency_us": self.latency * 1e6,
        }
