"""A bounded shared-memory ring transport.

Commands are copied into fixed-size ring slots; a message larger than one
slot occupies several and pays one doorbell per slot batch.  This models
the SVGA-style FIFO queue the paper cites as the interposition-preserving
transport design, and gives the transport ablation a distinct cost shape:
cheap small commands, visibly stepped costs for bulk payloads.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.remoting.wire import WireCodec
from repro.transport.base import Transport, TransportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.router import Router


class RingTransport(Transport):
    """SVGA-FIFO-like ring buffer transport."""

    name = "ring"

    def __init__(
        self,
        router: "Router",
        slot_bytes: int = 4096,
        slots: int = 256,
        doorbell_latency: float = 1.2e-6,
        copy_byte_cost: float = 0.012e-9,
        codec: Optional[WireCodec] = None,
    ) -> None:
        super().__init__(router, codec=codec)
        if slot_bytes <= 0 or slots <= 0:
            raise ValueError("ring geometry must be positive")
        self.slot_bytes = slot_bytes
        self.slots = slots
        self.doorbell_latency = doorbell_latency
        self.copy_byte_cost = copy_byte_cost

    @property
    def capacity_bytes(self) -> int:
        return self.slot_bytes * self.slots

    def _slot_count(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.slot_bytes))

    def send_cost(self, nbytes: int) -> float:
        needed = self._slot_count(nbytes)
        if needed > self.slots:
            # side-band bulk path: payloads that do not fit the FIFO are
            # placed in guest memory regions the command references
            # (SVGA's design) — pinning costs a little extra per byte
            # and two doorbells (descriptor + completion)
            return (
                3 * self.doorbell_latency
                + nbytes * self.copy_byte_cost * 1.25
            )
        # one doorbell for the submission, plus one per 64-slot drain
        # batch beyond the first: the producer stalls while the consumer
        # empties the ring, so huge messages pay extra doorbells
        doorbells = 1 + (needed - 1) // 64
        return (
            doorbells * self.doorbell_latency
            + nbytes * self.copy_byte_cost
        )

    def recv_cost(self, nbytes: int) -> float:
        return self.doorbell_latency + nbytes * self.copy_byte_cost

    def enqueue_cost(self, nbytes: int) -> float:
        # async producers write slots without ringing the doorbell
        return 0.2e-6 + nbytes * self.copy_byte_cost

    def span_attrs(self, nbytes: int):
        needed = self._slot_count(nbytes)
        return {
            "slots": needed,
            "sideband": needed > self.slots,
        }
