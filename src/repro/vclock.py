"""Deterministic virtual time.

Every timed component in the reproduction (guest VMs, transports, the
router, the simulated accelerators) charges costs against a
:class:`VirtualClock` rather than reading the wall clock.  This keeps the
benchmark harness deterministic across machines: the remoting stack really
runs (arguments are marshaled, routed, dispatched and executed), but the
*reported* durations come from explicit cost models.

Clocks form a small tree: a :class:`VirtualClock` may have named child
accounts (e.g. ``transport``, ``device``, ``marshal``) so reports can break
a run's total down by component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple
import contextlib


class ClockError(Exception):
    """Raised on invalid clock operations (e.g. moving time backwards)."""


class VirtualClock:
    """A monotonically advancing virtual clock with per-category accounting.

    Time is a float in virtual seconds.  ``advance`` moves the clock
    forward and attributes the elapsed interval to a category, so a
    run can later be decomposed (compute vs. transport vs. marshaling).
    """

    def __init__(self, name: str = "clock", start: float = 0.0,
                 record_events: bool = False) -> None:
        if start < 0:
            raise ClockError("clock cannot start before t=0")
        self.name = name
        self._now = float(start)
        self._accounts: Dict[str, float] = {}
        # the per-advance event log is opt-in (record_events=True or the
        # tracing() context): clocks on the hot path advance millions of
        # times, and an always-on list both costs memory and grows
        # unboundedly for long runs
        self._events: List[Tuple[float, str]] = []
        self._trace_enabled = bool(record_events)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float, category: str = "other") -> float:
        """Move time forward by ``seconds``, billed to ``category``.

        Returns the new current time.  Negative durations are rejected;
        zero-length advances are permitted (and still recorded in the
        account so call counts remain inspectable).
        """
        if seconds < 0:
            raise ClockError(
                f"cannot advance clock {self.name!r} by {seconds} (< 0)"
            )
        self._now += seconds
        self._accounts[category] = self._accounts.get(category, 0.0) + seconds
        if self._trace_enabled:
            self._events.append((self._now, category))
        return self._now

    def advance_to(self, deadline: float, category: str = "wait") -> float:
        """Advance to an absolute time, if it is in the future.

        Used for synchronization: a guest waiting on a device completion
        jumps to the completion timestamp.  Advancing to a time already in
        the past is a no-op (the waiter was late, not the event).
        """
        if deadline > self._now:
            self.advance(deadline - self._now, category)
        return self._now

    def account(self, category: str) -> float:
        """Total virtual seconds billed to ``category``."""
        return self._accounts.get(category, 0.0)

    def accounts(self) -> Dict[str, float]:
        """A copy of the full category → seconds breakdown."""
        return dict(self._accounts)

    @property
    def events(self) -> List[Tuple[float, str]]:
        """The recorded (timestamp, category) events (empty unless the
        clock was built with ``record_events=True`` or advanced inside a
        ``tracing()`` context)."""
        return list(self._events)

    def clear_events(self) -> None:
        self._events.clear()

    @contextlib.contextmanager
    def tracing(self) -> Iterator[List[Tuple[float, str]]]:
        """Record (timestamp, category) events while the context is open."""
        previous = self._trace_enabled
        self._trace_enabled = True
        try:
            yield self._events
        finally:
            self._trace_enabled = previous

    def fork(self, name: str) -> "VirtualClock":
        """A new clock starting at this clock's current time."""
        return VirtualClock(name=name, start=self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock({self.name!r}, now={self._now:.6f})"


@dataclass
class CostModel:
    """Cost parameters for the remoting stack, in virtual seconds.

    The defaults are loosely calibrated to the paper's testbed scale
    (microseconds per call, GB/s-order copy bandwidth) so the Figure 5
    overhead shape falls out of workload call patterns.  All parameters
    are plain floats so experiments can sweep them.
    """

    #: fixed cost the guest pays to enter/exit a native API call
    native_call_overhead: float = 0.2e-6
    #: cost to marshal/unmarshal one call's fixed-size arguments
    marshal_call_cost: float = 0.6e-6
    #: additional marshal cost per byte of buffer payload
    marshal_byte_cost: float = 0.002e-9
    #: one-way transport latency per forwarded command
    transport_latency: float = 1.8e-6
    #: transport cost per byte of payload
    transport_byte_cost: float = 0.008e-9
    #: router interposition cost per command (policy check + schedule)
    router_cost: float = 0.4e-6
    #: server dispatch cost per command (lookup + unmarshal glue)
    dispatch_cost: float = 0.5e-6
    #: cost charged per MMIO trap under full virtualization (baseline)
    mmio_trap_cost: float = 12.0e-6
    #: number of MMIO/doorbell accesses a single API call expands to when
    #: the silo is driven through a trapping hardware interface
    mmio_traps_per_call: int = 18

    def forward_cost(self, payload_bytes: int) -> float:
        """One-way cost of forwarding a command with ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return (
            self.marshal_call_cost
            + self.marshal_byte_cost * payload_bytes
            + self.transport_latency
            + self.transport_byte_cost * payload_bytes
            + self.router_cost
        )

    def return_cost(self, payload_bytes: int) -> float:
        """Cost of the reply leg (no router interposition on returns)."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return (
            self.marshal_call_cost
            + self.marshal_byte_cost * payload_bytes
            + self.transport_latency
            + self.transport_byte_cost * payload_bytes
        )

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every remoting cost multiplied by ``factor``.

        Device costs are not part of this model, so scaling expresses
        "a faster/slower interconnect or hypervisor" in one knob.
        """
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return CostModel(
            native_call_overhead=self.native_call_overhead,
            marshal_call_cost=self.marshal_call_cost * factor,
            marshal_byte_cost=self.marshal_byte_cost * factor,
            transport_latency=self.transport_latency * factor,
            transport_byte_cost=self.transport_byte_cost * factor,
            router_cost=self.router_cost * factor,
            dispatch_cost=self.dispatch_cost * factor,
            mmio_trap_cost=self.mmio_trap_cost,
            mmio_traps_per_call=self.mmio_traps_per_call,
        )


@dataclass
class Stopwatch:
    """Measures an interval on a virtual clock."""

    clock: VirtualClock
    started_at: float = field(default=0.0)
    running: bool = field(default=False)

    def start(self) -> "Stopwatch":
        self.started_at = self.clock.now
        self.running = True
        return self

    def elapsed(self) -> float:
        if not self.running:
            raise ClockError("stopwatch was never started")
        return self.clock.now - self.started_at


def merge_max(*clocks: VirtualClock) -> float:
    """The latest current time among ``clocks`` (barrier semantics)."""
    if not clocks:
        raise ClockError("merge_max needs at least one clock")
    return max(c.now for c in clocks)
