"""Benchmark workloads: Rodinia-style OpenCL apps + Inception on MVNC.

Each workload is real host code against the 39-function OpenCL API (or
the MVNC API), computing real results with numpy-backed kernels.  The
same workload object runs unmodified against the native API module or
an AvA-forwarded guest library — which is precisely the compatibility
property API remoting preserves and what the Figure 5 experiment
measures.
"""

from repro.workloads.base import (
    CLEnv,
    OpenCLWorkload,
    WorkloadResult,
    close_env,
    open_env,
)
from repro.workloads.backprop import BackpropWorkload
from repro.workloads.bfs import BFSWorkload
from repro.workloads.gaussian import GaussianWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.lavamd import LavaMDWorkload
from repro.workloads.lud import LUDWorkload
from repro.workloads.nn import NNWorkload
from repro.workloads.nw import NWWorkload
from repro.workloads.pathfinder import PathfinderWorkload
from repro.workloads.srad import SradWorkload
from repro.workloads.inception import InceptionWorkload, build_inception_graph

#: the Figure 5 OpenCL workload suite, in the paper's bar order
OPENCL_WORKLOADS = [
    BackpropWorkload,
    BFSWorkload,
    GaussianWorkload,
    HotspotWorkload,
    KMeansWorkload,
    LavaMDWorkload,
    LUDWorkload,
    NNWorkload,
    NWWorkload,
    PathfinderWorkload,
    SradWorkload,
]

__all__ = [
    "BackpropWorkload",
    "BFSWorkload",
    "CLEnv",
    "GaussianWorkload",
    "HotspotWorkload",
    "InceptionWorkload",
    "KMeansWorkload",
    "LUDWorkload",
    "LavaMDWorkload",
    "NNWorkload",
    "NWWorkload",
    "OPENCL_WORKLOADS",
    "OpenCLWorkload",
    "PathfinderWorkload",
    "SradWorkload",
    "WorkloadResult",
    "build_inception_graph",
    "close_env",
    "open_env",
]
