"""Rodinia ``backprop``: one training step of a 2-layer perceptron.

Call pattern: a handful of medium buffers up, four kernel launches, two
reads back — moderate chattiness, moderate data volume.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void bp_layerforward(__global float *x, __global float *w,
                              __global float *out, int in_n, int out_n) {}
__kernel void bp_output_error(__global float *out, __global float *target,
                              __global float *delta, int n) {}
__kernel void bp_hidden_error(__global float *delta_o, __global float *w2,
                              __global float *hidden, __global float *delta_h,
                              int hid_n, int out_n) {}
__kernel void bp_adjust_weights(__global float *delta, __global float *ly,
                                __global float *w, int in_n, int out_n,
                                float eta) {}
"""


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@register_kernel("bp_layerforward", [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=2.0, bytes_per_item=8.0)
def _bp_layerforward(ctx: LaunchContext) -> None:
    in_n = int(ctx.scalar(3))
    out_n = int(ctx.scalar(4))
    x = ctx.buf(0)[:in_n]
    w = ctx.buf(1)[: in_n * out_n].reshape(in_n, out_n)
    ctx.buf(2)[:out_n] = _sigmoid(x @ w)


@register_kernel("bp_output_error", [BUFFER, BUFFER, BUFFER, SCALAR],
                 flops_per_item=3.0, bytes_per_item=12.0)
def _bp_output_error(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(3))
    out = ctx.buf(0)[:n]
    target = ctx.buf(1)[:n]
    ctx.buf(2)[:n] = out * (1.0 - out) * (target - out)


@register_kernel("bp_hidden_error",
                 [BUFFER, BUFFER, BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=4.0, bytes_per_item=12.0)
def _bp_hidden_error(ctx: LaunchContext) -> None:
    hid_n = int(ctx.scalar(4))
    out_n = int(ctx.scalar(5))
    delta_o = ctx.buf(0)[:out_n]
    w2 = ctx.buf(1)[: hid_n * out_n].reshape(hid_n, out_n)
    hidden = ctx.buf(2)[:hid_n]
    ctx.buf(3)[:hid_n] = hidden * (1.0 - hidden) * (w2 @ delta_o)


@register_kernel("bp_adjust_weights",
                 [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=3.0, bytes_per_item=12.0)
def _bp_adjust_weights(ctx: LaunchContext) -> None:
    in_n = int(ctx.scalar(3))
    out_n = int(ctx.scalar(4))
    eta = float(ctx.scalar(5))
    delta = ctx.buf(0)[:out_n]
    ly = ctx.buf(1)[:in_n]
    w = ctx.buf(2)[: in_n * out_n].reshape(in_n, out_n)
    w += eta * np.outer(ly, delta)


class BackpropWorkload(OpenCLWorkload):
    """One forward + backward + update step, verified against numpy."""

    name = "backprop"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.in_n = max(8, int(131072 * scale))
        self.hid_n = 128
        self.out_n = 16
        self.eta = 0.3

    def _inputs(self) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            "x": rng.random(self.in_n, dtype=np.float32),
            "w1": (rng.random((self.in_n, self.hid_n), dtype=np.float32)
                   - 0.5) * 0.1,
            "w2": (rng.random((self.hid_n, self.out_n), dtype=np.float32)
                   - 0.5) * 0.1,
            "target": rng.random(self.out_n, dtype=np.float32),
        }

    def reference(self) -> Dict[str, np.ndarray]:
        v = self._inputs()
        hidden = _sigmoid(v["x"] @ v["w1"])
        out = _sigmoid(hidden @ v["w2"])
        delta_o = out * (1 - out) * (v["target"] - out)
        delta_h = hidden * (1 - hidden) * (v["w2"] @ delta_o)
        w2 = v["w2"] + self.eta * np.outer(hidden, delta_o)
        w1 = v["w1"] + self.eta * np.outer(v["x"], delta_h)
        return {"w1": w1, "w2": w2, "out": out}

    def run(self, cl: Any) -> WorkloadResult:
        v = self._inputs()
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            forward = env.kernel(program, "bp_layerforward")
            out_err = env.kernel(program, "bp_output_error")
            hid_err = env.kernel(program, "bp_hidden_error")
            adjust = env.kernel(program, "bp_adjust_weights")

            x = env.buffer(v["x"].nbytes, host=v["x"])
            w1 = env.buffer(v["w1"].nbytes, host=v["w1"])
            w2 = env.buffer(v["w2"].nbytes, host=v["w2"])
            target = env.buffer(v["target"].nbytes, host=v["target"])
            hidden = env.buffer(4 * self.hid_n)
            out = env.buffer(4 * self.out_n)
            delta_o = env.buffer(4 * self.out_n)
            delta_h = env.buffer(4 * self.hid_n)

            env.set_args(forward, x, w1, hidden, self.in_n, self.hid_n)
            env.launch(forward, [self.in_n * self.hid_n])
            env.set_args(forward, hidden, w2, out, self.hid_n, self.out_n)
            env.launch(forward, [self.hid_n * self.out_n])
            env.set_args(out_err, out, target, delta_o, self.out_n)
            env.launch(out_err, [self.out_n])
            env.set_args(hid_err, delta_o, w2, hidden, delta_h, self.hid_n,
                         self.out_n)
            env.launch(hid_err, [self.hid_n])
            env.set_args(adjust, delta_o, hidden, w2, self.hid_n, self.out_n,
                         float(self.eta))
            env.launch(adjust, [self.hid_n * self.out_n])
            env.set_args(adjust, delta_h, x, w1, self.in_n, self.hid_n,
                         float(self.eta))
            env.launch(adjust, [self.in_n * self.hid_n])
            env.finish()

            got_w1 = env.read(w1, 4 * self.in_n * self.hid_n).reshape(
                self.in_n, self.hid_n)
            got_w2 = env.read(w2, 4 * self.hid_n * self.out_n).reshape(
                self.hid_n, self.out_n)
        finally:
            close_env(env)
        ref = self.reference()
        ok = (np.allclose(got_w1, ref["w1"], atol=1e-4)
              and np.allclose(got_w2, ref["w2"], atol=1e-4))
        return WorkloadResult(self.name, {"w1": got_w1, "w2": got_w2}, ok)
