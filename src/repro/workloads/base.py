"""Shared host-side plumbing for the OpenCL workloads.

Everything here goes through the public API object (``cl``) only — the
workloads cannot tell whether they are talking to the native library or
to an AvA guest library, because the call surface is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.opencl import types
from repro.remoting.buffers import OutBox


class WorkloadError(Exception):
    """A workload hit an unexpected API error."""


def _check(code: int, what: str) -> None:
    if code != types.CL_SUCCESS:
        raise WorkloadError(f"{what} failed with CL error {code}")


@dataclass
class CLEnv:
    """One opened OpenCL environment (platform→queue) plus cleanup state."""

    cl: Any
    platform: Any
    device: Any
    context: Any
    queue: Any
    _mems: List[Any] = field(default_factory=list)
    _kernels: List[Any] = field(default_factory=list)
    _programs: List[Any] = field(default_factory=list)

    # -- buffers -------------------------------------------------------------

    def buffer(self, size: int, flags: int = types.CL_MEM_READ_WRITE,
               host: Optional[np.ndarray] = None) -> Any:
        if host is not None:
            flags |= types.CL_MEM_COPY_HOST_PTR
        err = OutBox()
        mem = self.cl.clCreateBuffer(self.context, flags, int(size), host,
                                     err)
        _check(err.value, "clCreateBuffer")
        self._mems.append(mem)
        return mem

    def write(self, mem: Any, data: np.ndarray, blocking: bool = True,
              offset: int = 0) -> None:
        _check(
            self.cl.clEnqueueWriteBuffer(
                self.queue, mem,
                types.CL_TRUE if blocking else types.CL_FALSE,
                offset, data.nbytes, data, 0, None, None,
            ),
            "clEnqueueWriteBuffer",
        )

    def read(self, mem: Any, nbytes: int, dtype: Any = np.float32,
             blocking: bool = True, offset: int = 0) -> np.ndarray:
        out = np.zeros(nbytes // np.dtype(dtype).itemsize, dtype=dtype)
        _check(
            self.cl.clEnqueueReadBuffer(
                self.queue, mem,
                types.CL_TRUE if blocking else types.CL_FALSE,
                offset, nbytes, out, 0, None, None,
            ),
            "clEnqueueReadBuffer",
        )
        return out

    # -- programs / kernels ---------------------------------------------------

    def program(self, source: str) -> Any:
        err = OutBox()
        program = self.cl.clCreateProgramWithSource(self.context, 1, source,
                                                    None, err)
        _check(err.value, "clCreateProgramWithSource")
        _check(
            self.cl.clBuildProgram(program, 0, None, "", None, None),
            "clBuildProgram",
        )
        self._programs.append(program)
        return program

    def kernel(self, program: Any, name: str) -> Any:
        err = OutBox()
        kernel = self.cl.clCreateKernel(program, name, err)
        _check(err.value, f"clCreateKernel({name})")
        self._kernels.append(kernel)
        return kernel

    def set_args(self, kernel: Any, *args: Any) -> None:
        for index, value in enumerate(args):
            if isinstance(value, float):
                size, wire = 8, float(value)
            elif isinstance(value, int) and not isinstance(value, bool):
                # could be a scalar or a buffer handle; either way one word
                size, wire = 8, value
            else:
                size, wire = 8, value
            _check(
                self.cl.clSetKernelArg(kernel, index, size, wire),
                f"clSetKernelArg({index})",
            )

    def launch(self, kernel: Any, global_size: List[int],
               local_size: Optional[List[int]] = None) -> None:
        _check(
            self.cl.clEnqueueNDRangeKernel(
                self.queue, kernel, len(global_size), None,
                [int(g) for g in global_size],
                [int(l) for l in local_size] if local_size else None,
                0, None, None,
            ),
            "clEnqueueNDRangeKernel",
        )

    def finish(self) -> None:
        _check(self.cl.clFinish(self.queue), "clFinish")

    # -- teardown ----------------------------------------------------------------

    def close(self) -> None:
        for kernel in self._kernels:
            self.cl.clReleaseKernel(kernel)
        for program in self._programs:
            self.cl.clReleaseProgram(program)
        for mem in self._mems:
            self.cl.clReleaseMemObject(mem)
        self.cl.clReleaseCommandQueue(self.queue)
        self.cl.clReleaseContext(self.context)
        self._kernels.clear()
        self._programs.clear()
        self._mems.clear()


def open_env(cl: Any) -> CLEnv:
    """Standard discovery + context + queue boilerplate."""
    platforms = [None]
    _check(cl.clGetPlatformIDs(1, platforms, None), "clGetPlatformIDs")
    devices = [None]
    _check(
        cl.clGetDeviceIDs(platforms[0], types.CL_DEVICE_TYPE_GPU, 1, devices,
                          None),
        "clGetDeviceIDs",
    )
    err = OutBox()
    context = cl.clCreateContext(None, 1, devices, None, None, err)
    _check(err.value, "clCreateContext")
    queue = cl.clCreateCommandQueue(context, devices[0], 0, err)
    _check(err.value, "clCreateCommandQueue")
    return CLEnv(cl=cl, platform=platforms[0], device=devices[0],
                 context=context, queue=queue)


def close_env(env: CLEnv) -> None:
    env.close()


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    outputs: Dict[str, np.ndarray]
    verified: bool
    detail: str = ""


class OpenCLWorkload:
    """Base class: a named, sized, verifiable OpenCL application."""

    name = "abstract"
    #: rough native runtime scale; used by tests to pick small cases
    default_scale = 1.0

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        self.scale = scale
        self.seed = seed
        self._reference_cache: Optional[Dict[str, np.ndarray]] = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        """Memoize ``reference()`` — workloads verify against it on every
        run and the reference computation can rival the run itself."""
        super().__init_subclass__(**kwargs)
        if "reference" in cls.__dict__:
            uncached = cls.__dict__["reference"]

            def cached(self, _uncached=uncached):
                if self._reference_cache is None:
                    self._reference_cache = _uncached(self)
                return self._reference_cache

            cached.__doc__ = uncached.__doc__
            cls.reference = cached

    def run(self, cl: Any) -> WorkloadResult:
        """Run against an API object; must verify its own results."""
        raise NotImplementedError

    def reference(self) -> Dict[str, np.ndarray]:
        """Pure-numpy reference results."""
        raise NotImplementedError
