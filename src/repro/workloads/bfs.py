"""Rodinia ``bfs``: level-synchronous breadth-first search.

The chatty one: every level launches two kernels and then *blocks* on a
4-byte read of the continuation flag — the host cannot know whether to
iterate without it.  Per-level synchronization makes this workload the
most sensitive to forwarding round-trip latency, which is why it sits
at the high end of Figure 5.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void bfs_kernel1(__global int *starts, __global int *counts,
                          __global int *edges, __global int *mask,
                          __global int *updating, __global int *visited,
                          __global int *cost, int n) {}
__kernel void bfs_kernel2(__global int *mask, __global int *updating,
                          __global int *visited, __global int *flag,
                          int n) {}
"""


@register_kernel(
    "bfs_kernel1",
    [BUFFER, BUFFER, BUFFER, BUFFER, BUFFER, BUFFER, BUFFER, SCALAR],
    flops_per_item=6.0, bytes_per_item=40.0, efficiency=0.6,
)
def _bfs_kernel1(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(7))
    starts = ctx.buf(0, np.int32)[:n]
    counts = ctx.buf(1, np.int32)[:n]
    edges = ctx.buf(2, np.int32)
    mask = ctx.buf(3, np.int32)
    updating = ctx.buf(4, np.int32)
    visited = ctx.buf(5, np.int32)
    cost = ctx.buf(6, np.int32)
    frontier = np.nonzero(mask[:n])[0]
    if frontier.size == 0:
        return
    # the generated graphs are regular (fixed out-degree), so the
    # neighbor gather vectorizes as a dense index grid
    degree = int(counts[0])
    gather = starts[frontier][:, None] + np.arange(degree, dtype=np.int32)
    neighbors = edges[gather.reshape(-1)]
    levels = np.repeat(cost[frontier] + 1, degree)
    fresh = visited[neighbors] == 0
    mask[frontier] = 0
    cost[neighbors[fresh]] = levels[fresh]
    updating[neighbors[fresh]] = 1


@register_kernel("bfs_kernel2", [BUFFER, BUFFER, BUFFER, BUFFER, SCALAR],
                 flops_per_item=2.0, bytes_per_item=16.0)
def _bfs_kernel2(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(4))
    mask = ctx.buf(0, np.int32)
    updating = ctx.buf(1, np.int32)
    visited = ctx.buf(2, np.int32)
    flag = ctx.buf(3, np.int32)
    fresh = np.nonzero(updating[:n])[0]
    if fresh.size:
        mask[fresh] = 1
        visited[fresh] = 1
        updating[fresh] = 0
        flag[0] = 1


def _make_graph(n: int, degree: int, seed: int):
    """A connected-ish random graph in CSR form (deterministic)."""
    rng = np.random.default_rng(seed)
    counts = np.full(n, degree, dtype=np.int32)
    starts = np.zeros(n, dtype=np.int32)
    starts[1:] = np.cumsum(counts)[:-1].astype(np.int32)
    edges = rng.integers(0, n, size=int(counts.sum()), dtype=np.int32)
    # chain edges guarantee reachability and a deep BFS tree
    for node in range(1, n):
        edges[starts[node]] = node - 1 if node % 7 else node // 2
    return starts, counts, edges


def _bfs_reference(starts, counts, edges, n: int) -> np.ndarray:
    cost = np.full(n, -1, dtype=np.int32)
    cost[0] = 0
    frontier = [0]
    while frontier:
        next_frontier = []
        for node in frontier:
            for edge in edges[starts[node]:starts[node] + counts[node]]:
                if cost[edge] == -1:
                    cost[edge] = cost[node] + 1
                    next_frontier.append(int(edge))
        frontier = next_frontier
    return cost


class BFSWorkload(OpenCLWorkload):
    """Level-synchronous BFS with per-level host synchronization."""

    name = "bfs"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(64, int(262144 * scale))
        self.degree = 4

    def reference(self) -> Dict[str, np.ndarray]:
        starts, counts, edges = _make_graph(self.n, self.degree, self.seed)
        return {"cost": _bfs_reference(starts, counts, edges, self.n)}

    def run(self, cl: Any) -> WorkloadResult:
        starts, counts, edges = _make_graph(self.n, self.degree, self.seed)
        n = self.n
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel1 = env.kernel(program, "bfs_kernel1")
            kernel2 = env.kernel(program, "bfs_kernel2")

            mask = np.zeros(n, dtype=np.int32)
            visited = np.zeros(n, dtype=np.int32)
            cost = np.full(n, -1, dtype=np.int32)
            mask[0] = 1
            visited[0] = 1
            cost[0] = 0

            b_starts = env.buffer(starts.nbytes, host=starts)
            b_counts = env.buffer(counts.nbytes, host=counts)
            b_edges = env.buffer(edges.nbytes, host=edges)
            b_mask = env.buffer(mask.nbytes, host=mask)
            b_updating = env.buffer(4 * n,
                                    host=np.zeros(n, dtype=np.int32))
            b_visited = env.buffer(visited.nbytes, host=visited)
            b_cost = env.buffer(cost.nbytes, host=cost)
            b_flag = env.buffer(4)

            env.set_args(kernel1, b_starts, b_counts, b_edges, b_mask,
                         b_updating, b_visited, b_cost, n)
            env.set_args(kernel2, b_mask, b_updating, b_visited, b_flag, n)

            zero = np.zeros(1, dtype=np.int32)
            iterations = 0
            while True:
                env.write(b_flag, zero, blocking=False)
                env.launch(kernel1, [n])
                env.launch(kernel2, [n])
                flag = env.read(b_flag, 4, dtype=np.int32, blocking=True)
                iterations += 1
                if flag[0] == 0 or iterations > n:
                    break
            env.finish()
            got = env.read(b_cost, 4 * n, dtype=np.int32)
        finally:
            close_env(env)
        ok = bool((got == self.reference()["cost"]).all())
        return WorkloadResult(self.name, {"cost": got}, ok,
                              detail=f"{iterations} levels")
