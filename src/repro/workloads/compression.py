"""Compression offload workload for the QuickAssist extension target.

A log-shipping pipeline: compress a corpus of text-like blocks through
the DC API, then decompress and verify the round trip.  Call pattern:
few session calls, then bulk data requests — another coarse-grained API
where forwarding overhead should be small.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.qat import api as qat_api
from repro.remoting.buffers import OutBox
from repro.workloads.base import WorkloadResult

_WORDS = (
    b"accelerator ", b"hypervisor ", b"virtualization ", b"interposition ",
    b"transport ", b"forwarding ", b"command ", b"buffer ", b"kernel ",
    b"the ", b"a ", b"of ", b"and ", b"\n",
)


def make_corpus(blocks: int, block_bytes: int, seed: int) -> list:
    """Deterministic compressible text blocks."""
    rng = np.random.default_rng(seed)
    corpus = []
    for _ in range(blocks):
        indices = rng.integers(0, len(_WORDS), size=block_bytes // 6)
        block = b"".join(_WORDS[i] for i in indices)[:block_bytes]
        corpus.append(block.ljust(block_bytes, b"."))
    return corpus


class CompressionWorkload:
    """Compress + decompress a corpus, verifying the round trip."""

    name = "compression"

    def __init__(self, blocks: int = 16, block_kib: int = 64,
                 level: int = 6, seed: int = 42) -> None:
        self.blocks = blocks
        self.block_bytes = block_kib * 1024
        self.level = level
        self.seed = seed

    def run(self, qa: Any) -> WorkloadResult:
        corpus = make_corpus(self.blocks, self.block_bytes, self.seed)

        count = OutBox()
        if qa.cpaDcGetNumInstances(count) != qat_api.CPA_STATUS_SUCCESS:
            return WorkloadResult(self.name, {}, False, "no instances")
        instance = OutBox()
        if qa.cpaDcStartInstance(0, instance) != qat_api.CPA_STATUS_SUCCESS:
            return WorkloadResult(self.name, {}, False, "start failed")
        comp = OutBox()
        decomp = OutBox()
        assert qa.cpaDcInitSession(
            instance.value, comp, self.level, qat_api.CPA_DC_DIR_COMPRESS
        ) == qat_api.CPA_STATUS_SUCCESS
        assert qa.cpaDcInitSession(
            instance.value, decomp, self.level,
            qat_api.CPA_DC_DIR_DECOMPRESS
        ) == qat_api.CPA_STATUS_SUCCESS

        compressed_total = 0
        ok = True
        for block in corpus:
            dst = bytearray(self.block_bytes + 1024)
            produced = OutBox()
            code = qa.cpaDcCompressData(
                comp.value, block, len(block), dst, len(dst), produced
            )
            if code != qat_api.CPA_STATUS_SUCCESS:
                ok = False
                break
            compressed = bytes(dst[: produced.value])
            compressed_total += len(compressed)

            back = bytearray(self.block_bytes)
            restored = OutBox()
            code = qa.cpaDcDecompressData(
                decomp.value, compressed, len(compressed), back, len(back),
                restored,
            )
            if code != qat_api.CPA_STATUS_SUCCESS or \
                    bytes(back[: restored.value]) != block:
                ok = False
                break

        stats_in = OutBox()
        stats_out = OutBox()
        stats_reqs = OutBox()
        qa.cpaDcGetStats(instance.value, stats_in, stats_out, stats_reqs)

        qa.cpaDcRemoveSession(comp.value)
        qa.cpaDcRemoveSession(decomp.value)
        qa.cpaDcStopInstance(instance.value)

        ratio = compressed_total / (self.blocks * self.block_bytes)
        ok = ok and ratio < 0.7 and stats_reqs.value == 2 * self.blocks
        return WorkloadResult(
            self.name, {}, bool(ok),
            detail=f"{self.blocks} blocks, ratio {ratio:.2f}",
        )
