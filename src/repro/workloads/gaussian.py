"""Rodinia ``gaussian``: dense Gaussian elimination, Fan1/Fan2 kernels.

Call pattern: 2·(n−1) dependent kernel launches with no host read-backs
until the end — deep asynchronous pipelining territory.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void gaussian_fan1(__global float *a, __global float *m, int n,
                            int t) {}
__kernel void gaussian_fan2(__global float *a, __global float *b,
                            __global float *m, int n, int t) {}
"""


@register_kernel("gaussian_fan1", [BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=1.0, bytes_per_item=8.0)
def _fan1(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(2))
    t = int(ctx.scalar(3))
    a = ctx.buf(0)[: n * n].reshape(n, n)
    m = ctx.buf(1)[: n * n].reshape(n, n)
    m[t + 1:, t] = a[t + 1:, t] / a[t, t]


@register_kernel("gaussian_fan2", [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=2.0, bytes_per_item=12.0)
def _fan2(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(3))
    t = int(ctx.scalar(4))
    a = ctx.buf(0)[: n * n].reshape(n, n)
    b = ctx.buf(1)[:n]
    m = ctx.buf(2)[: n * n].reshape(n, n)
    multipliers = m[t + 1:, t][:, None]
    a[t + 1:, t:] -= multipliers * a[t, t:][None, :]
    b[t + 1:] -= m[t + 1:, t] * b[t]


class GaussianWorkload(OpenCLWorkload):
    """Solve Ax=b by forward elimination + host back-substitution."""

    name = "gaussian"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(16, int(512 * scale))

    def _inputs(self):
        rng = np.random.default_rng(self.seed)
        a = rng.random((self.n, self.n), dtype=np.float32)
        a += np.eye(self.n, dtype=np.float32) * self.n  # well-conditioned
        b = rng.random(self.n, dtype=np.float32)
        return a, b

    def reference(self) -> Dict[str, np.ndarray]:
        a, b = self._inputs()
        return {"x": np.linalg.solve(a.astype(np.float64),
                                     b.astype(np.float64)).astype(np.float32)}

    def run(self, cl: Any) -> WorkloadResult:
        a, b = self._inputs()
        n = self.n
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            fan1 = env.kernel(program, "gaussian_fan1")
            fan2 = env.kernel(program, "gaussian_fan2")

            b_a = env.buffer(a.nbytes, host=a)
            b_b = env.buffer(b.nbytes, host=b)
            b_m = env.buffer(a.nbytes,
                             host=np.zeros((n, n), dtype=np.float32))

            for t in range(n - 1):
                env.set_args(fan1, b_a, b_m, n, t)
                env.launch(fan1, [n - t - 1])
                env.set_args(fan2, b_a, b_b, b_m, n, t)
                env.launch(fan2, [(n - t - 1) * (n - t)])
            env.finish()

            upper = env.read(b_a, a.nbytes).reshape(n, n)
            rhs = env.read(b_b, b.nbytes)
        finally:
            close_env(env)

        x = np.zeros(n, dtype=np.float64)
        for i in range(n - 1, -1, -1):
            x[i] = (rhs[i] - upper[i, i + 1:] @ x[i + 1:]) / upper[i, i]
        got = x.astype(np.float32)
        ok = np.allclose(got, self.reference()["x"], atol=1e-2)
        return WorkloadResult(self.name, {"x": got}, ok)
