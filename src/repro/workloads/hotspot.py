"""Rodinia ``hotspot``: thermal simulation, iterative 2-D stencil.

Call pattern: one kernel launch per timestep on a ping-pong buffer
pair, all asynchronous, with a single read at the end.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void hotspot_step(__global float *temp_in, __global float *power,
                           __global float *temp_out, int rows, int cols,
                           float cap, float rx, float ry, float rz,
                           float amb) {}
"""


def _step(temp, power, cap, rx, ry, rz, amb):
    padded = np.pad(temp, 1, mode="edge")
    north = padded[:-2, 1:-1]
    south = padded[2:, 1:-1]
    west = padded[1:-1, :-2]
    east = padded[1:-1, 2:]
    delta = (
        power
        + (north + south - 2.0 * temp) / ry
        + (east + west - 2.0 * temp) / rx
        + (amb - temp) / rz
    ) / cap
    return (temp + delta).astype(np.float32)


@register_kernel(
    "hotspot_step",
    [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR, SCALAR, SCALAR, SCALAR, SCALAR,
     SCALAR],
    flops_per_item=15.0, bytes_per_item=12.0,
)
def _hotspot_step(ctx: LaunchContext) -> None:
    rows = int(ctx.scalar(3))
    cols = int(ctx.scalar(4))
    cap, rx, ry, rz, amb = (float(ctx.scalar(i)) for i in range(5, 10))
    temp = ctx.buf(0)[: rows * cols].reshape(rows, cols)
    power = ctx.buf(1)[: rows * cols].reshape(rows, cols)
    ctx.buf(2)[: rows * cols] = _step(temp, power, cap, rx, ry, rz,
                                      amb).reshape(-1)


class HotspotWorkload(OpenCLWorkload):
    """Iterated thermal stencil with ping-pong temperature grids."""

    name = "hotspot"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.rows = self.cols = max(16, int(512 * scale))
        self.steps = 60
        # cap=16 keeps the explicit scheme stable: each neighbour term
        # contributes 1/16 ≤ the 0.25 diffusion stability bound
        self.params = dict(cap=16.0, rx=1.0, ry=1.0, rz=4.0, amb=80.0)

    def _inputs(self):
        rng = np.random.default_rng(self.seed)
        temp = 60 + 20 * rng.random((self.rows, self.cols), dtype=np.float32)
        power = rng.random((self.rows, self.cols), dtype=np.float32) * 0.5
        return temp, power

    def reference(self) -> Dict[str, np.ndarray]:
        temp, power = self._inputs()
        for _ in range(self.steps):
            temp = _step(temp, power, **self.params)
        return {"temp": temp}

    def run(self, cl: Any) -> WorkloadResult:
        temp, power = self._inputs()
        size = temp.nbytes
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel = env.kernel(program, "hotspot_step")
            b_power = env.buffer(size, host=power)
            grids = [env.buffer(size, host=temp), env.buffer(size)]
            p = self.params
            for step in range(self.steps):
                src, dst = grids[step % 2], grids[(step + 1) % 2]
                env.set_args(kernel, src, b_power, dst, self.rows, self.cols,
                             float(p["cap"]), float(p["rx"]), float(p["ry"]),
                             float(p["rz"]), float(p["amb"]))
                env.launch(kernel, [self.rows * self.cols])
            env.finish()
            got = env.read(grids[self.steps % 2], size).reshape(
                self.rows, self.cols)
        finally:
            close_env(env)
        ok = np.allclose(got, self.reference()["temp"], atol=1e-2)
        return WorkloadResult(self.name, {"temp": got}, ok,
                              detail=f"{self.steps} steps")
