"""Inception v3 (scaled) on the simulated Neural Compute Stick.

The paper runs Inception Net v3 ported to the Movidius NCS and measures
~1% AvA overhead.  This workload builds an Inception-v3-*shaped*
network (stem convolutions + stacked inception blocks + classifier) at
a scale the FP16 numpy executor handles in milliseconds, serializes it
to the NCSDK graph format, and performs a batch of real inferences via
``mvncLoadTensor``/``mvncGetResult``.

Call pattern: a handful of API calls moving kilobyte-scale tensors
around multi-millisecond inferences — which is exactly why forwarding
overhead is negligible on this device.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.mvnc import api as mvnc_api
from repro.mvnc.graph import (
    CONV,
    CONCAT_BLOCK,
    DENSE,
    FLATTEN,
    POOL_AVG,
    POOL_MAX,
    RELU,
    SOFTMAX,
    GraphDefinition,
    GraphExecutor,
    Layer,
)
from repro.remoting.buffers import OutBox
from repro.workloads.base import WorkloadResult


def build_inception_graph(seed: int = 42, input_hw: int = 32,
                          classes: int = 10) -> GraphDefinition:
    """An Inception-v3-shaped network scaled for the simulator."""
    rng = np.random.default_rng(seed)

    def weights(*shape):
        fan_in = int(np.prod(shape[:-1])) or 1
        return (rng.normal(0, 1.0 / np.sqrt(fan_in), shape)
                .astype(np.float16))

    layers = [
        # stem: conv/stride-2 → relu → pool
        Layer(CONV, {"stride": 1},
              {"w": weights(3, 3, 3, 16), "b": np.zeros(16, np.float16)}),
        Layer(RELU),
        Layer(POOL_MAX, {"size": 2, "stride": 2}),
        # inception stack
        Layer(CONCAT_BLOCK, {"branches": ["b1x1", "b3x3", "b5x5"]}, {
            "b1x1_w": weights(1, 1, 16, 8),
            "b3x3_w": weights(3, 3, 16, 16),
            "b5x5_w": weights(5, 5, 16, 8),
        }),
        Layer(CONCAT_BLOCK, {"branches": ["b1x1", "b3x3"]}, {
            "b1x1_w": weights(1, 1, 32, 16),
            "b3x3_w": weights(3, 3, 32, 32),
        }),
        Layer(POOL_MAX, {"size": 2, "stride": 2}),
        Layer(CONCAT_BLOCK, {"branches": ["b1x1", "b3x3"]}, {
            "b1x1_w": weights(1, 1, 48, 24),
            "b3x3_w": weights(3, 3, 48, 40),
        }),
        # head: global average pool → dense → softmax
        Layer(POOL_AVG, {"size": 7, "stride": 7}),
        Layer(FLATTEN),
        Layer(DENSE, {}, {"w": weights(64, classes),
                          "b": np.zeros(classes, np.float16)}),
        Layer(SOFTMAX),
    ]
    return GraphDefinition(
        name="inception-v3-scaled",
        input_shape=(input_hw, input_hw, 3),
        layers=layers,
    )


class InceptionWorkload:
    """Batch inference through the MVNC API (native or forwarded)."""

    name = "inception"

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 batch: int = 6) -> None:
        self.seed = seed
        self.batch = batch
        self.input_hw = 32
        self.classes = 10
        self.graph_def = build_inception_graph(seed, self.input_hw,
                                               self.classes)

    def _images(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        return rng.random(
            (self.batch, self.input_hw, self.input_hw, 3)
        ).astype(np.float16)

    def reference(self) -> Dict[str, np.ndarray]:
        executor = GraphExecutor(self.graph_def)
        outputs = np.stack([
            executor.run(image).output for image in self._images()
        ])
        return {"probs": outputs}

    def run(self, mv: Any) -> WorkloadResult:
        """``mv`` is the MVNC API surface (module or guest library)."""
        images = self._images()
        blob = self.graph_def.serialize()

        device = OutBox()
        code = mv.mvncOpenDevice(None, device)
        if code != mvnc_api.MVNC_OK:
            return WorkloadResult(self.name, {}, False,
                                  detail=f"open failed: {code}")
        graph = OutBox()
        code = mv.mvncAllocateGraph(device.value, graph, blob, len(blob))
        if code != mvnc_api.MVNC_OK:
            return WorkloadResult(self.name, {}, False,
                                  detail=f"allocate failed: {code}")

        out_size = OutBox()
        mv.mvncGetGraphOption(graph.value,
                              mvnc_api.MVNC_GRAPH_OPTION_OUTPUT_SIZE,
                              out_size, OutBox())
        capacity = int(out_size.value)

        outputs = []
        for index, image in enumerate(images):
            code = mv.mvncLoadTensor(graph.value, image, image.nbytes, index)
            if code != mvnc_api.MVNC_OK:
                return WorkloadResult(self.name, {}, False,
                                      detail=f"load failed: {code}")
            result = np.zeros(capacity // 2, dtype=np.float16)
            length = OutBox()
            cookie = OutBox()
            code = mv.mvncGetResult(graph.value, result, capacity, length,
                                    cookie)
            if code != mvnc_api.MVNC_OK or cookie.value != index:
                return WorkloadResult(self.name, {}, False,
                                      detail=f"result failed: {code}")
            outputs.append(result.copy())

        mv.mvncDeallocateGraph(graph.value)
        mv.mvncCloseDevice(device.value)

        got = np.stack(outputs)
        ok = np.allclose(got, self.reference()["probs"], atol=2e-2)
        return WorkloadResult(self.name, {"probs": got}, bool(ok),
                              detail=f"{self.batch} inferences")
