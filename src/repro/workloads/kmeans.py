"""Rodinia ``kmeans``: clustering with per-iteration host read-back.

Call pattern follows Rodinia's split: the device assigns memberships,
the *host* recomputes centroids — so every iteration writes centers
down and blocks reading memberships back.  Moderate chattiness with
medium payloads.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void kmeans_assign(__global float *points, __global float *centers,
                            __global int *membership, int n, int d, int k) {}
"""


@register_kernel("kmeans_assign", [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR,
                                   SCALAR],
                 flops_per_item=48.0, bytes_per_item=36.0)
def _kmeans_assign(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(3))
    d = int(ctx.scalar(4))
    k = int(ctx.scalar(5))
    points = ctx.buf(0)[: n * d].reshape(n, d)
    centers = ctx.buf(1)[: k * d].reshape(k, d)
    distances = (
        (points[:, None, :] - centers[None, :, :]) ** 2
    ).sum(axis=2)
    ctx.buf(2, np.int32)[:n] = distances.argmin(axis=1).astype(np.int32)


def _kmeans_reference(points: np.ndarray, centers: np.ndarray,
                      iterations: int):
    k = centers.shape[0]
    membership = None
    for _ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(2)
        new_membership = distances.argmin(axis=1)
        if membership is not None and (new_membership == membership).all():
            membership = new_membership
            break
        membership = new_membership
        for j in range(k):
            chosen = points[membership == j]
            if len(chosen):
                centers[j] = chosen.mean(axis=0)
    return membership.astype(np.int32), centers


class KMeansWorkload(OpenCLWorkload):
    """Device assignment + host centroid update until convergence."""

    name = "kmeans"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(64, int(49152 * scale))
        self.d = 16
        self.k = 8
        self.max_iters = 20

    def _inputs(self):
        rng = np.random.default_rng(self.seed)
        blob_centers = rng.random((self.k, self.d), dtype=np.float32) * 10
        assignments = rng.integers(0, self.k, self.n)
        points = (blob_centers[assignments]
                  + rng.normal(0, 0.5, (self.n, self.d))).astype(np.float32)
        initial = points[:: self.n // self.k][: self.k].copy()
        return points, initial

    def reference(self) -> Dict[str, np.ndarray]:
        points, centers = self._inputs()
        membership, final = _kmeans_reference(points.copy(), centers.copy(),
                                              self.max_iters)
        return {"membership": membership, "centers": final}

    def run(self, cl: Any) -> WorkloadResult:
        points, centers = self._inputs()
        n, d, k = self.n, self.d, self.k
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            assign = env.kernel(program, "kmeans_assign")
            b_points = env.buffer(points.nbytes, host=points)
            b_centers = env.buffer(centers.nbytes, host=centers)
            b_membership = env.buffer(4 * n)
            env.set_args(assign, b_points, b_centers, b_membership, n, d, k)

            membership = None
            iterations = 0
            for _ in range(self.max_iters):
                env.launch(assign, [n * k])
                new_membership = env.read(b_membership, 4 * n,
                                          dtype=np.int32)
                iterations += 1
                if membership is not None and \
                        (new_membership == membership).all():
                    membership = new_membership
                    break
                membership = new_membership
                for j in range(k):
                    chosen = points[membership == j]
                    if len(chosen):
                        centers[j] = chosen.mean(axis=0)
                env.write(b_centers, centers, blocking=False)
            env.finish()
        finally:
            close_env(env)
        ref = self.reference()
        ok = (membership == ref["membership"]).mean() > 0.99
        return WorkloadResult(self.name, {"membership": membership}, bool(ok),
                              detail=f"{iterations} iterations")
