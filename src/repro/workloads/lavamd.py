"""Rodinia ``lavaMD``: particle potentials in a 3-D box grid.

Call pattern: a couple of big uploads and ONE heavy kernel — the
compute-bound end of the suite, where forwarding overhead vanishes.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void lavamd_force(__global float *pos, __global float *charge,
                           __global float *force, int boxes_1d,
                           int per_box, float alpha) {}
"""


def _neighbor_boxes(boxes_1d: int):
    """For each box, the flat indices of itself + adjacent boxes."""
    neighbors = []
    for bx in range(boxes_1d):
        for by in range(boxes_1d):
            for bz in range(boxes_1d):
                local = []
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            nx, ny, nz = bx + dx, by + dy, bz + dz
                            if (0 <= nx < boxes_1d and 0 <= ny < boxes_1d
                                    and 0 <= nz < boxes_1d):
                                local.append(
                                    (nx * boxes_1d + ny) * boxes_1d + nz
                                )
                neighbors.append(local)
    return neighbors


def _forces(pos, charge, boxes_1d, per_box, alpha):
    n_boxes = boxes_1d ** 3
    force = np.zeros_like(pos)
    neighbors = _neighbor_boxes(boxes_1d)
    a2 = alpha * alpha
    for home in range(n_boxes):
        h0 = home * per_box
        hp = pos[h0:h0 + per_box]
        for other in neighbors[home]:
            o0 = other * per_box
            op = pos[o0:o0 + per_box]
            oq = charge[o0:o0 + per_box]
            delta = hp[:, None, :] - op[None, :, :]
            r2 = (delta ** 2).sum(axis=2) + 0.5
            u2 = a2 * r2
            vij = np.exp(-u2) * oq[None, :]
            force[h0:h0 + per_box] += (
                (vij / r2)[:, :, None] * delta
            ).sum(axis=1)
    return force.astype(np.float32)


# cost metadata reflects the real Rodinia kernel's arithmetic density
# (~27 neighbour boxes × ~100 particles × ~60 flops per interaction) and
# its heavy divergence, independent of the scaled-down particle count the
# simulator executes
@register_kernel("lavamd_force", [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR,
                                  SCALAR],
                 flops_per_item=160000.0, bytes_per_item=48.0,
                 efficiency=0.1)
def _lavamd_force(ctx: LaunchContext) -> None:
    boxes_1d = int(ctx.scalar(3))
    per_box = int(ctx.scalar(4))
    alpha = float(ctx.scalar(5))
    n = boxes_1d ** 3 * per_box
    pos = ctx.buf(0)[: 3 * n].reshape(n, 3)
    charge = ctx.buf(1)[:n]
    out = ctx.buf(2)[: 3 * n].reshape(n, 3)
    out[:] = _forces(pos, charge, boxes_1d, per_box, alpha)


class LavaMDWorkload(OpenCLWorkload):
    """One heavy n-body-in-boxes kernel."""

    name = "lavamd"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.boxes_1d = max(2, int(6 * scale))
        self.per_box = 32
        self.alpha = 0.5

    def _inputs(self):
        rng = np.random.default_rng(self.seed)
        n = self.boxes_1d ** 3 * self.per_box
        pos = rng.random((n, 3), dtype=np.float32) * self.boxes_1d
        charge = rng.random(n, dtype=np.float32)
        return pos, charge

    def reference(self) -> Dict[str, np.ndarray]:
        pos, charge = self._inputs()
        return {"force": _forces(pos, charge, self.boxes_1d, self.per_box,
                                 self.alpha)}

    def run(self, cl: Any) -> WorkloadResult:
        pos, charge = self._inputs()
        n = pos.shape[0]
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel = env.kernel(program, "lavamd_force")
            b_pos = env.buffer(pos.nbytes, host=pos)
            b_charge = env.buffer(charge.nbytes, host=charge)
            b_force = env.buffer(pos.nbytes)
            env.set_args(kernel, b_pos, b_charge, b_force, self.boxes_1d,
                         self.per_box, float(self.alpha))
            env.launch(kernel, [n])
            env.finish()
            got = env.read(b_force, pos.nbytes).reshape(n, 3)
        finally:
            close_env(env)
        ok = np.allclose(got, self.reference()["force"], atol=1e-3)
        return WorkloadResult(self.name, {"force": got}, ok,
                              detail=f"{n} particles")
