"""Rodinia ``lud``: blocked LU decomposition.

Call pattern: three kernels per block step (diagonal, perimeter,
internal) over a shrinking trailing matrix — a medium-length dependent
launch chain with no intermediate read-backs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void lud_diagonal(__global float *a, int n, int offset, int bs) {}
__kernel void lud_perimeter(__global float *a, int n, int offset, int bs) {}
__kernel void lud_internal(__global float *a, int n, int offset, int bs) {}
"""


@register_kernel("lud_diagonal", [BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=8.0, bytes_per_item=16.0)
def _lud_diagonal(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(1))
    offset = int(ctx.scalar(2))
    bs = int(ctx.scalar(3))
    a = ctx.buf(0)[: n * n].reshape(n, n)
    block = a[offset:offset + bs, offset:offset + bs]
    for i in range(bs):
        block[i + 1:, i] /= block[i, i]
        block[i + 1:, i + 1:] -= np.outer(block[i + 1:, i], block[i, i + 1:])


@register_kernel("lud_perimeter", [BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=16.0, bytes_per_item=24.0)
def _lud_perimeter(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(1))
    offset = int(ctx.scalar(2))
    bs = int(ctx.scalar(3))
    a = ctx.buf(0)[: n * n].reshape(n, n)
    end = offset + bs
    diag = a[offset:end, offset:end]
    lower = np.tril(diag, -1) + np.eye(bs, dtype=np.float32)
    upper = np.triu(diag)
    if end < n:
        # row panel: solve L @ X = A_panel
        a[offset:end, end:] = np.linalg.solve(
            lower.astype(np.float64), a[offset:end, end:].astype(np.float64)
        ).astype(np.float32)
        # column panel: solve X @ U = A_panel
        a[end:, offset:end] = np.linalg.solve(
            upper.T.astype(np.float64), a[end:, offset:end].T.astype(np.float64)
        ).T.astype(np.float32)


@register_kernel("lud_internal", [BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=32.0, bytes_per_item=24.0)
def _lud_internal(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(1))
    offset = int(ctx.scalar(2))
    bs = int(ctx.scalar(3))
    a = ctx.buf(0)[: n * n].reshape(n, n)
    end = offset + bs
    if end < n:
        a[end:, end:] -= a[end:, offset:end] @ a[offset:end, end:]


class LUDWorkload(OpenCLWorkload):
    """In-place blocked LU; verified by L @ U ≈ A."""

    name = "lud"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(32, int(512 * scale))
        self.block = 16

    def _inputs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        a = rng.random((self.n, self.n), dtype=np.float32)
        a += np.eye(self.n, dtype=np.float32) * self.n
        return a

    def reference(self) -> Dict[str, np.ndarray]:
        return {"a": self._inputs()}

    def run(self, cl: Any) -> WorkloadResult:
        a = self._inputs()
        n, bs = self.n, self.block
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            diagonal = env.kernel(program, "lud_diagonal")
            perimeter = env.kernel(program, "lud_perimeter")
            internal = env.kernel(program, "lud_internal")
            b_a = env.buffer(a.nbytes, host=a)
            for offset in range(0, n, bs):
                env.set_args(diagonal, b_a, n, offset, bs)
                env.launch(diagonal, [bs * bs])
                if offset + bs < n:
                    env.set_args(perimeter, b_a, n, offset, bs)
                    env.launch(perimeter, [(n - offset) * bs])
                    env.set_args(internal, b_a, n, offset, bs)
                    env.launch(internal, [(n - offset - bs) ** 2])
            env.finish()
            decomposed = env.read(b_a, a.nbytes).reshape(n, n)
        finally:
            close_env(env)
        lower = np.tril(decomposed, -1) + np.eye(n, dtype=np.float32)
        upper = np.triu(decomposed)
        product = lower @ upper
        ok = np.allclose(product, a, atol=self.n * 1e-3)
        return WorkloadResult(self.name, {"lu": decomposed}, bool(ok))
