"""Rodinia ``nn``: k-nearest-neighbors by brute-force distance.

Call pattern: one large upload, one streaming kernel, one large read —
dominated by PCIe traffic, light on calls.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void nn_distance(__global float *locations, __global float *dist,
                          float lat, float lng, int n) {}
"""


@register_kernel("nn_distance", [BUFFER, BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=5.0, bytes_per_item=12.0)
def _nn_distance(ctx: LaunchContext) -> None:
    lat = float(ctx.scalar(2))
    lng = float(ctx.scalar(3))
    n = int(ctx.scalar(4))
    locations = ctx.buf(0)[: 2 * n].reshape(n, 2)
    ctx.buf(1)[:n] = np.sqrt(
        (locations[:, 0] - lat) ** 2 + (locations[:, 1] - lng) ** 2
    )


class NNWorkload(OpenCLWorkload):
    """Find the k closest records to a query point."""

    name = "nn"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(256, int(2097152 * scale))
        self.k = 10
        self.query = (30.0, 90.0)

    def _inputs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        locations = np.empty((self.n, 2), dtype=np.float32)
        locations[:, 0] = rng.random(self.n, dtype=np.float32) * 180 - 90
        locations[:, 1] = rng.random(self.n, dtype=np.float32) * 360 - 180
        return locations

    def reference(self) -> Dict[str, np.ndarray]:
        locations = self._inputs()
        distances = np.sqrt(
            (locations[:, 0] - self.query[0]) ** 2
            + (locations[:, 1] - self.query[1]) ** 2
        )
        return {"nearest": np.sort(np.argsort(distances,
                                              kind="stable")[: self.k])}

    def run(self, cl: Any) -> WorkloadResult:
        locations = self._inputs()
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel = env.kernel(program, "nn_distance")
            b_locations = env.buffer(locations.nbytes, host=locations)
            b_dist = env.buffer(4 * self.n)
            env.set_args(kernel, b_locations, b_dist, float(self.query[0]),
                         float(self.query[1]), self.n)
            env.launch(kernel, [self.n])
            distances = env.read(b_dist, 4 * self.n)
        finally:
            close_env(env)
        nearest = np.sort(np.argsort(distances, kind="stable")[: self.k])
        ok = bool((nearest == self.reference()["nearest"]).all())
        return WorkloadResult(self.name, {"nearest": nearest}, ok)
