"""Rodinia ``nw`` (Needleman-Wunsch): anti-diagonal wavefront DP.

Call pattern: 2·n−1 *tiny* dependent kernel launches (one per
anti-diagonal) — the launch-count stress test of the suite.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void nw_diagonal(__global int *score, __global int *reference,
                          int n, int diag, int penalty) {}
"""


@register_kernel("nw_diagonal", [BUFFER, BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=6.0, bytes_per_item=24.0, efficiency=0.5)
def _nw_diagonal(ctx: LaunchContext) -> None:
    n = int(ctx.scalar(2))
    diag = int(ctx.scalar(3))
    penalty = int(ctx.scalar(4))
    score = ctx.buf(0, np.int32)[: (n + 1) * (n + 1)].reshape(n + 1, n + 1)
    similarity = ctx.buf(1, np.int32)[: n * n].reshape(n, n)
    i_lo = max(1, diag - n + 1)
    i_hi = min(diag, n)
    rows = np.arange(i_lo, i_hi + 1)
    cols = diag - rows + 1
    match = score[rows - 1, cols - 1] + similarity[rows - 1, cols - 1]
    delete = score[rows - 1, cols] - penalty
    insert = score[rows, cols - 1] - penalty
    score[rows, cols] = np.maximum(match, np.maximum(delete, insert))


def _nw_reference(similarity: np.ndarray, n: int, penalty: int) -> np.ndarray:
    score = np.zeros((n + 1, n + 1), dtype=np.int32)
    score[0, :] = -penalty * np.arange(n + 1)
    score[:, 0] = -penalty * np.arange(n + 1)
    for diag in range(1, 2 * n):
        i_lo = max(1, diag - n + 1)
        i_hi = min(diag, n)
        rows = np.arange(i_lo, i_hi + 1)
        cols = diag - rows + 1
        match = score[rows - 1, cols - 1] + similarity[rows - 1, cols - 1]
        delete = score[rows - 1, cols] - penalty
        insert = score[rows, cols - 1] - penalty
        score[rows, cols] = np.maximum(match, np.maximum(delete, insert))
    return score


class NWWorkload(OpenCLWorkload):
    """Sequence alignment score matrix via wavefront kernels."""

    name = "nw"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.n = max(32, int(256 * scale))
        self.penalty = 10

    def _inputs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.integers(-4, 5, (self.n, self.n)).astype(np.int32)

    def reference(self) -> Dict[str, np.ndarray]:
        return {"score": _nw_reference(self._inputs(), self.n, self.penalty)}

    def run(self, cl: Any) -> WorkloadResult:
        similarity = self._inputs()
        n = self.n
        score = np.zeros((n + 1, n + 1), dtype=np.int32)
        score[0, :] = -self.penalty * np.arange(n + 1)
        score[:, 0] = -self.penalty * np.arange(n + 1)
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel = env.kernel(program, "nw_diagonal")
            b_score = env.buffer(score.nbytes, host=score)
            b_similarity = env.buffer(similarity.nbytes, host=similarity)
            for diag in range(1, 2 * n):
                env.set_args(kernel, b_score, b_similarity, n, diag,
                             self.penalty)
                width = min(diag, n) - max(1, diag - n + 1) + 1
                env.launch(kernel, [width])
            env.finish()
            got = env.read(b_score, score.nbytes, dtype=np.int32).reshape(
                n + 1, n + 1)
        finally:
            close_env(env)
        ok = bool((got == self.reference()["score"]).all())
        return WorkloadResult(self.name, {"score": got}, ok,
                              detail=f"{2 * n - 1} diagonals")
