"""Rodinia ``pathfinder``: row-by-row dynamic programming.

Call pattern: one small kernel per grid row, all async, one final read.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void pathfinder_row(__global int *wall, __global int *src,
                             __global int *dst, int cols, int row) {}
"""


@register_kernel("pathfinder_row", [BUFFER, BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=4.0, bytes_per_item=16.0)
def _pathfinder_row(ctx: LaunchContext) -> None:
    cols = int(ctx.scalar(3))
    row = int(ctx.scalar(4))
    wall = ctx.buf(0, np.int32)
    src = ctx.buf(1, np.int32)[:cols]
    dst = ctx.buf(2, np.int32)
    left = np.empty(cols, dtype=np.int32)
    right = np.empty(cols, dtype=np.int32)
    left[0], left[1:] = src[0], src[:-1]
    right[-1], right[:-1] = src[-1], src[1:]
    best = np.minimum(src, np.minimum(left, right))
    dst[:cols] = wall[row * cols:(row + 1) * cols] + best


def _pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    rows, cols = wall.shape
    current = wall[0].astype(np.int32)
    for row in range(1, rows):
        left = np.empty(cols, dtype=np.int32)
        right = np.empty(cols, dtype=np.int32)
        left[0], left[1:] = current[0], current[:-1]
        right[-1], right[:-1] = current[-1], current[1:]
        current = wall[row] + np.minimum(current,
                                         np.minimum(left, right))
    return current


class PathfinderWorkload(OpenCLWorkload):
    """Minimum-cost path accumulation over a cost grid."""

    name = "pathfinder"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.rows = 100
        self.cols = max(256, int(131072 * scale))

    def _inputs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, 10, (self.rows, self.cols)).astype(np.int32)

    def reference(self) -> Dict[str, np.ndarray]:
        return {"result": _pathfinder_reference(self._inputs())}

    def run(self, cl: Any) -> WorkloadResult:
        wall = self._inputs()
        rows, cols = wall.shape
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel = env.kernel(program, "pathfinder_row")
            b_wall = env.buffer(wall.nbytes, host=wall)
            pong = [env.buffer(4 * cols, host=wall[0].copy()),
                    env.buffer(4 * cols)]
            for row in range(1, rows):
                src, dst = pong[(row - 1) % 2], pong[row % 2]
                env.set_args(kernel, b_wall, src, dst, cols, row)
                env.launch(kernel, [cols])
            env.finish()
            got = env.read(pong[(rows - 1) % 2], 4 * cols, dtype=np.int32)
        finally:
            close_env(env)
        ok = bool((got == self.reference()["result"]).all())
        return WorkloadResult(self.name, {"result": got}, ok,
                              detail=f"{rows} rows")
