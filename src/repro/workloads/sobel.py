"""Sobel edge detection over an OpenCL image object.

Exercises the image half of the memory API (``clCreateImage``,
fill/write/read on an image object) through the full stack.  Call
pattern: one image + one buffer, two launches, one read — low
chattiness, image-shaped metadata.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.opencl import types
from repro.remoting.buffers import OutBox
from repro.workloads.base import (
    OpenCLWorkload,
    WorkloadResult,
    _check,
    close_env,
    open_env,
)

SOURCE = """
__kernel void sobel_gradient(__global float *img, __global float *out,
                             int rows, int cols) {}
__kernel void sobel_threshold(__global float *img, float level, int n) {}
"""

_KX = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float32)
_KY = _KX.T.copy()


def _convolve3(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    padded = np.pad(image, 1, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, (3, 3))
    return np.einsum("ijkl,kl->ij", windows, kernel).astype(np.float32)


def _sobel(image: np.ndarray) -> np.ndarray:
    gx = _convolve3(image, _KX)
    gy = _convolve3(image, _KY)
    return np.sqrt(gx * gx + gy * gy).astype(np.float32)


@register_kernel("sobel_gradient", [BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=20.0, bytes_per_item=16.0)
def _sobel_gradient(ctx: LaunchContext) -> None:
    rows = int(ctx.scalar(2))
    cols = int(ctx.scalar(3))
    image = ctx.buf(0)[: rows * cols].reshape(rows, cols)
    ctx.buf(1)[: rows * cols] = _sobel(image).reshape(-1)


@register_kernel("sobel_threshold", [BUFFER, SCALAR, SCALAR],
                 flops_per_item=1.0, bytes_per_item=8.0)
def _sobel_threshold(ctx: LaunchContext) -> None:
    level = float(ctx.scalar(1))
    n = int(ctx.scalar(2))
    data = ctx.buf(0)
    data[:n] = np.where(data[:n] >= level, 1.0, 0.0)


class SobelWorkload(OpenCLWorkload):
    """Edge map of a synthetic image, via an OpenCL image object."""

    name = "sobel"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.size = max(16, int(256 * scale))
        self.level = 1.0

    def _image(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        image = rng.random((self.size, self.size), dtype=np.float32) * 0.2
        # paint rectangles so there are real edges to find
        quarter = self.size // 4
        image[quarter:-quarter, quarter:-quarter] += 0.8
        return image

    def reference(self) -> Dict[str, np.ndarray]:
        edges = _sobel(self._image())
        return {"edges": (edges >= self.level).astype(np.float32)}

    def run(self, cl: Any) -> WorkloadResult:
        image = self._image()
        rows = cols = self.size
        env = open_env(cl)
        try:
            err = OutBox()
            # the image object: R channel, float32 — created through
            # clCreateImage, filled via a write (host_ptr is unsupported
            # for images in the spec; see specs/opencl.cava)
            img = cl.clCreateImage(env.context, 0, types.CL_R,
                                   types.CL_FLOAT, cols, rows, None, err)
            _check(err.value, "clCreateImage")
            env._mems.append(img)
            env.write(img, image)

            buf = bytearray(8)
            _check(cl.clGetMemObjectInfo(img, types.CL_MEM_TYPE, 8, buf,
                                         None), "clGetMemObjectInfo")
            if int.from_bytes(bytes(buf), "little") != \
                    types.CL_MEM_OBJECT_IMAGE2D:
                return WorkloadResult(self.name, {}, False,
                                      "image type query mismatch")

            program = env.program(SOURCE)
            gradient = env.kernel(program, "sobel_gradient")
            threshold = env.kernel(program, "sobel_threshold")
            out = env.buffer(image.nbytes)
            env.set_args(gradient, img, out, rows, cols)
            env.launch(gradient, [rows * cols])
            env.set_args(threshold, out, float(self.level), rows * cols)
            env.launch(threshold, [rows * cols])
            env.finish()
            got = env.read(out, image.nbytes).reshape(rows, cols)
        finally:
            close_env(env)
        ok = bool((got == self.reference()["edges"]).all())
        return WorkloadResult(self.name, {"edges": got}, ok,
                              detail=f"{rows}x{cols} image")
