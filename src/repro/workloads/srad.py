"""Rodinia ``srad``: speckle-reducing anisotropic diffusion.

Call pattern: two dependent kernels per iteration plus a small blocking
statistics read each iteration (the mean/variance of the ROI, which the
host needs to parameterize the next step) — mixed chattiness.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.opencl.kernels import BUFFER, SCALAR, LaunchContext, register_kernel
from repro.workloads.base import OpenCLWorkload, WorkloadResult, close_env, open_env

SOURCE = """
__kernel void srad_kernel1(__global float *img, __global float *c,
                           int rows, int cols, float q0sqr) {}
__kernel void srad_kernel2(__global float *img, __global float *c,
                           int rows, int cols, float lam) {}
__kernel void srad_stats(__global float *img, __global float *out,
                         int rows, int cols) {}
"""


def _shifts(img: np.ndarray) -> Tuple[np.ndarray, ...]:
    north = np.roll(img, 1, axis=0)
    north[0] = img[0]
    south = np.roll(img, -1, axis=0)
    south[-1] = img[-1]
    west = np.roll(img, 1, axis=1)
    west[:, 0] = img[:, 0]
    east = np.roll(img, -1, axis=1)
    east[:, -1] = img[:, -1]
    return north, south, west, east


def _diffusion_coefficient(img: np.ndarray, q0sqr: float) -> np.ndarray:
    north, south, west, east = _shifts(img)
    laplacian = north + south + west + east - 4 * img
    gradient2 = ((north - img) ** 2 + (south - img) ** 2
                 + (west - img) ** 2 + (east - img) ** 2) / (img ** 2 + 1e-8)
    num = 0.5 * gradient2 - (laplacian / (4 * img + 1e-8)) ** 2
    den = (1 + laplacian / (4 * img + 1e-8)) ** 2 + 1e-8
    q = num / den
    c = 1.0 / (1.0 + (q - q0sqr) / (q0sqr * (1 + q0sqr) + 1e-8))
    return np.clip(c, 0.0, 1.0).astype(np.float32)


def _diffuse(img: np.ndarray, c: np.ndarray, lam: float) -> np.ndarray:
    _, south_c, _, east_c = _shifts(c)
    north, south, west, east = _shifts(img)
    divergence = (
        c * (north - img) + south_c * (south - img)
        + c * (west - img) + east_c * (east - img)
    )
    return (img + (lam / 4.0) * divergence).astype(np.float32)


@register_kernel("srad_kernel1", [BUFFER, BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=30.0, bytes_per_item=24.0)
def _srad_kernel1(ctx: LaunchContext) -> None:
    rows = int(ctx.scalar(2))
    cols = int(ctx.scalar(3))
    q0sqr = float(ctx.scalar(4))
    img = ctx.buf(0)[: rows * cols].reshape(rows, cols)
    ctx.buf(1)[: rows * cols] = _diffusion_coefficient(
        img, q0sqr).reshape(-1)


@register_kernel("srad_kernel2", [BUFFER, BUFFER, SCALAR, SCALAR, SCALAR],
                 flops_per_item=20.0, bytes_per_item=24.0)
def _srad_kernel2(ctx: LaunchContext) -> None:
    rows = int(ctx.scalar(2))
    cols = int(ctx.scalar(3))
    lam = float(ctx.scalar(4))
    img = ctx.buf(0)[: rows * cols].reshape(rows, cols)
    c = ctx.buf(1)[: rows * cols].reshape(rows, cols)
    img[:] = _diffuse(img, c, lam)


@register_kernel("srad_stats", [BUFFER, BUFFER, SCALAR, SCALAR],
                 flops_per_item=2.0, bytes_per_item=4.0)
def _srad_stats(ctx: LaunchContext) -> None:
    rows = int(ctx.scalar(2))
    cols = int(ctx.scalar(3))
    img = ctx.buf(0)[: rows * cols]
    out = ctx.buf(1)
    out[0] = img.mean(dtype=np.float64)
    out[1] = img.var(dtype=np.float64)


class SradWorkload(OpenCLWorkload):
    """Iterative despeckling with per-iteration ROI statistics."""

    name = "srad"

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        super().__init__(scale, seed)
        self.rows = self.cols = max(16, int(512 * scale))
        self.iterations = 30
        self.lam = 0.5

    def _inputs(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        img = rng.random((self.rows, self.cols), dtype=np.float32) + 0.5
        return np.exp(img).astype(np.float32)

    def reference(self) -> Dict[str, np.ndarray]:
        img = self._inputs()
        for _ in range(self.iterations):
            mean = img.mean(dtype=np.float64)
            var = img.var(dtype=np.float64)
            q0sqr = float(var / (mean * mean + 1e-8))
            c = _diffusion_coefficient(img, q0sqr)
            img = _diffuse(img, c, self.lam)
        return {"img": img}

    def run(self, cl: Any) -> WorkloadResult:
        img = self._inputs()
        rows, cols = img.shape
        env = open_env(cl)
        try:
            program = env.program(SOURCE)
            kernel1 = env.kernel(program, "srad_kernel1")
            kernel2 = env.kernel(program, "srad_kernel2")
            stats = env.kernel(program, "srad_stats")
            b_img = env.buffer(img.nbytes, host=img)
            b_c = env.buffer(img.nbytes)
            b_stats = env.buffer(8)
            env.set_args(stats, b_img, b_stats, rows, cols)
            for _ in range(self.iterations):
                env.launch(stats, [rows * cols])
                mean_var = env.read(b_stats, 8)
                q0sqr = float(mean_var[1] / (mean_var[0] ** 2 + 1e-8))
                env.set_args(kernel1, b_img, b_c, rows, cols, q0sqr)
                env.launch(kernel1, [rows * cols])
                env.set_args(kernel2, b_img, b_c, rows, cols,
                             float(self.lam))
                env.launch(kernel2, [rows * cols])
            env.finish()
            got = env.read(b_img, img.nbytes).reshape(rows, cols)
        finally:
            close_env(env)
        ok = np.allclose(got, self.reference()["img"], rtol=1e-3, atol=1e-2)
        return WorkloadResult(self.name, {"img": got}, bool(ok),
                              detail=f"{self.iterations} iterations")
