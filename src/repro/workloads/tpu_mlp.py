"""MLP inference on the simulated TPU through the dynamic API.

A TensorFlow-1.x-style program: build a two-layer MLP graph once,
compile, then run a stream of batches.  Coarse-grained steps (one
``tpuRun`` per batch moving whole tensors) make this another workload
class where AvA's forwarding is nearly free — the paper's premise for
extending AvA to TPUs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.remoting.buffers import OutBox
from repro.tpu import api as tpu_api
from repro.tpu.graphs import OP_ADD, OP_MATMUL, OP_RELU, OP_SOFTMAX
from repro.workloads.base import WorkloadResult


class TPUMLPWorkload:
    """Batched MLP inference: x→dense(128)→relu→dense(classes)→softmax."""

    name = "tpu_mlp"

    def __init__(self, batch: int = 64, features: int = 64,
                 hidden: int = 128, classes: int = 10, steps: int = 8,
                 seed: int = 42) -> None:
        self.batch = batch
        self.features = features
        self.hidden = hidden
        self.classes = classes
        self.steps = steps
        self.seed = seed

    def _weights(self):
        rng = np.random.default_rng(self.seed)
        w1 = rng.normal(0, 0.1, (self.features, self.hidden)).astype(
            np.float32)
        b1 = np.zeros((1, self.hidden), dtype=np.float32)
        w2 = rng.normal(0, 0.1, (self.hidden, self.classes)).astype(
            np.float32)
        b2 = np.zeros((1, self.classes), dtype=np.float32)
        return w1, b1, w2, b2

    def _batches(self):
        rng = np.random.default_rng(self.seed + 1)
        return [
            rng.normal(0, 1, (self.batch, self.features)).astype(np.float32)
            for _ in range(self.steps)
        ]

    def reference(self) -> Dict[str, np.ndarray]:
        w1, b1, w2, b2 = self._weights()
        outputs = []
        for x in self._batches():
            hidden = np.maximum(x @ w1 + b1, 0)
            logits = hidden @ w2 + b2
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            outputs.append((exp / exp.sum(axis=1, keepdims=True)).astype(
                np.float32))
        return {"probs": np.stack(outputs)}

    def run(self, tp: Any) -> WorkloadResult:
        """``tp`` is the TPU API surface (module or guest library)."""
        w1, b1, w2, b2 = self._weights()

        device = OutBox()
        if tp.tpuOpenDevice(device) != tpu_api.TPU_OK:
            return WorkloadResult(self.name, {}, False, "open failed")
        graph = OutBox()
        if tp.tpuCreateGraph(device.value, graph) != tpu_api.TPU_OK:
            return WorkloadResult(self.name, {}, False, "graph failed")
        g = graph.value

        def node(code, box=None):
            box = OutBox()
            assert code == tpu_api.TPU_OK
            return box

        x = OutBox()
        assert tp.tpuPlaceholder(g, self.batch, self.features, x) == \
            tpu_api.TPU_OK
        constants = {}
        for key, array in (("w1", w1), ("b1", b1), ("w2", w2), ("b2", b2)):
            box = OutBox()
            code = tp.tpuConstant(g, array, array.nbytes, array.shape[0],
                                  array.shape[1], box)
            if code != tpu_api.TPU_OK:
                return WorkloadResult(self.name, {}, False,
                                      f"constant {key}: {code}")
            constants[key] = box.value

        def binary(op, a, b):
            box = OutBox()
            assert tp.tpuBinaryOp(g, op, a, b, box) == tpu_api.TPU_OK
            return box.value

        def unary(op, a):
            box = OutBox()
            assert tp.tpuUnaryOp(g, op, a, box) == tpu_api.TPU_OK
            return box.value

        hidden = unary(OP_RELU, binary(OP_ADD,
                                       binary(OP_MATMUL, x.value,
                                              constants["w1"]),
                                       constants["b1"]))
        logits = binary(OP_ADD, binary(OP_MATMUL, hidden, constants["w2"]),
                        constants["b2"])
        probs = unary(OP_SOFTMAX, logits)

        flops = OutBox()
        assert tp.tpuCompile(g, flops) == tpu_api.TPU_OK

        outputs = []
        capacity = self.batch * self.classes * 4
        for batch in self._batches():
            out = np.zeros((self.batch, self.classes), dtype=np.float32)
            produced = OutBox()
            code = tp.tpuRun(g, x.value, batch, batch.nbytes, probs, out,
                             capacity, produced)
            if code != tpu_api.TPU_OK or produced.value != capacity:
                return WorkloadResult(self.name, {}, False,
                                      f"run failed: {code}")
            outputs.append(out.copy())

        tp.tpuDestroyGraph(g)
        tp.tpuCloseDevice(device.value)

        got = np.stack(outputs)
        ok = np.allclose(got, self.reference()["probs"], atol=1e-4)
        return WorkloadResult(self.name, {"probs": got}, bool(ok),
                              detail=f"{self.steps} steps, "
                                     f"{int(flops.value):,} flops/step")
