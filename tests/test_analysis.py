"""Tests for ``repro.analysis`` — the deep static-analysis pass.

The bad specs under ``tests/specs_bad/`` are the negative corpus: each
exercises at least one diagnostic per ``CAVA`` code family, and every
one of them is *accepted* by ``cava verify`` — the whole point of the
lint pass is the cross-function properties the shallow verifier cannot
see.
"""

import json
import os

import pytest

from repro.analysis import (
    CODE_TABLE,
    Severity,
    analyze_generated,
    lint_path,
    lint_spec,
    parse_suppressions,
)
from repro.analysis.suppressions import apply_suppressions
from repro.codegen.cli import main as cava_main
from repro.codegen.generator import GeneratedSources, generate_sources
from repro.codegen.verify import verify_spec
from repro.spec import parse_spec
from repro.spec.parser import parse_spec_file
from repro.stack import default_specs_dir

BAD_DIR = os.path.join(os.path.dirname(__file__), "specs_bad")


def bad_spec(name):
    return parse_spec_file(os.path.join(BAD_DIR, name + ".cava"))


def lint_bad(name):
    return lint_spec(bad_spec(name))


def codes(report):
    return {d.code for d in report.diagnostics}


class TestDataflow:
    def test_out_scalar_in_size_expr_caught_verify_accepts(self):
        spec = bad_spec("dataflow_out_scalar_size")
        assert verify_spec(spec).ok          # the shallow verifier passes
        report = lint_spec(spec)
        assert "CAVA101" in codes(report)    # the lint pass does not
        assert not report.gate("error")

    def test_out_scalar_in_sync_condition_and_resources(self):
        report = lint_bad("dataflow_out_condition")
        assert {"CAVA102", "CAVA103"} <= codes(report)

    def test_shrinks_to_buffer_caught(self):
        spec = bad_spec("dataflow_shrinks_buffer")
        assert verify_spec(spec).ok
        report = lint_spec(spec)
        assert "CAVA104" in codes(report)

    def test_pointer_valued_size_expr_caught(self):
        report = lint_bad("dataflow_ptr_size")
        assert "CAVA106" in codes(report)

    def test_aliasable_in_out_pair_warned(self):
        report = lint_bad("dataflow_alias")
        diags = [d for d in report.diagnostics if d.code == "CAVA105"]
        assert diags and diags[0].severity is Severity.WARNING

    def test_self_referential_size_caught(self):
        spec = parse_spec(
            "api(x);\n"
            "int f(const void *data) { parameter(data) { buffer(data); } }\n"
        )
        report = lint_spec(spec)
        assert "CAVA107" in codes(report)

    def test_clean_spec_has_no_dataflow_findings(self):
        spec = parse_spec(
            "api(x);\n"
            "int f(const void *data, unsigned int data_size) {\n"
            "  parameter(data) { buffer(data_size); }\n"
            "}\n"
        )
        assert not codes(lint_spec(spec)) & {
            "CAVA101", "CAVA102", "CAVA103", "CAVA104", "CAVA105",
            "CAVA106", "CAVA107",
        }


class TestLifecycle:
    def test_release_without_producer_is_error(self):
        spec = bad_spec("lifecycle_release_no_producer")
        assert verify_spec(spec).ok          # verify only warns here
        report = lint_spec(spec)
        diags = [d for d in report.diagnostics if d.code == "CAVA201"]
        assert diags and diags[0].severity is Severity.ERROR
        assert not report.gate("error")

    def test_leaked_handle_type_is_warning(self):
        spec = bad_spec("lifecycle_leak")
        assert verify_spec(spec).ok
        report = lint_spec(spec)
        assert "CAVA202" in codes(report)
        assert report.gate("error") and not report.gate("warning")

    def test_double_release_in_one_call(self):
        report = lint_bad("lifecycle_double_release")
        assert "CAVA203" in codes(report)

    def test_array_release_is_double_release_hazard(self):
        spec = parse_spec(
            "api(x);\ntype(widget) { handle; }\n"
            "widget makeWidget(int kind);\n"
            "int freeAll(const widget *list, unsigned int list_size) {\n"
            "  parameter(list) { buffer(list_size); deallocates; }\n"
            "}\n"
        )
        assert "CAVA203" in codes(lint_spec(spec))

    def test_async_release_races_sync_use(self):
        report = lint_bad("lifecycle_async_release")
        assert "CAVA204" in codes(report)

    def test_sync_release_does_not_race(self):
        spec = parse_spec(
            "api(x);\ntype(widget) { handle; }\n"
            "widget makeWidget(int kind);\n"
            "int pokeWidget(widget w);\n"
            "int freeWidget(widget w) { parameter(w) { deallocates; } }\n"
        )
        assert "CAVA204" not in codes(lint_spec(spec))


class TestGeneratedAst:
    """Layer 3: invariants of the generated stack itself."""

    def _sources(self, api="mvnc"):
        spec = parse_spec_file(
            os.path.join(default_specs_dir(), f"{api}.cava"))
        return spec, generate_sources(spec, "repro.mvnc.api")

    def _tampered(self, sources, **replacements):
        fields = {
            "api_name": sources.api_name,
            "guest_source": sources.guest_source,
            "server_source": sources.server_source,
            "routing_source": sources.routing_source,
            "codec_source": sources.codec_source,
        }
        for field_name, (old, new) in replacements.items():
            assert old in fields[field_name], f"{old!r} not in {field_name}"
            fields[field_name] = fields[field_name].replace(old, new, 1)
        return GeneratedSources(**fields)

    def test_shrinks_to_buffer_spec_caught_by_ast_layer_alone(self):
        """A seeded bad *spec* (not tampered source) that verify accepts
        and the generated-AST layer rejects."""
        spec = bad_spec("dataflow_shrinks_buffer")
        assert verify_spec(spec).ok
        diags, _ = analyze_generated(spec)
        assert any(d.code == "CAVA307" for d in diags)

    def test_clean_stack_passes(self):
        spec, sources = self._sources()
        diags, checks = analyze_generated(spec, sources=sources)
        assert diags == []
        assert checks > 30

    def test_decode_reorder_caught(self):
        spec, sources = self._sources()
        block = (
            "        input_tensor = cmd.in_buffers.get('input_tensor')\n"
            "        input_tensor_length = cmd.scalars.get('input_tensor_length')\n"
        )
        swapped = (
            "        input_tensor_length = cmd.scalars.get('input_tensor_length')\n"
            "        input_tensor = cmd.in_buffers.get('input_tensor')\n"
        )
        tampered = self._tampered(
            sources, server_source=(block, swapped))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA301" and d.subject == "mvncLoadTensor"
                   for d in diags)

    def test_handle_translation_bypass_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, server_source=(
            "worker.lookup_optional(cmd.handles.get('graph_handle'))",
            "cmd.handles.get('graph_handle')",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA302" for d in diags)

    def test_unbound_out_handle_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, server_source=(
            "worker.bind('graph_handle', graph_handle.value)",
            "graph_handle.value",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA302"
                   and "graph_handle" in d.subject for d in diags)

    def test_async_unguarded_output_caught(self):
        spec = parse_spec(
            "api(t);\n"
            "int f(int n, float *out_data, int out_data_size) {\n"
            "  async;\n"
            "  parameter(out_data) { out; buffer(out_data_size); "
            "nullable; }\n"
            "}\n"
        )
        sources = generate_sources(spec, "nowhere.native")
        assert not any(d.code == "CAVA303"
                       for d in analyze_generated(spec, sources=sources)[0])
        broken = GeneratedSources(
            api_name=sources.api_name,
            guest_source=sources.guest_source.replace(
                "if out_data is not None:", "if True:", 1),
            server_source=sources.server_source,
            routing_source=sources.routing_source,
            codec_source=sources.codec_source,
        )
        diags, _ = analyze_generated(spec, sources=broken)
        assert any(d.code == "CAVA303" for d in diags)

    def test_untyped_raise_caught(self):
        spec = parse_spec("api(t);\nint f(void *mystery);\n")
        sources = generate_sources(spec, "nowhere.native")
        assert "raise RemotingError" in sources.guest_source
        broken = GeneratedSources(
            api_name=sources.api_name,
            guest_source=sources.guest_source.replace(
                "raise RemotingError", "raise ValueError", 1),
            server_source=sources.server_source,
            routing_source=sources.routing_source,
            codec_source=sources.codec_source,
        )
        diags, _ = analyze_generated(spec, sources=broken)
        assert any(d.code == "CAVA304" for d in diags)

    def test_swallowing_except_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, server_source=(
            "_ret = _native.mvncLoadTensor",
            "try:\n"
            "            pass\n"
            "        except Exception:\n"
            "            pass\n"
            "        _ret = _native.mvncLoadTensor",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA304" for d in diags)

    def test_missing_size_assertion_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, guest_source=(
            "_assert_size(_n, 'input_tensor', 'mvncLoadTensor')",
            "pass",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA305"
                   and d.subject == "mvncLoadTensor.input_tensor"
                   for d in diags)

    def test_function_set_drift_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, guest_source=(
            "'mvncLoadTensor', ", "",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA306"
                   and "mvncLoadTensor" in d.message for d in diags)

    # -- CAVA310/311/312: the marshaling fast path ------------------------

    def test_missing_codec_module_caught(self):
        spec, sources = self._sources()
        stripped = GeneratedSources(
            api_name=sources.api_name,
            guest_source=sources.guest_source,
            server_source=sources.server_source,
            routing_source=sources.routing_source,
            codec_source="",
        )
        diags, _ = analyze_generated(spec, sources=stripped)
        assert any(d.code == "CAVA310" for d in diags)

    def test_codec_function_drift_caught(self):
        spec, sources = self._sources()
        # drop one function's whole LAYOUT entry (tables go stale)
        start = sources.codec_source.index("    'mvncLoadTensor': {")
        end = (sources.codec_source.index("\n    },", start)
               + len("\n    },\n"))
        tampered = self._tampered(sources, codec_source=(
            sources.codec_source[start:end], "",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA310"
                   and "mvncLoadTensor" in d.message for d in diags)

    def test_codec_layout_drift_caught(self):
        spec, sources = self._sources()
        # misfile the tensor payload as a scalar section entry
        tampered = self._tampered(sources, codec_source=(
            "'inbufs': ['input_tensor'],",
            "'inbufs': [],",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA311"
                   and d.subject == "mvncLoadTensor" for d in diags)

    def test_codec_adhoc_marshaling_caught(self):
        spec, sources = self._sources()
        # an entry point that unpacks bytes itself instead of
        # delegating to the shared bounds-checked drivers
        tampered = self._tampered(sources, codec_source=(
            "    return _sc.decode_command_with("
            "COMMAND_TABLES['mvncLoadTensor'], data)",
            "    return data[6:]",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA312"
                   and "decode_command_mvncLoadTensor" in d.subject
                   for d in diags)

    def test_codec_struct_import_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(sources, codec_source=(
            "from repro.remoting import speccodec as _sc",
            "import struct\nfrom repro.remoting import speccodec as _sc",
        ))
        diags, _ = analyze_generated(spec, sources=tampered)
        assert any(d.code == "CAVA312" for d in diags)


class TestSuppressions:
    def test_entry_matches_and_silences(self):
        report = lint_bad("lifecycle_leak")
        assert "CAVA202" in codes(report)
        supp = parse_suppressions(
            "CAVA202 widget: widgets are process-lifetime by design\n")
        apply_suppressions(report, supp)
        assert "CAVA202" not in codes(report)
        assert len(report.suppressed) == 1
        _diag, why = report.suppressed[0]
        assert "process-lifetime" in why

    def test_wildcard_subject(self):
        report = lint_bad("dataflow_alias")
        supp = parse_suppressions(
            "CAVA105 *: callers never alias in this workload corpus\n")
        apply_suppressions(report, supp)
        assert "CAVA105" not in codes(report)

    def test_missing_justification_is_error(self):
        supp = parse_suppressions("CAVA202 widget: nope\n")
        assert not supp.entries
        assert any(d.code == "CAVA001" for d in supp.problems)

    def test_malformed_line_is_error(self):
        supp = parse_suppressions("CAVA202 no colon here\n")
        assert any(d.code == "CAVA001" for d in supp.problems)

    def test_unknown_code_is_error(self):
        # a typo'd code (CAVA4O1 for CAVA401...) could never match a
        # finding; it is reported as a stale entry (CAVA002), not as a
        # malformed line — the line itself parses fine
        supp = parse_suppressions(
            "CAVA999 thing: this code does not exist in the table\n")
        assert any(d.code == "CAVA002" for d in supp.problems)
        assert not any(d.code == "CAVA001" for d in supp.problems)

    def test_typoed_code_is_error(self):
        supp = parse_suppressions(
            "CAVA4O1 thing: letter O typo for CAVA401\n")
        assert any(d.code == "CAVA002" for d in supp.problems)

    def test_unused_entry_reported(self):
        report = lint_bad("lifecycle_leak")
        supp = parse_suppressions(
            "CAVA203 widget: suppresses a diagnostic that never fires\n")
        apply_suppressions(report, supp)
        assert any(d.code == "CAVA002" for d in report.diagnostics)
        assert "CAVA202" in codes(report)  # the real finding survives

    def test_comments_and_blanks_ignored(self):
        supp = parse_suppressions("# header\n\n   \n# more\n")
        assert not supp.entries and not supp.problems


class TestShippedSpecs:
    """Acceptance: all three shipped specs pass at --fail-on error."""

    @pytest.mark.parametrize("api", ["opencl", "mvnc", "qat"])
    def test_fail_on_error_passes(self, api):
        path = os.path.join(default_specs_dir(), f"{api}.cava")
        report = lint_path(path)
        assert report.gate("error"), report.format()
        # with the shipped suppression files, warnings are clean too
        assert report.gate("warning"), report.format()

    def test_opencl_true_positives_are_suppressed_with_justification(self):
        path = os.path.join(default_specs_dir(), "opencl.cava")
        report = lint_path(path)
        suppressed_codes = {d.code for d, _ in report.suppressed}
        assert {"CAVA202", "CAVA204"} <= suppressed_codes
        assert all(why.strip() for _, why in report.suppressed)

    def test_global_work_offset_regression(self):
        """The CAVA106 true positive lint found: inference sized
        global_work_offset with global_work_size (a pointer)."""
        path = os.path.join(default_specs_dir(), "opencl.cava")
        spec = parse_spec_file(path)
        param = spec.function("clEnqueueNDRangeKernel").param(
            "global_work_offset")
        assert param.is_scalar_array and param.nullable

    def test_every_code_in_table_is_documented_severity(self):
        for code, (severity, title) in CODE_TABLE.items():
            assert isinstance(severity, Severity)
            assert len(title) > 10


class TestLintCLI:
    def _spec(self, name):
        return os.path.join(BAD_DIR, name + ".cava")

    def test_shipped_specs_exit_zero(self, capsys):
        specs = [os.path.join(default_specs_dir(), f"{api}.cava")
                 for api in ("opencl", "mvnc", "qat")]
        assert cava_main(["lint", *specs, "--fail-on", "error"]) == 0
        out = capsys.readouterr().out
        assert out.count("lint '") == 3

    def test_error_spec_exits_one(self, capsys):
        assert cava_main(
            ["lint", self._spec("dataflow_out_scalar_size")]) == 1
        assert "CAVA101" in capsys.readouterr().out

    def test_fail_on_threshold(self, capsys):
        warn_only = self._spec("dataflow_alias")
        assert cava_main(["lint", warn_only, "--fail-on", "error"]) == 0
        assert cava_main(["lint", warn_only, "--fail-on", "warning"]) == 1

    def test_json_output(self, capsys):
        assert cava_main([
            "lint", self._spec("lifecycle_leak"), "--json",
            "--fail-on", "warning",
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["api"] == "leaky"
        assert any(d["code"] == "CAVA202"
                   for d in document["diagnostics"])

    def test_json_multi_spec_is_a_list(self, capsys):
        assert cava_main([
            "lint", self._spec("lifecycle_leak"),
            self._spec("dataflow_alias"), "--json",
            "--fail-on", "warning",
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert [entry["api"] for entry in document] == ["leaky", "aliasy"]

    def test_explicit_suppress_file(self, tmp_path, capsys):
        supp = tmp_path / "mute.lint"
        supp.write_text(
            "CAVA202 widget: widgets are process-lifetime in this corpus\n")
        assert cava_main([
            "lint", self._spec("lifecycle_leak"),
            "--suppress", str(supp), "--fail-on", "warning",
        ]) == 0

    def test_missing_suppress_file_is_cli_error(self, capsys):
        assert cava_main([
            "lint", self._spec("lifecycle_leak"),
            "--suppress", "/nonexistent.lint",
        ]) == 2
        assert "suppression" in capsys.readouterr().err

    def test_bad_suppression_entry_gates_the_run(self, tmp_path, capsys):
        supp = tmp_path / "bad.lint"
        supp.write_text("CAVA105 thing\n")  # malformed: no justification
        assert cava_main([
            "lint", self._spec("dataflow_alias"),
            "--suppress", str(supp),
        ]) == 1
        assert "CAVA001" in capsys.readouterr().out


class TestVerifyStrict:
    def test_strict_gates_warnings(self, tmp_path, capsys):
        spec = tmp_path / "warny.cava"
        # an opaque parameter verifies OK but with a warning
        spec.write_text("api(w);\nint f(void *pfn_notify);\n")
        assert cava_main(["verify", str(spec)]) == 0
        assert cava_main(["verify", str(spec), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "warning" in out

    def test_strict_clean_spec_still_passes(self, tmp_path):
        spec = tmp_path / "clean.cava"
        spec.write_text(
            "api(c);\n"
            "int f(const void *data, unsigned int data_size) {\n"
            "  parameter(data) { buffer(data_size); }\n"
            "}\n"
        )
        assert cava_main(["verify", str(spec), "--strict"]) == 0


class TestVerifyDeterminism:
    def test_multi_param_warning_is_sorted(self):
        spec = parse_spec(
            "api(x);\nint f(void *zeta, void *alpha, void *mid);\n")
        report = verify_spec(spec)
        warning = next(w for w in report.warnings
                       if "not marshalable" in w)
        assert "['alpha', 'mid', 'zeta']" in warning
