"""Async command coalescing: policy, codec framing, flush semantics.

The contract under test (docs/cost-model.md, "Batch pricing"): with a
:class:`BatchPolicy` armed, async commands queue guest-side and cross
the channel as one :class:`CommandBatch` frame — flushed at sync
points, at queue thresholds, or when a call needs its reply leg — and
the router unbundles them through the ordinary verification/policy
path, in order.  With no policy (or ``enabled=False``), virtual-time
results are bit-identical to per-call async forwarding.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos
from repro.guest.batching import BatchPolicy
from repro.guest.driver import GuestDriver
from repro.guest.library import GuestRuntime
from repro.hypervisor.router import Router, RoutingInfo, RoutingTable
from repro.remoting.codec import (
    CodecError,
    Command,
    CommandBatch,
    Reply,
    ReplyBatch,
    decode_message,
    encode_message,
)
from repro.stack import VirtualStack
from repro.telemetry import Tracer
from repro.telemetry import tracer as tele
from repro.transport.base import BatchDeliveryResult
from repro.workloads import GaussianWorkload, NWWorkload
from repro.workloads.base import close_env, open_env

SMALL = 0.06


def batched_session(vm_id="vm-bat", policy=None, **kwargs):
    stack = VirtualStack.build("opencl")
    session = stack.add_vm(vm_id, batch_policy=policy or BatchPolicy(),
                           **kwargs)
    return stack, session


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.enabled
        assert policy.max_commands >= 2
        assert policy.max_bytes > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_commands=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_bytes=-1)
        with pytest.raises(ValueError):
            BatchPolicy(queue_cost=-1e-9)

    def test_frozen(self):
        with pytest.raises(Exception):
            BatchPolicy().max_commands = 5


class TestBatchCodec:
    def make_batch(self, n=3):
        commands = [
            Command(seq=i, vm_id="vm-c", api="opencl", function="f",
                    mode="async", scalars={"i": i},
                    in_buffers={"d": bytes([i]) * 4})
            for i in range(n)
        ]
        return CommandBatch(vm_id="vm-c", commands=commands, flush_time=1.5)

    def test_command_batch_round_trip(self):
        batch = self.make_batch()
        again = decode_message(encode_message(batch))
        assert isinstance(again, CommandBatch)
        assert again == batch
        assert len(again) == 3

    def test_reply_batch_round_trip(self):
        batch = ReplyBatch(
            replies=[Reply(seq=i, return_value=0) for i in range(3)],
            complete_time=2.5,
        )
        again = decode_message(encode_message(batch))
        assert isinstance(again, ReplyBatch)
        assert again == batch

    def test_distinct_magics(self):
        cmd_wire = encode_message(self.make_batch())
        rep_wire = encode_message(ReplyBatch(replies=[Reply(seq=1)]))
        assert cmd_wire[:2] != rep_wire[:2]
        assert cmd_wire[:2] != encode_message(
            Command(seq=1, vm_id="v", api="a", function="f"))[:2]

    def test_payload_bytes_summed(self):
        assert self.make_batch(3).payload_bytes() == 12

    def test_empty_batch_rejected(self):
        with pytest.raises(CodecError, match="no commands"):
            CommandBatch.from_wire_dict({"vm": "v", "cmds": [], "t": 0.0})

    def test_non_dict_entry_rejected(self):
        with pytest.raises(CodecError, match="wire type"):
            CommandBatch.from_wire_dict(
                {"vm": "v", "cmds": ["not-a-dict"], "t": 0.0})
        with pytest.raises(CodecError, match="wire type"):
            ReplyBatch.from_wire_dict({"replies": [17], "t": 0.0})

    def test_missing_fields_rejected(self):
        with pytest.raises(CodecError, match="missing field"):
            CommandBatch.from_wire_dict({"vm": "v"})
        with pytest.raises(CodecError, match="missing field"):
            ReplyBatch.from_wire_dict({"t": 0.0})

    def test_systematically_truncated_batch_frames(self):
        wire = encode_message(self.make_batch())
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                decode_message(wire[:cut])

    def test_malformed_inner_command_rejected(self):
        wire_dict = self.make_batch(2).to_wire_dict()
        del wire_dict["cmds"][1]["fn"]
        with pytest.raises(CodecError):
            CommandBatch.from_wire_dict(wire_dict)


class ScriptedBatchTransport:
    """Transport double recording batches, with programmable outcomes."""

    def __init__(self, results=None):
        self.batches = []
        self.sent = []
        self.results = list(results or [])

    def deliver(self, command, guest_now, asynchronous=False):
        from repro.transport.base import DeliveryResult

        self.sent.append(command)
        return DeliveryResult(
            reply=Reply(seq=command.seq, return_value=0),
            sent_at=guest_now + 1e-6,
            completed_at=guest_now + 5e-6,
            reply_cost=1e-6,
        )

    def deliver_batch(self, batch, guest_now):
        self.batches.append(batch)
        if self.results:
            return self.results.pop(0)
        return BatchDeliveryResult(
            replies=[Reply(seq=c.seq, return_value=0)
                     for c in batch.commands],
            sent_at=guest_now + 1e-6,
            completed_at=guest_now + 5e-6,
        )


def make_runtime(policy=None, results=None):
    transport = ScriptedBatchTransport(results)
    driver = GuestDriver("vm-t", transport)
    runtime = GuestRuntime(driver, "testapi",
                           batch_policy=policy or BatchPolicy())
    return runtime, transport, driver


def submit(runtime, mode="async", out_targets=None, ret_kind="scalar",
           success=0, **kwargs):
    return runtime.submit(
        "fn", mode,
        kwargs.get("scalars", {}),
        kwargs.get("handles", {}),
        kwargs.get("in_buffers", {}),
        kwargs.get("out_sizes", {}),
        out_targets or {},
        ret_kind=ret_kind,
        success=success,
    )


class TestFlushTriggers:
    def test_async_calls_queue_without_touching_channel(self):
        runtime, transport, _ = make_runtime()
        for _ in range(3):
            assert submit(runtime) == 0
        assert transport.batches == []
        assert transport.sent == []
        assert len(runtime._queue) == 3

    def test_sync_call_flushes_queue_first(self):
        runtime, transport, _ = make_runtime()
        submit(runtime)
        submit(runtime)
        submit(runtime, mode="sync")
        assert len(transport.batches) == 1
        assert len(transport.batches[0]) == 2
        # queued work crosses the channel ahead of the blocking call
        assert transport.sent[0].mode == "sync"
        assert runtime.batches_flushed == 1
        assert runtime.commands_coalesced == 2

    def test_command_threshold_flushes(self):
        runtime, transport, _ = make_runtime(BatchPolicy(max_commands=4))
        for _ in range(4):
            submit(runtime)
        assert len(transport.batches) == 1
        assert len(transport.batches[0]) == 4
        assert runtime._queue == []

    def test_byte_threshold_flushes(self):
        runtime, transport, _ = make_runtime(BatchPolicy(max_bytes=64))
        submit(runtime, in_buffers={"d": b"x" * 32})
        assert transport.batches == []
        submit(runtime, in_buffers={"d": b"y" * 40})
        assert len(transport.batches) == 1

    def test_output_bearing_call_takes_reply_leg(self):
        runtime, transport, _ = make_runtime()
        submit(runtime)
        target = bytearray(4)
        submit(runtime, out_targets={"p": ("buffer", target)},
               out_sizes={"p": 4})
        # both the parked call and the output-bearing one flushed now
        assert len(transport.batches) == 1
        assert len(transport.batches[0]) == 2

    def test_explicit_flush(self):
        runtime, transport, _ = make_runtime()
        submit(runtime)
        runtime.flush()
        assert len(transport.batches) == 1
        runtime.flush()  # empty queue: no extra frame
        assert len(transport.batches) == 1

    def test_in_order_within_batch(self):
        runtime, transport, _ = make_runtime()
        for i in range(3):
            submit(runtime, scalars={"i": i})
        runtime.flush()
        sequence = [c.scalars["i"] for c in transport.batches[0].commands]
        assert sequence == [0, 1, 2]

    def test_disabled_policy_takes_per_call_path(self):
        runtime, transport, _ = make_runtime(BatchPolicy(enabled=False))
        submit(runtime)
        assert transport.batches == []
        assert len(transport.sent) == 1


class TestDeferredErrors:
    def test_batched_error_surfaces_at_next_sync(self):
        result = BatchDeliveryResult(
            replies=[Reply(seq=1, return_value=-48)],
            sent_at=1e-6, completed_at=5e-6,
        )
        runtime, _, _ = make_runtime(results=[result])
        assert submit(runtime) == 0  # async success, §4.2
        assert submit(runtime, mode="sync") == -48

    def test_lost_batch_is_an_infra_error(self):
        result = BatchDeliveryResult(sent_at=1e-6, completed_at=200e-6,
                                     timed_out=True)
        runtime, _, _ = make_runtime(results=[result])
        submit(runtime)
        runtime.flush()
        assert runtime.pending_async_error == -1001.0
        assert submit(runtime, mode="sync") == -1001.0
        # delivered exactly once
        assert submit(runtime, mode="sync") == 0

    def test_error_does_not_stop_later_commands(self):
        result = BatchDeliveryResult(
            replies=[Reply(seq=1, return_value=-48),
                     Reply(seq=2, return_value=0,
                           out_payloads={"p": b"\x07" * 4})],
            sent_at=1e-6, completed_at=5e-6,
        )
        runtime, _, _ = make_runtime(BatchPolicy(max_commands=2),
                                     results=[result])
        submit(runtime)
        target = bytearray(4)
        submit(runtime, out_targets={"p": ("buffer", target)},
               out_sizes={"p": 4})
        # the second command's outputs landed despite the first failing
        assert target == b"\x07" * 4
        assert submit(runtime, mode="sync") == -48

    def test_short_reply_batch_treated_as_frame_loss(self):
        result = BatchDeliveryResult(
            replies=[Reply(seq=1, return_value=0)],  # 1 reply, 2 staged
            sent_at=1e-6, completed_at=5e-6,
        )
        runtime, _, _ = make_runtime(results=[result])
        submit(runtime)
        submit(runtime)
        runtime.flush()
        assert runtime.pending_async_error == -1001.0


class TestRouterUnbundling:
    def make_router(self):
        replies = []

        class Worker:
            def execute(self, command, release, batched=False):
                replies.append((command.seq, release, batched))
                return Reply(seq=command.seq, return_value=0,
                             complete_time=release + 1e-6)

        router = Router(lambda vm, api: Worker())
        table = RoutingTable(api="testapi")
        table.functions["doWork"] = RoutingInfo(name="doWork")
        router.register_api(table)
        router.register_vm("vm1")
        return router, replies

    def make_batch(self, n, vm="vm1"):
        return CommandBatch(
            vm_id=vm,
            commands=[Command(seq=i, vm_id=vm, api="testapi",
                              function="doWork", mode="async")
                      for i in range(n)],
        )

    def test_unbundled_in_order_with_single_reply_batch(self):
        router, executed = self.make_router()
        wire = router.deliver(encode_message(self.make_batch(3)), 1.0)
        decoded = decode_message(wire)
        assert isinstance(decoded, ReplyBatch)
        assert [r.seq for r in decoded.replies] == [0, 1, 2]
        # in-order release: each command no earlier than its predecessor
        releases = [entry[1] for entry in executed]
        assert releases == sorted(releases)
        assert decoded.complete_time >= releases[-1]

    def test_first_command_pays_full_dispatch(self):
        router, executed = self.make_router()
        router.deliver(encode_message(self.make_batch(3)), 0.0)
        assert [entry[2] for entry in executed] == [False, True, True]

    def test_per_command_accounting(self):
        router, _ = self.make_router()
        router.deliver(encode_message(self.make_batch(5)), 0.0)
        assert router.metrics_for("vm1").commands == 5

    def test_inner_rejections_are_per_command(self):
        router, _ = self.make_router()
        batch = self.make_batch(2)
        batch.commands[1].function = "sneaky"
        decoded = decode_message(
            router.deliver(encode_message(batch), 0.0))
        assert decoded.replies[0].error is None
        assert "does not route" in decoded.replies[1].error
        assert router.metrics_for("vm1").rejected == 1

    def test_oversized_batch_rejected_wholesale(self):
        router, executed = self.make_router()
        router.max_batch_commands = 4
        decoded = decode_message(
            router.deliver(encode_message(self.make_batch(5)), 0.0))
        assert isinstance(decoded, Reply)
        assert "exceeds limit" in decoded.error
        assert router.oversized_batches == 1
        assert not executed

    def test_unknown_vm_batch_rejected_per_command(self):
        router, executed = self.make_router()
        decoded = decode_message(
            router.deliver(encode_message(self.make_batch(2, vm="evil")),
                           0.0))
        assert isinstance(decoded, ReplyBatch)
        assert all("unknown VM" in r.error for r in decoded.replies)
        assert not executed


class TestEndToEnd:
    def test_workload_outputs_identical_with_batching(self):
        _, plain = batched_session("vm-pln", BatchPolicy(enabled=False))
        _, batched = batched_session("vm-bat")
        workload = NWWorkload(scale=SMALL)
        base = workload.run(plain.lib)
        out = workload.run(batched.lib)
        assert base.verified and out.verified
        for key, value in base.outputs.items():
            assert np.array_equal(value, out.outputs[key]), key

    def test_fewer_frames_same_commands(self):
        _, plain = batched_session("vm-fa", BatchPolicy(enabled=False))
        _, batched = batched_session("vm-fb")
        workload = GaussianWorkload(scale=SMALL)
        assert workload.run(plain.lib).verified
        assert workload.run(batched.lib).verified
        batched.flush()
        assert (batched.vm.driver.transport.messages
                < plain.vm.driver.transport.messages * 0.95)
        # the hypervisor accounts the same number of commands either way
        stack_a = plain.stack.router.metrics_for("vm-fa").commands
        stack_b = batched.stack.router.metrics_for("vm-fb").commands
        assert stack_a == stack_b

    def test_disabled_policy_bit_identical_virtual_time(self):
        """The regression gate: enabled=False costs exactly per-call.

        vm_ids share a length — the id crosses the wire in every frame,
        so differently-sized names would price differently.
        """
        _, none_policy = batched_session("vm-x1", BatchPolicy(enabled=False))
        stack = VirtualStack.build("opencl")
        no_policy = stack.add_vm("vm-x2")
        workload = NWWorkload(scale=SMALL)
        assert workload.run(none_policy.lib).verified
        assert workload.run(no_policy.lib).verified
        assert none_policy.time == no_policy.time
        assert none_policy.runtime().batches_flushed == 0

    def test_shutdown_flushes_stragglers(self):
        _, session = batched_session("vm-sd")
        env = open_env(session.lib)
        data = np.arange(8, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        env.write(mem, data, blocking=False)  # async, parks in the queue
        runtime = session.runtime()
        assert runtime._queue
        session.shutdown()
        assert not runtime._queue
        assert runtime.batches_flushed >= 1

    def test_batch_spans_recorded(self):
        tracer = Tracer()
        with tele.use(tracer):
            _, session = batched_session("vm-tr")
            env = open_env(session.lib)
            data = np.arange(16, dtype=np.float32)
            mem = env.buffer(data.nbytes, host=data)
            env.write(mem, data, blocking=False)
            env.finish()
            close_env(env)
        names = {span.name for span in tracer.all_spans()}
        assert {"batch.queue", "batch.flush", "transport.flush",
                "router.batch"} <= names
        flush = next(s for s in tracer.all_spans()
                     if s.name == "batch.flush")
        assert flush.attrs["commands"] >= 1
        assert flush.attrs["reason"] in ("sync", "threshold", "reply-leg")


class TestFaultsOnBatchedFrames:
    @pytest.mark.parametrize("mode", ["drop", "corrupt", "duplicate"])
    def test_chaos_modes_contained_with_batching(self, mode):
        report = run_chaos(mode=mode, seed=1234, scale=SMALL,
                           bystander=False, batching=True)
        # the invariant: completion (via retries) or a structured error
        assert report.completed or report.error is not None
        if report.completed:
            assert report.verified

    def test_dropped_batches_retried_to_completion(self):
        """Batched frames of idempotent commands retransmit like sync
        retries do: the handle-minting setup runs fault-free, then the
        plan is armed over the (retry-safe) async write stream."""
        stack, session = batched_session("vm-rty")
        env = open_env(session.lib)
        data = np.arange(64, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=np.zeros_like(data))
        stack.install_fault_plan(FaultPlan(seed=7, drop=0.5))
        runtime = session.runtime()
        for _ in range(8):
            env.write(mem, data, blocking=False)
        session.flush()
        assert runtime.batches_flushed >= 1
        assert runtime.retries > 0
        # every drop was absorbed by retransmission, not deferred
        assert runtime.pending_async_error is None

    def test_zero_rate_plan_cost_transparent_with_batching(self):
        def run(vm_id, install):
            stack, session = batched_session(vm_id)
            if install:
                stack.install_fault_plan(FaultPlan(seed=1234))
            result = NWWorkload(scale=SMALL).run(session.lib)
            session.flush()
            assert result.verified
            return session.time

        assert run("vm-zr1", False) == run("vm-zr2", True)
