"""Tests for callback forwarding (§4.2: "the specification language
supports structures, nested arrays, callbacks")."""

import pytest

from repro.codegen.classify import ParamClass, classify_param
from repro.guest.library import GuestRuntime, RemotingError
from repro.opencl import api as cl_api
from repro.opencl import session, types
from repro.remoting.buffers import OutBox
from repro.remoting.codec import Reply, decode_message, encode_message
from repro.spec import parse_spec
from repro.stack import load_spec, make_hypervisor

SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}"
)


def build_env(cl):
    plats = [None]
    cl.clGetPlatformIDs(1, plats, None)
    devs = [None]
    cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
    err = OutBox()
    ctx = cl.clCreateContext(None, 1, devs, None, None, err)
    return ctx, err


class TestSpecLevel:
    def test_callback_annotation_parses(self):
        spec = parse_spec(
            "api(x);\nint build(int prog, void *pfn_notify) "
            "{ parameter(pfn_notify) { callback; } }"
        )
        param = spec.function("build").param("pfn_notify")
        assert param.is_callback
        assert classify_param(spec, param) is ParamClass.CALLBACK

    def test_opencl_spec_declares_build_callback(self):
        spec = load_spec("opencl")
        assert spec.function("clBuildProgram").param(
            "pfn_notify").is_callback

    def test_reply_callbacks_round_trip_wire(self):
        reply = Reply(seq=1, callbacks=[[3, [0, "done"]], [4, []]])
        again = decode_message(encode_message(reply))
        assert again.callbacks == [[3, [0, "done"]], [4, []]]


class TestNativePath:
    def test_build_notifier_called_with_status(self):
        events = []
        with session():
            ctx, err = build_env(cl_api)
            prog = cl_api.clCreateProgramWithSource(ctx, 1, SRC, None, err)
            code = cl_api.clBuildProgram(prog, 0, None, "", events.append,
                                         None)
        assert code == types.CL_SUCCESS
        assert events == [types.CL_BUILD_SUCCESS]

    def test_notifier_fires_on_failure_too(self):
        events = []
        with session():
            ctx, err = build_env(cl_api)
            prog = cl_api.clCreateProgramWithSource(
                ctx, 1, "__kernel void no_impl_anywhere(int a) {}", None,
                err)
            code = cl_api.clBuildProgram(prog, 0, None, "", events.append,
                                         None)
        assert code == types.CL_BUILD_PROGRAM_FAILURE
        assert events == [types.CL_BUILD_ERROR]


class TestForwardedPath:
    def test_callback_forwarded_through_stack(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-cb")
        cl = vm.library("opencl")
        ctx, err = build_env(cl)
        prog = cl.clCreateProgramWithSource(ctx, 1, SRC, None, err)

        events = []
        code = cl.clBuildProgram(prog, 0, None, "", events.append, None)
        assert code == types.CL_SUCCESS
        # the upcall was recorded host-side and replayed guest-side
        assert events == [types.CL_BUILD_SUCCESS]

    def test_callback_none_stays_none(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-cb-none")
        cl = vm.library("opencl")
        ctx, err = build_env(cl)
        prog = cl.clCreateProgramWithSource(ctx, 1, SRC, None, err)
        assert cl.clBuildProgram(prog, 0, None, "", None,
                                 None) == types.CL_SUCCESS

    def test_non_callable_rejected_at_guest_boundary(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-cb-bad")
        cl = vm.library("opencl")
        ctx, err = build_env(cl)
        prog = cl.clCreateProgramWithSource(ctx, 1, SRC, None, err)
        with pytest.raises(RemotingError, match="callable"):
            cl.clBuildProgram(prog, 0, None, "", "not-a-function", None)

    def test_same_callable_registers_once(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-cb-dedup")
        cl = vm.library("opencl")
        ctx, err = build_env(cl)
        runtime = vm.runtimes["opencl"]

        def notifier(status):
            pass

        first = runtime.register_callback(notifier)
        second = runtime.register_callback(notifier)
        assert first == second

    def test_unknown_callback_id_raises(self):
        runtime = GuestRuntime.__new__(GuestRuntime)
        runtime._callbacks = {}
        with pytest.raises(RemotingError, match="unknown callback"):
            runtime._deliver_callbacks(
                Reply(seq=1, callbacks=[[99, []]]), "f"
            )

    def test_migration_replays_build_and_refires_callback(self):
        """clBuildProgram is a modify record; replay re-invokes the
        notifier — visible, documented record/replay semantics."""
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-cb-mig")
        cl = vm.library("opencl")
        ctx, err = build_env(cl)
        prog = cl.clCreateProgramWithSource(ctx, 1, SRC, None, err)
        events = []
        cl.clBuildProgram(prog, 0, None, "", events.append, None)
        assert len(events) == 1
        hv.migrate_vm("vm-cb-mig", "opencl")
        # replay happened server-side; the deferred upcalls of replayed
        # commands are not re-delivered to the guest (no reply path)
        assert len(events) == 1
        # and the rebuilt program still makes kernels
        kernel = cl.clCreateKernel(prog, "vector_add", err)
        assert err.value == types.CL_SUCCESS
        assert kernel is not None
