"""Byte-identity fuzz: specialized codec vs interpreted codec.

The marshaling fast path's contract is *frame-for-frame wire
equality*: for every message the :class:`SpecializedCodec` encodes —
on the generated tables or through its fallback — the emitted bytes
equal the interpreted encoder's exactly, and every frame decodes to
the same message under both codecs.  This suite drives that contract
with Hypothesis over the real generated layouts of three shipped APIs
(opencl, mvnc, qat), then replays the trust-boundary hardening checks
(systematic truncation, single-byte corruption) against both codecs
in lockstep: a malformation must produce the *same* outcome —
:class:`CodecError` or an identical message — from each.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.remoting.codec import (
    CodecError,
    Command,
    CommandBatch,
    NeedBytes,
    Reply,
    ReplyBatch,
)
from repro.remoting.speccodec import SpecializedCodec
from repro.remoting.wire import InterpretedCodec, frame_bytes
from repro.stack import build_stack

APIS = ("opencl", "mvnc", "qat")

LAYOUTS = {api: build_stack(api).codec_module.LAYOUT for api in APIS}
FUNCTIONS = sorted(
    (api, fn) for api in APIS for fn in LAYOUTS[api]
)

INTERP = InterpretedCodec()


def _specialized() -> SpecializedCodec:
    codec = SpecializedCodec()
    for api in APIS:
        codec.register_module(build_stack(api).codec_module)
    return codec


SPEC = _specialized()


# ---------------------------------------------------------------------------
# strategies: messages drawn from the real generated layouts
# ---------------------------------------------------------------------------

def _scalar_value(kind: str) -> st.SearchStrategy:
    if kind == "int":
        return st.integers(-(2 ** 63), 2 ** 63 - 1)
    if kind == "float":
        return st.floats(allow_nan=False)
    if kind == "str":
        return st.text(max_size=24)
    if kind == "ints":
        return st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1), max_size=4)
    if kind == "num":
        return st.one_of(st.integers(-(2 ** 53), 2  ** 53),
                         st.floats(allow_nan=False))
    raise AssertionError(kind)


@st.composite
def layout_commands(draw) -> Command:
    """A Command for a real function, usually layout-conformant.

    ``None`` values, omitted parameters, and occasional trace context
    are mixed in deliberately: some draws ride the fast path, some
    fall back, and byte identity must hold either way.
    """
    api, fn = draw(st.sampled_from(FUNCTIONS))
    lay = LAYOUTS[api][fn]
    scalars = draw(st.fixed_dictionaries({}, optional={
        name: st.one_of(_scalar_value(kind), st.none())
        for name, kind in lay["scalars"].items()
    }))
    handles = draw(st.fixed_dictionaries({}, optional={
        name: st.one_of(_scalar_value(kind), st.none())
        for name, kind in lay["handles"].items()
    }))
    in_buffers = draw(st.fixed_dictionaries({}, optional={
        # sizes straddle the vectored-send splice threshold (512)
        name: st.binary(max_size=600) for name in lay["inbufs"]
    }))
    out_sizes = draw(st.fixed_dictionaries({}, optional={
        name: st.integers(0, 1 << 20) for name in lay["outsz"]
    }))
    return Command(
        seq=draw(st.integers(0, 2 ** 31)),
        vm_id=draw(st.sampled_from(("vm-0", "vm-fuzz", ""))),
        api=api,
        function=fn,
        mode=draw(st.sampled_from(("sync", "async"))),
        scalars=scalars,
        handles=handles,
        in_buffers=in_buffers,
        out_sizes=out_sizes,
        issue_time=draw(st.floats(0, 1e6)),
        trace_id=draw(st.one_of(st.none(), st.just("tr-1"))),
    )


@st.composite
def layout_replies(draw):
    """A (Reply, reply_to Command) pair for a real function."""
    api, fn = draw(st.sampled_from(FUNCTIONS))
    lay = LAYOUTS[api][fn]
    if lay["ret"] == "scalar":
        ret = draw(st.one_of(st.none(), st.integers(-(2 ** 31), 2 ** 31),
                             st.floats(allow_nan=False)))
    else:
        ret = None
    new_names = list(lay["new"])
    if lay["ret"] == "handle":
        new_names.append("__ret__")
    reply = Reply(
        seq=draw(st.integers(0, 2 ** 31)),
        return_value=ret,
        out_payloads=draw(st.fixed_dictionaries({}, optional={
            name: st.binary(max_size=600) for name in lay["outs"]
        })),
        out_scalars=draw(st.fixed_dictionaries({}, optional={
            name: st.one_of(st.none(), st.integers(-(2 ** 31), 2 ** 31),
                            st.floats(allow_nan=False), st.text(max_size=8))
            for name in lay["oscal"]
        })),
        new_handles=draw(st.fixed_dictionaries({}, optional={
            name: st.one_of(
                st.integers(0, 2 ** 48),
                st.lists(st.integers(0, 2 ** 48), max_size=3),
            )
            for name in new_names
        })),
        callbacks=draw(st.sampled_from(([], [[1, [2, 3]]]))),
        error=draw(st.one_of(st.none(), st.just("boom"))),
        complete_time=draw(st.floats(0, 1e6)),
    )
    return reply, Command(seq=reply.seq, vm_id="vm-0", api=api, function=fn)


# ---------------------------------------------------------------------------
# byte identity, fuzz-verified
# ---------------------------------------------------------------------------

class TestByteIdentity:

    @settings(max_examples=120, deadline=None)
    @given(layout_commands())
    def test_command_frames_identical(self, command):
        fast = frame_bytes(SPEC.encode_command(command))
        slow = frame_bytes(INTERP.encode_command(command))
        assert fast == slow
        assert SPEC.decode_command(fast) == INTERP.decode_command(slow)

    @settings(max_examples=120, deadline=None)
    @given(layout_replies())
    def test_reply_frames_identical(self, pair):
        reply, command = pair
        fast = frame_bytes(SPEC.encode_reply(reply, reply_to=command))
        slow = frame_bytes(INTERP.encode_reply(reply, reply_to=command))
        assert fast == slow
        assert (SPEC.decode_reply(fast, reply_to=command)
                == INTERP.decode_reply(slow, reply_to=command))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(layout_commands(), min_size=1, max_size=3),
           st.floats(0, 1e6))
    def test_batch_frames_identical(self, commands, flush_time):
        # (an empty batch is unencodable by contract: both decoders
        # reject "batch carries no commands")
        batch = CommandBatch(vm_id="vm-0", commands=commands,
                             flush_time=flush_time)
        fast = frame_bytes(SPEC.encode_command(batch))
        slow = frame_bytes(INTERP.encode_command(batch))
        assert fast == slow
        assert SPEC.decode_command(fast) == INTERP.decode_command(slow)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(layout_replies(), min_size=0, max_size=3),
           st.floats(0, 1e6))
    def test_reply_batch_frames_identical(self, pairs, complete_time):
        replies = [reply for reply, _ in pairs]
        reply_to = CommandBatch(
            vm_id="vm-0", commands=[cmd for _, cmd in pairs])
        batch = ReplyBatch(replies=replies, complete_time=complete_time)
        fast = frame_bytes(SPEC.encode_reply(batch, reply_to=reply_to))
        slow = frame_bytes(INTERP.encode_reply(batch, reply_to=reply_to))
        assert fast == slow
        assert (SPEC.decode_reply(fast, reply_to=reply_to)
                == INTERP.decode_reply(slow, reply_to=reply_to))

    def test_need_bytes_identical(self):
        message = NeedBytes(seq=7, missing=[[7, "src", b"\x01" * 16]],
                            complete_time=0.5)
        fast = frame_bytes(SPEC.encode_reply(message))
        slow = frame_bytes(INTERP.encode_reply(message))
        assert fast == slow
        assert SPEC.decode_reply(fast) == INTERP.decode_reply(slow)


# ---------------------------------------------------------------------------
# the fast path actually runs (identity alone could be all-fallback)
# ---------------------------------------------------------------------------

class TestFastPathEngaged:

    def _conformant(self):
        return Command(
            seq=11, vm_id="vm-0", api="mvnc",
            function="mvncAllocateGraph", mode="sync",
            scalars={"graph_file_length": 4096},
            handles={"device_handle": 3},
            in_buffers={"graph_file": bytes(range(256)) * 16},
            out_sizes={"graph_handle": 8},
            issue_time=2.5,
        )

    def test_conformant_command_is_fast(self):
        codec = _specialized()
        wire = codec.encode_command(self._conformant())
        decoded = codec.decode_command(wire)
        snap = codec.snapshot()
        assert snap["fast_encodes"] == 1
        assert snap["fast_decodes"] == 1
        assert snap["fallback_encodes"] == 0
        assert snap["fallback_decodes"] == 0
        assert decoded == self._conformant()

    def test_conformant_reply_is_fast(self):
        codec = _specialized()
        reply = Reply(seq=11, return_value=0,
                      new_handles={"graph_handle": 9}, complete_time=3.0)
        wire = codec.encode_reply(reply, reply_to=self._conformant())
        decoded = codec.decode_reply(wire, reply_to=self._conformant())
        snap = codec.snapshot()
        assert snap["fast_encodes"] == 1
        assert snap["fast_decodes"] == 1
        assert snap["fallback_encodes"] == 0
        assert decoded == reply

    def test_deviating_command_falls_back_identically(self):
        codec = _specialized()
        command = self._conformant()
        command.cached_refs = {"graph_file": [b"\x02" * 16, 4096, "buf"]}
        command.in_buffers = {}
        wire = frame_bytes(codec.encode_command(command))
        assert wire == frame_bytes(INTERP.encode_command(command))
        assert codec.snapshot()["fallback_encodes"] == 1
        assert codec.decode_command(wire) == command

    def test_large_payload_is_spliced_zero_copy(self):
        codec = _specialized()
        command = self._conformant()
        frame = codec.encode_command(command)
        # the 4 KiB graph_file payload rides the frame as a view over
        # the caller's bytes, not a copy into the header allocation
        payload = command.in_buffers["graph_file"]
        segments = getattr(frame, "segments", None)
        assert segments is not None
        assert any(
            seg is payload
            or (isinstance(seg, memoryview) and seg.obj is payload)
            for seg in segments
        )


# ---------------------------------------------------------------------------
# trust-boundary hardening parity
# ---------------------------------------------------------------------------

def _both_decode_command(data):
    try:
        fast = SPEC.decode_command(data)
    except CodecError:
        fast = CodecError
    try:
        slow = INTERP.decode_command(data)
    except CodecError:
        slow = CodecError
    return fast, slow


def _hostile_frames():
    for api in APIS:
        fn = sorted(LAYOUTS[api])[0]
        lay = LAYOUTS[api][fn]
        yield frame_bytes(INTERP.encode_command(Command(
            seq=3, vm_id="vm-h", api=api, function=fn, mode="async",
            scalars={name: 7 for name in lay["scalars"]},
            handles={name: 9 for name in lay["handles"]},
            in_buffers={name: bytes(range(48)) for name in lay["inbufs"]},
            out_sizes={name: 64 for name in lay["outsz"]},
            issue_time=1.25,
        )))


class TestHardeningParity:

    def test_systematic_truncation_parity(self):
        for wire in _hostile_frames():
            for cut in range(len(wire)):
                fast, slow = _both_decode_command(wire[:cut])
                assert fast is CodecError
                assert slow is CodecError

    def test_single_byte_corruption_parity(self):
        for wire in _hostile_frames():
            for index in range(len(wire)):
                for flip in (0x01, 0x80, 0xFF):
                    mutated = bytearray(wire)
                    mutated[index] ^= flip
                    fast, slow = _both_decode_command(bytes(mutated))
                    assert fast == slow or (fast is CodecError
                                            and slow is CodecError)

    def test_decode_bomb_parity(self):
        # a u32 length field promising far more data than the frame
        # holds must bounce off both codecs, not allocate
        wire = bytearray(next(iter(_hostile_frames())))
        index = wire.find(b"seq")
        wire[index - 4:index] = b"\xff\xff\xff\xff"
        fast, slow = _both_decode_command(bytes(wire))
        assert fast is CodecError
        assert slow is CodecError
