"""Tests for CAvA code generation: sources, compilation, classification."""

import os

import pytest

from repro.codegen.classify import (
    ParamClass,
    classify_param,
    classify_return,
    scalar_coercion,
)
from repro.codegen.generator import generate_api, generate_sources
from repro.codegen.pyexpr import expr_to_python
from repro.codegen.specwriter import render_spec
from repro.spec import parse_spec, infer_preliminary_spec, parse_header
from repro.spec.errors import SpecSemanticError
from repro.spec.expr import parse_expr

SPEC_TEXT = """
api(miniapi);
type(st) { success(OK); }
type(hdl) { handle; }

st makeThing(int size, hdl *out_thing) {
    parameter(out_thing) { out; element { allocates; } }
    record(create);
}

st copyIn(hdl thing, const float *data, int data_size) {
    async;
    consumes(bus_bytes, data_size);
}

st copyOut(hdl thing, float *data, int data_size) {
    parameter(data) { out; buffer(data_size); }
}

st freeThing(hdl thing) {
    parameter(thing) { deallocates; }
    record(destroy);
}
"""


@pytest.fixture()
def spec():
    parsed = parse_spec(SPEC_TEXT)
    parsed.constants["OK"] = 0.0
    return parsed


class TestClassification:
    def test_scalar(self, spec):
        param = spec.function("makeThing").param("size")
        assert classify_param(spec, param) is ParamClass.SCALAR

    def test_handle(self, spec):
        param = spec.function("copyIn").param("thing")
        assert classify_param(spec, param) is ParamClass.HANDLE

    def test_handle_box_out(self, spec):
        param = spec.function("makeThing").param("out_thing")
        assert classify_param(spec, param) is ParamClass.HANDLE_BOX_OUT

    def test_buffer_in(self, spec):
        param = spec.function("copyIn").param("data")
        assert classify_param(spec, param) is ParamClass.BUFFER_IN

    def test_buffer_out(self, spec):
        param = spec.function("copyOut").param("data")
        assert classify_param(spec, param) is ParamClass.BUFFER_OUT

    def test_return_scalar(self, spec):
        assert classify_return(spec, spec.function("copyIn")) == "scalar"

    def test_return_handle(self):
        local = parse_spec("api(x);\ntype(hdl) { handle; }\nhdl make(int n);")
        assert classify_return(local, local.function("make")) == "handle"

    def test_void_return(self):
        local = parse_spec("api(x);\nvoid poke(int n);")
        assert classify_return(local, local.function("poke")) == "none"

    def test_scalar_coercion(self, spec):
        assert scalar_coercion(spec.function("makeThing").param("size")) \
            == "int"
        local = parse_spec("api(x);\nint f(float v);")
        assert scalar_coercion(local.function("f").param("v")) == "float"


class TestPyExpr:
    def test_param_reference(self):
        expr = parse_expr("n * 4")
        assert expr_to_python(expr, {"n"}, {}, {}, coerce="int") \
            == "(int(n) * 4)"

    def test_constant_inlined(self):
        expr = parse_expr("CL_TRUE + n")
        code = expr_to_python(expr, {"n"}, {"CL_TRUE": 1.0}, {})
        assert code == "(1 + n)"

    def test_sizeof_resolved(self):
        expr = parse_expr("n * sizeof(cl_event)")
        code = expr_to_python(expr, {"n"}, {}, {"cl_event": 8})
        assert code == "(n * 8)"

    def test_unknown_name_fails_at_generation(self):
        with pytest.raises(SpecSemanticError):
            expr_to_python(parse_expr("mystery"), set(), {}, {})

    def test_ternary(self):
        expr = parse_expr("c ? 1 : 2")
        code = expr_to_python(expr, {"c"}, {}, {})
        assert eval(code, {"c": 1}) == 1
        assert eval(code, {"c": 0}) == 2

    def test_logical_ops_become_python(self):
        expr = parse_expr("a && !b || c")
        code = expr_to_python(expr, {"a", "b", "c"}, {}, {})
        assert eval(code, {"a": 1, "b": 0, "c": 0})
        assert not eval(code, {"a": 0, "b": 0, "c": 0})


class TestGeneratedSources:
    def test_three_modules_generated(self, spec):
        sources = generate_sources(spec, "nonexistent.native")
        assert "class GuestLibrary" in sources.guest_source
        assert "DISPATCH" in sources.server_source
        assert "def build_table" in sources.routing_source
        assert sources.total_lines() > 100

    def test_guest_contains_all_functions(self, spec):
        sources = generate_sources(spec, "x")
        for name in ("makeThing", "copyIn", "copyOut", "freeThing"):
            assert f"def {name}(self" in sources.guest_source

    def test_sources_are_valid_python(self, spec):
        sources = generate_sources(spec, "x")
        compile(sources.guest_source, "<guest>", "exec")
        compile(sources.server_source, "<server>", "exec")
        compile(sources.routing_source, "<routing>", "exec")

    def test_async_mode_inlined(self, spec):
        sources = generate_sources(spec, "x")
        assert "'async'" in sources.guest_source

    def test_invalid_spec_rejected(self):
        bad = parse_spec(
            "api(x);\nint f(float *out_data) "
            "{ parameter(out_data) { out; buffer(ghost_param); } }"
        )
        with pytest.raises(SpecSemanticError):
            generate_sources(bad, "x")

    def test_generate_api_writes_and_loads(self, spec, tmp_path):
        stack = generate_api(spec, str(tmp_path), "repro.opencl.api")
        assert os.path.exists(stack.paths["guest"])
        assert os.path.exists(stack.paths["server"])
        assert stack.guest_module.API_NAME == "miniapi"
        assert "makeThing" in stack.server_module.DISPATCH
        table = stack.routing_table()
        assert "copyIn" in table.functions
        assert table.functions["copyIn"].resources

    def test_record_kinds_exported(self, spec, tmp_path):
        stack = generate_api(spec, str(tmp_path), "repro.opencl.api")
        kinds = stack.record_kinds()
        assert kinds["makeThing"].value == "create"
        assert kinds["freeThing"].value == "destroy"


class TestSpecWriter:
    def test_render_parses_back(self):
        header = parse_header(
            "#define OK 0\n"
            "typedef struct _thing *thing;\n"
            "int makeIt(int size, thing *out);\n"
            "int useIt(thing t, const float *data, int data_size);\n"
        )
        preliminary = infer_preliminary_spec(header, "mini")
        text = render_spec(preliminary)
        again = parse_spec(text)
        again.constants.update(preliminary.constants)
        assert set(again.functions) == {"makeIt", "useIt"}
        assert again.function("useIt").param("data").buffer_size is not None

    def test_guidance_rendered_as_comments(self):
        header = parse_header("int f(const float *mystery, int unrelated);")
        preliminary = infer_preliminary_spec(header, "m")
        text = render_spec(preliminary)
        assert "// GUIDANCE:" in text


class TestShrinksGeneration:
    def test_server_truncates_reply_to_useful_length(self):
        spec = parse_spec(
            "api(sh);\n"
            "int produce(float *out_data, int out_data_size, "
            "int *produced) {\n"
            "  parameter(out_data) { out; buffer(out_data_size); "
            "shrinks(produced); }\n"
            "}\n"
        )
        sources = generate_sources(spec, "x")
        assert "_n_useful" in sources.server_source
        compile(sources.server_source, "<server>", "exec")

    def test_shrinks_round_trips_through_specwriter(self):
        from repro.codegen.specwriter import render_spec

        spec = parse_spec(
            "api(sh);\n"
            "int produce(float *out_data, int out_data_size, "
            "int *produced) {\n"
            "  parameter(out_data) { out; buffer(out_data_size); "
            "shrinks(produced); }\n"
            "}\n"
        )
        again = parse_spec(render_spec(spec))
        assert again.function("produce").param("out_data").shrinks_to == \
            "produced"
