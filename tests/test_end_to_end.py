"""Integration tests: the full generated stack, guest → router → silo.

These exercise exactly the path the paper builds: a workload in a guest
VM calling a CAvA-generated guest library, forwarded over hypervisor
transport, dispatched by a generated server stub into the simulated
accelerator — and verify results, isolation, timing, and semantics.
"""

import numpy as np
import pytest

from repro.guest.library import RemotingError
from repro.opencl import types
from repro.remoting.buffers import OutBox
from repro.stack import VirtualStack
from repro.workloads import InceptionWorkload

VECTOR_SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}"
)


@pytest.fixture()
def stack():
    return VirtualStack.build("opencl")


@pytest.fixture()
def hv(stack):
    return stack.hypervisor


@pytest.fixture()
def vm(stack):
    return stack.add_vm("vm-test").vm


@pytest.fixture()
def cl(vm):
    return vm.library("opencl")


def full_vector_add(cl, n=256):
    plats = [None]
    assert cl.clGetPlatformIDs(1, plats, None) == 0
    devs = [None]
    assert cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs,
                             None) == 0
    err = OutBox()
    ctx = cl.clCreateContext(None, 1, devs, None, None, err)
    queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
    a = np.arange(n, dtype=np.float32)
    b = np.full(n, 3.0, dtype=np.float32)
    c = np.zeros(n, dtype=np.float32)
    flags = types.CL_MEM_COPY_HOST_PTR
    ma = cl.clCreateBuffer(ctx, flags, 4 * n, a, err)
    mb = cl.clCreateBuffer(ctx, flags, 4 * n, b, err)
    mc = cl.clCreateBuffer(ctx, 0, 4 * n, None, err)
    prog = cl.clCreateProgramWithSource(ctx, 1, VECTOR_SRC, None, err)
    assert cl.clBuildProgram(prog, 0, None, "", None, None) == 0
    kernel = cl.clCreateKernel(prog, "vector_add", err)
    for i, mem in enumerate((ma, mb, mc)):
        assert cl.clSetKernelArg(kernel, i, 8, mem) == 0
    assert cl.clSetKernelArg(kernel, 3, 4, n) == 0
    assert cl.clEnqueueNDRangeKernel(queue, kernel, 1, None, [n], None, 0,
                                     None, None) == 0
    assert cl.clEnqueueReadBuffer(queue, mc, types.CL_TRUE, 0, 4 * n, c, 0,
                                  None, None) == 0
    assert cl.clFinish(queue) == 0
    return a, b, c


class TestForwardedExecution:
    def test_vector_add_correct(self, cl):
        a, b, c = full_vector_add(cl)
        assert np.allclose(c, a + b)

    def test_handles_are_opaque_ints(self, cl):
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        assert isinstance(plats[0], int)

    def test_guest_time_advances(self, vm, cl):
        before = vm.clock.now
        full_vector_add(cl)
        assert vm.clock.now > before

    def test_native_error_codes_forwarded(self, cl):
        err = OutBox()
        # zero-size buffer is a native CL error, not a remoting error
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        ctx = cl.clCreateContext(None, 1, devs, None, None, err)
        mem = cl.clCreateBuffer(ctx, 0, 0, None, err)
        assert mem is None
        assert err.value == types.CL_INVALID_BUFFER_SIZE

    def test_invalid_handle_is_remoting_error(self, cl):
        # clFinish is synchronous, so a forged handle surfaces immediately
        with pytest.raises(RemotingError):
            cl.clFinish(0xDEAD_BEEF)

    def test_opaque_param_must_be_none(self, cl):
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        err = OutBox()
        with pytest.raises(RemotingError):
            cl.clCreateContext("props?", 1, devs, None, None, err)

    def test_info_query_through_stack(self, cl):
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        buf = bytearray(128)
        size_ret = OutBox()
        assert cl.clGetPlatformInfo(plats[0], types.CL_PLATFORM_NAME, 128,
                                    buf, size_ret) == 0
        assert b"AvA" in bytes(buf[: size_ret.value])


class TestAsyncSemantics:
    def test_set_kernel_arg_counted_async(self, vm, cl):
        full_vector_add(cl)
        runtime = vm.runtimes["opencl"]
        assert runtime.calls_async > 0
        assert runtime.calls_sync > 0

    def test_async_error_surfaces_on_later_call(self, vm, cl):
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        err = OutBox()
        ctx = cl.clCreateContext(None, 1, devs, None, None, err)
        queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
        prog = cl.clCreateProgramWithSource(ctx, 1, VECTOR_SRC, None, err)
        cl.clBuildProgram(prog, 0, None, "", None, None)
        kernel = cl.clCreateKernel(prog, "vector_add", err)
        # async clSetKernelArg with a bad index returns "success"...
        code = cl.clSetKernelArg(kernel, 99, 8, 1)
        assert code == types.CL_SUCCESS
        # ...and the real error arrives on the next synchronous call
        code = cl.clFinish(queue)
        assert code == types.CL_INVALID_ARG_INDEX

    def test_async_cheaper_than_sync(self, hv):
        vm_a = hv.create_vm("vm-a")
        vm_b = hv.create_vm("vm-b")
        full_vector_add(vm_a.library("opencl"))
        full_vector_add(vm_b.library("opencl"))
        # both did the same; just sanity-check determinism across VMs
        assert vm_a.clock.now == pytest.approx(vm_b.clock.now, rel=1e-6)


class TestIsolation:
    def test_cross_vm_handles_rejected(self, hv):
        vm_a = hv.create_vm("vm-a")
        vm_b = hv.create_vm("vm-b")
        cl_a = vm_a.library("opencl")
        cl_b = vm_b.library("opencl")
        plats = [None]
        cl_a.clGetPlatformIDs(1, plats, None)
        stolen = plats[0]
        buf = bytearray(64)
        with pytest.raises(RemotingError):
            cl_b.clGetPlatformInfo(stolen, types.CL_PLATFORM_NAME, 64, buf,
                                   None)

    def test_worker_fault_contained(self, hv):
        vm_a = hv.create_vm("vm-a")
        vm_b = hv.create_vm("vm-b")
        worker_a = hv.worker("vm-a", "opencl")
        worker_a.poisoned = "injected fault"
        with pytest.raises(RemotingError):
            full_vector_add(vm_a.library("opencl"))
        # VM b is unaffected
        a, b, c = full_vector_add(vm_b.library("opencl"))
        assert np.allclose(c, a + b)

    def test_private_devices_per_vm(self, hv):
        vm_a = hv.create_vm("vm-a")
        vm_b = hv.create_vm("vm-b")
        full_vector_add(vm_a.library("opencl"))
        full_vector_add(vm_b.library("opencl"))
        device_a = hv.worker("vm-a", "opencl").native_session.devices[0]
        device_b = hv.worker("vm-b", "opencl").native_session.devices[0]
        assert device_a is not device_b


class TestDeallocation:
    def test_release_frees_handle_table_entry(self, hv, cl):
        worker = hv.worker("vm-test", "opencl")
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        err = OutBox()
        ctx = cl.clCreateContext(None, 1, devs, None, None, err)
        mem = cl.clCreateBuffer(ctx, 0, 64, None, err)
        assert mem in worker.handles
        assert cl.clReleaseMemObject(mem) == 0
        assert mem not in worker.handles

    def test_retained_object_survives_one_release(self, hv, cl):
        worker = hv.worker("vm-test", "opencl")
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        err = OutBox()
        ctx = cl.clCreateContext(None, 1, devs, None, None, err)
        mem = cl.clCreateBuffer(ctx, 0, 64, None, err)
        assert cl.clRetainMemObject(mem) == 0
        assert cl.clReleaseMemObject(mem) == 0
        assert mem in worker.handles  # still referenced
        assert cl.clReleaseMemObject(mem) == 0
        assert mem not in worker.handles


class TestMVNCForwarded:
    def test_inception_through_stack(self):
        session = VirtualStack.build("mvnc").add_vm("vm-ncs")
        workload = InceptionWorkload(batch=2)
        result = workload.run(session.lib)
        assert result.verified, result.detail


class TestAdminInterface:
    def test_report_reflects_activity(self, hv, cl):
        full_vector_add(cl)
        report = hv.admin_report()
        entry = report["vm-test"]
        assert entry["commands"] > 10
        assert entry["payload_bytes"] > 0
        assert entry["resources"].get("bus_bytes", 0) > 0
