"""Chaos suite: the forwarded stack stays contained under injected faults.

The invariant under test (the failure-path contract of ``repro.faults``):
whatever a :class:`FaultPlan` does to the wire or the workers, a full
workload either completes — possibly via retries — or every affected
call surfaces as a *structured* error (``RemotingError`` or an error
reply), and no exception ever escapes ``Router.deliver`` or
``Transport.deliver``.  With no plan installed, virtual-time results
stay bit-identical.

Seeded via ``CAVA_CHAOS_SEED`` (the CI chaos-smoke job pins it), so
every run of this suite injects exactly the same faults.
"""

import os

import numpy as np
import pytest

from repro.faults import (
    MODES,
    FaultInjectionError,
    FaultPlan,
    FaultyTransport,
    RetryPolicy,
)
from repro.faults.chaos import run_chaos
from repro.guest.library import RemotingError
from repro.remoting.codec import Command
from repro.stack import make_hypervisor
from repro.workloads import BFSWorkload
from repro.workloads.base import open_env

SEED = int(os.environ.get("CAVA_CHAOS_SEED", "1234"))


def fresh_stack(vm_id="v1"):
    hypervisor = make_hypervisor(apis=("opencl",))
    vm = hypervisor.create_vm(vm_id)
    return hypervisor, vm


def opened_env(vm):
    return open_env(vm.library("opencl"))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(drop=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(corrupt=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultPlan(crash_on_call=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.for_mode("meteor-strike")

    def test_same_seed_same_decisions(self):
        command = Command(seq=1, vm_id="v", api="a", function="f")
        first = [FaultPlan(seed=SEED, drop=0.3, corrupt=0.3, delay=0.3,
                           duplicate=0.3).decide_command(command)
                 for _ in range(1)]
        a = FaultPlan(seed=SEED, drop=0.3, corrupt=0.3, delay=0.3,
                      duplicate=0.3)
        b = FaultPlan(seed=SEED, drop=0.3, corrupt=0.3, delay=0.3,
                      duplicate=0.3)
        for _ in range(100):
            assert a.decide_command(command) == b.decide_command(command)
            assert a.decide_reply(command) == b.decide_reply(command)
        assert first  # silence the single-draw warm-up

    def test_corruption_always_breaks_framing(self):
        from repro.remoting.codec import (
            CodecError,
            decode_message,
            encode_message,
        )

        wire = encode_message(
            Command(seq=9, vm_id="v", api="a", function="f",
                    in_buffers={"d": b"payload"})
        )
        plan = FaultPlan(seed=SEED, corrupt=1.0)
        for _ in range(50):
            damaged = plan.corrupt_bytes(wire)
            with pytest.raises(CodecError):
                decode_message(damaged)


class TestNoFaultBitIdentical:
    """A zero-rate plan (and its wrapper) must be cost-transparent."""

    def _run(self, install_plan):
        hypervisor, vm = fresh_stack()
        if install_plan:
            hypervisor.install_fault_plan(FaultPlan(seed=SEED))
        result = BFSWorkload(scale=0.06).run(vm.library("opencl"))
        assert result.verified
        return vm.clock.now

    def test_virtual_time_unchanged_by_idle_plan(self):
        assert self._run(False) == self._run(True)


class TestRetries:
    def test_idempotent_calls_retried_to_completion(self):
        hypervisor, vm = fresh_stack()
        env = opened_env(vm)
        data = np.arange(16, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        plan = FaultPlan(seed=5, drop=0.5)
        hypervisor.install_fault_plan(plan)
        runtime = vm.runtimes["opencl"]
        ok = failed = 0
        for _ in range(40):
            try:
                env.write(mem, data)
                ok += 1
            except RemotingError as err:
                assert "timeout" in str(err)
                failed += 1
        # at 50% drop, most calls complete via retransmission and the
        # rare giveup (6 consecutive drops) is a structured timeout
        assert ok >= 30
        assert runtime.retries > 0
        assert runtime.giveups == failed
        assert plan.counts()["drop"] >= runtime.retries

    def test_retries_charge_virtual_backoff(self):
        hypervisor, vm = fresh_stack()
        env = opened_env(vm)
        data = np.arange(16, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        policy = RetryPolicy()
        hypervisor.install_fault_plan(FaultPlan(seed=5, drop=0.5),
                                      retry_policy=policy)
        before = vm.clock.now
        for _ in range(10):
            try:
                env.write(mem, data)
            except RemotingError:
                pass
        runtime = vm.runtimes["opencl"]
        assert runtime.retries > 0
        # every retry sat out at least the timeout plus its backoff
        floor = runtime.retries * (0.0 + policy.base_backoff)
        assert vm.clock.now - before > floor

    def test_handle_calls_never_retried(self):
        hypervisor, vm = fresh_stack()
        env = opened_env(vm)
        hypervisor.install_fault_plan(FaultPlan(seed=SEED, drop=1.0))
        with pytest.raises(RemotingError, match="timeout"):
            env.buffer(64)  # clCreateBuffer returns a fresh handle
        assert vm.runtimes["opencl"].retries == 0

    def test_exhausted_retries_give_up_structurally(self):
        hypervisor, vm = fresh_stack()
        env = opened_env(vm)
        data = np.arange(4, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        policy = RetryPolicy(max_retries=3)
        hypervisor.install_fault_plan(FaultPlan(seed=SEED, drop=1.0),
                                      retry_policy=policy)
        with pytest.raises(RemotingError, match="timeout"):
            env.write(mem, data)
        runtime = vm.runtimes["opencl"]
        assert runtime.retries == 3
        assert runtime.giveups == 1


class TestWorkerCrash:
    def make_two_tenant_stack(self):
        hypervisor = make_hypervisor(apis=("opencl",))
        plan = FaultPlan(seed=SEED, crash_on_call=4, crash_vm="victim")
        hypervisor.install_fault_plan(plan)
        victim = hypervisor.create_vm("victim")
        bystander = hypervisor.create_vm("bystander")
        return hypervisor, victim, bystander

    def test_crash_contained_to_one_vm(self):
        hypervisor, victim, bystander = self.make_two_tenant_stack()
        peer_env = opened_env(bystander)  # spawn the bystander first
        with pytest.raises(RemotingError, match="server-lost"):
            opened_env(victim)
        # every further victim call keeps failing cleanly...
        with pytest.raises(RemotingError, match="server-lost"):
            opened_env(victim)
        # ...while the bystander's worker never noticed
        data = np.arange(8, dtype=np.float32)
        mem = peer_env.buffer(data.nbytes, host=data)
        peer_env.write(mem, data)
        assert np.array_equal(peer_env.read(mem, data.nbytes), data)
        assert ("victim", "opencl") in hypervisor.lost_workers
        assert ("bystander", "opencl") not in hypervisor.lost_workers

    def test_crashed_worker_handles_invalidated(self):
        hypervisor = make_hypervisor(apis=("opencl",))
        victim = hypervisor.create_vm("victim")
        env = opened_env(victim)  # 4 calls: platform/device/context/queue
        worker = hypervisor.worker("victim", "opencl")
        assert len(worker.handles) > 0
        plan = FaultPlan(seed=SEED, crash_on_call=1, crash_vm="victim")
        hypervisor.install_fault_plan(plan)
        with pytest.raises(RemotingError, match="server-lost"):
            env.buffer(64)
        assert len(worker.handles) == 0  # table cleared on crash

    def test_restart_brings_vm_back(self):
        hypervisor, victim, _ = self.make_two_tenant_stack()
        with pytest.raises(RemotingError, match="server-lost"):
            opened_env(victim)
        hypervisor.restart_worker("victim", "opencl")
        # the plan crashes once; a fresh worker serves a full workload
        result = BFSWorkload(scale=0.06).run(victim.library("opencl"))
        assert result.verified
        assert hypervisor.router.metrics_for("victim").server_lost >= 1


class TestBreakerThroughStack:
    def test_malformed_flood_trips_and_recovers(self):
        hypervisor, vm = fresh_stack()
        env = opened_env(vm)
        router = hypervisor.router
        now = vm.clock.now
        for index in range(router.breaker_threshold):
            router.deliver(b"\xabC\xff\xff\xff\xff", now + index * 1e-6,
                           source="v1")
        assert router.breakers["v1"].tripped == 1
        # the flooding VM's legitimate traffic is rejected while open
        with pytest.raises(RemotingError, match="circuit open"):
            env.finish()
        # after the cooldown the VM is served again
        vm.clock.advance(router.breaker_cooldown + 1e-3, "idle")
        env.finish()

    def test_other_vm_unaffected_by_open_breaker(self):
        hypervisor = make_hypervisor(apis=("opencl",))
        noisy = hypervisor.create_vm("noisy")
        quiet = hypervisor.create_vm("quiet")
        opened_env(noisy)
        router = hypervisor.router
        for index in range(router.breaker_threshold):
            router.deliver(b"junk", noisy.clock.now + index * 1e-6,
                           source="noisy")
        assert router.breakers["noisy"].tripped == 1
        env = opened_env(quiet)
        data = np.arange(8, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        assert np.array_equal(env.read(mem, data.nbytes), data)


class TestChaosHarness:
    @pytest.mark.parametrize("mode", tuple(MODES) + ("all",))
    def test_every_mode_contained(self, mode):
        report = run_chaos(mode=mode, seed=SEED, bystander=False)
        assert report.contained
        if not report.completed:
            # a structured failure names the failing call's error
            assert report.error

    def test_crash_mode_recovers_and_isolates(self):
        report = run_chaos(mode="crash", seed=SEED)
        assert report.contained
        assert report.server_lost >= 1
        assert report.recovered_after_restart is True
        assert report.bystander_verified is True

    def test_delay_mode_completes_late_but_correct(self):
        report = run_chaos(mode="delay", seed=SEED, bystander=False)
        assert report.completed and report.verified
        assert report.injected.get("delay", 0) > 0

    def test_reports_are_deterministic(self):
        first = run_chaos(mode="all", seed=SEED, bystander=False)
        second = run_chaos(mode="all", seed=SEED, bystander=False)
        assert first.injected == second.injected
        assert first.completed == second.completed
        assert first.error == second.error
        assert first.retries == second.retries

    def test_report_formats(self):
        report = run_chaos(mode="crash", seed=SEED)
        text = report.format()
        assert "mode=crash" in text
        assert "invariant: contained" in text


class TestFaultTelemetry:
    def test_fault_spans_and_retry_metrics(self):
        from repro.telemetry import MetricsRegistry, Tracer, use

        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        hypervisor, vm = fresh_stack()
        with use(tracer):
            env = opened_env(vm)
            data = np.arange(16, dtype=np.float32)
            mem = env.buffer(data.nbytes, host=data)
            hypervisor.install_fault_plan(FaultPlan(seed=5, drop=0.5))
            for _ in range(10):
                try:
                    env.write(mem, data)
                except RemotingError:
                    pass
        names = {span.name for span in tracer.spans}
        assert "fault.drop" in names
        assert "retry" in names
        runtime = vm.runtimes["opencl"]
        registry.absorb_runtime("v1", runtime)
        registry.absorb_router(hypervisor.router.metrics)
        entry = registry.vm("v1")
        assert entry.retries == runtime.retries > 0
        per_function = entry.functions["clEnqueueWriteBuffer"]
        assert per_function.retries == runtime.retries

    def test_faulty_transport_costs_delegate(self):
        hypervisor, vm = fresh_stack()
        inner = vm.driver.transport
        wrapped = FaultyTransport(inner, FaultPlan(seed=SEED))
        for nbytes in (64, 4096, 1 << 20):
            assert wrapped.send_cost(nbytes) == inner.send_cost(nbytes)
            assert wrapped.recv_cost(nbytes) == inner.recv_cost(nbytes)
            assert wrapped.enqueue_cost(nbytes) == inner.enqueue_cost(nbytes)


class TestXferCacheChaos:
    """Every fault mode against cached-ref frames and the NeedBytes leg.

    The transfer cache adds two new frame shapes to the wire — commands
    carrying digest-only refs, and the router's ``NeedBytes`` answer —
    and both must satisfy the suite's containment invariant: recover
    via retry/retransmission or surface a typed error, and *never*
    deliver bytes other than the guest's bytes at send time.
    """

    DATA_BYTES = 4096

    def cached_stack(self, shared=True, vm_id="v1"):
        from repro.remoting.xfercache import CachePolicy

        hypervisor = make_hypervisor(apis=("opencl",))
        vm = hypervisor.create_vm(
            vm_id,
            cache_policy=CachePolicy(min_bytes=64, shared_index=shared),
        )
        return hypervisor, vm

    def _pump(self, fn, attempts=30):
        """Retry through structured failures; anything else propagates."""
        last = None
        for _ in range(attempts):
            try:
                return fn()
            except RemotingError as err:
                last = err
        raise AssertionError(f"never recovered: {last}")

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("shared", [True, False])
    def test_every_mode_on_cached_frames(self, mode, shared):
        hypervisor, vm = self.cached_stack(shared=shared)
        env = opened_env(vm)
        data = np.arange(self.DATA_BYTES, dtype=np.uint8)
        mem = env.buffer(data.nbytes)
        # seed the store (and local index) before the faults arm, so
        # the faulted frames really are digest-only
        env.write(mem, data)
        env.write(mem, data)
        assert hypervisor.router.metrics_for(vm.vm_id).xfer_hits >= 1

        hypervisor.install_fault_plan(FaultPlan.for_mode(mode, seed=SEED))
        for round_index in range(8):
            try:
                env.write(mem, data)
            except RemotingError:
                # crash mode: bring the worker back and re-establish the
                # device state the way a real guest driver would
                if (vm.vm_id, "opencl") in hypervisor.lost_workers:
                    hypervisor.restart_worker(vm.vm_id, "opencl")
                    env = opened_env(vm)
                    mem = env.buffer(data.nbytes)
                    self._pump(lambda: env.write(mem, data))
        got = self._pump(
            lambda: env.read(mem, data.nbytes, dtype=np.uint8))
        assert bytes(got) == data.tobytes(), \
            f"mode {mode} delivered wrong bytes"

    @pytest.mark.parametrize("mode", MODES)
    def test_every_mode_on_the_need_bytes_leg(self, mode):
        """Force a genuine miss each round (local index + cleared
        store), so every faulted exchange includes the miss/retransmit
        leg — the NeedBytes answer and the full-payload resend."""
        hypervisor, vm = self.cached_stack(shared=False)
        env = opened_env(vm)
        data = np.arange(self.DATA_BYTES, dtype=np.uint8)
        mem = env.buffer(data.nbytes)
        env.write(mem, data)
        env.write(mem, data)
        cache = vm.xfer_cache
        assert cache.elided_payloads == 1

        hypervisor.install_fault_plan(FaultPlan.for_mode(mode, seed=SEED))
        store = hypervisor.xfer_stores[vm.vm_id]
        for round_index in range(8):
            store.clear("chaos: force a miss")
            try:
                env.write(mem, data)
            except RemotingError:
                if (vm.vm_id, "opencl") in hypervisor.lost_workers:
                    hypervisor.restart_worker(vm.vm_id, "opencl")
                    env = opened_env(vm)
                    mem = env.buffer(data.nbytes)
                    self._pump(lambda: env.write(mem, data))
        assert cache.retransmits >= 1, "the miss leg never fired"
        got = self._pump(
            lambda: env.read(mem, data.nbytes, dtype=np.uint8))
        assert bytes(got) == data.tobytes(), \
            f"mode {mode} corrupted the retransmission leg"

    def test_mutation_between_faulted_sends_never_leaks(self):
        """Interleave guest-side mutation with faulted cached sends:
        the read-back must always be the *latest successfully written*
        bytes, never a stale cache resolution."""
        hypervisor, vm = self.cached_stack(shared=True)
        env = opened_env(vm)
        data = bytearray(range(256)) * (self.DATA_BYTES // 256)
        mem = env.buffer(self.DATA_BYTES)
        hypervisor.install_fault_plan(FaultPlan.for_mode("all", seed=SEED))
        model = None
        for round_index in range(10):
            data[round_index] = (data[round_index] + 1) % 256
            payload = np.frombuffer(bytes(data), dtype=np.uint8)
            try:
                env.write(mem, payload)
                model = bytes(data)
            except RemotingError:
                pass
        assert model is not None, "every faulted write failed"
        got = self._pump(
            lambda: env.read(mem, self.DATA_BYTES, dtype=np.uint8))
        assert bytes(got) == model

    def test_need_bytes_reply_dropped_then_retried(self):
        """Drop every host→guest reply for a while: the NeedBytes
        answer itself is lost, the guest times out, and the seeded
        retry path must converge to the correct bytes once the plan
        stops dropping."""
        hypervisor, vm = self.cached_stack(shared=False)
        env = opened_env(vm)
        data = np.arange(self.DATA_BYTES, dtype=np.uint8)
        mem = env.buffer(data.nbytes)
        env.write(mem, data)
        env.write(mem, data)

        hypervisor.install_fault_plan(
            FaultPlan(seed=SEED, drop_replies=0.5))
        store = hypervisor.xfer_stores[vm.vm_id]
        recovered = 0
        for _ in range(6):
            store.clear("chaos: force a miss")
            try:
                self._pump(lambda: env.write(mem, data), attempts=10)
                recovered += 1
            except AssertionError:
                pass
        assert recovered >= 1
        got = self._pump(
            lambda: env.read(mem, data.nbytes, dtype=np.uint8))
        assert bytes(got) == data.tobytes()

    def test_fault_free_cached_run_costs_unchanged_by_idle_plan(self):
        """A zero-rate plan stays cost-transparent with the cache on."""

        def run(install_plan):
            hypervisor, vm = self.cached_stack(shared=True,
                                               vm_id="v-idle")
            if install_plan:
                hypervisor.install_fault_plan(FaultPlan(seed=SEED))
            env = opened_env(vm)
            data = np.arange(self.DATA_BYTES, dtype=np.uint8)
            mem = env.buffer(data.nbytes)
            for _ in range(4):
                env.write(mem, data)
            return vm.clock.now

        assert run(False) == run(True)


class TestMigrationChaos:
    """Every fault mode against the live-migration channel's two legs.

    The containment invariant, extended to migrations: whatever the
    plan injects into pre-copy or cutover frames (or the destination
    worker), a live migration either completes with full fidelity or
    aborts back to a still-serving source.  There is never a
    half-migrated worker, a stuck frozen VM, or wrong bytes.
    """

    N = 1024

    def migration_stack(self, vm_id="vm-mig"):
        hypervisor, vm = fresh_stack(vm_id)
        env = opened_env(vm)
        data = np.arange(self.N, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        return hypervisor, vm, env, mem, data

    def _read_back(self, env, mem, nbytes, attempts=30):
        last = None
        for _ in range(attempts):
            try:
                return env.read(mem, nbytes)
            except RemotingError as err:
                last = err
        raise AssertionError(f"never read back: {last}")

    @pytest.mark.parametrize("mode", MODES)
    def test_every_mode_never_half_migrates(self, mode):
        from repro.migration import MigrationAborted

        hypervisor, vm, env, mem, data = self.migration_stack()
        source = hypervisor.worker(vm.vm_id, "opencl")
        hypervisor.install_fault_plan(FaultPlan.for_mode(mode, seed=SEED))
        try:
            report = hypervisor.live_migrate_vm(vm.vm_id, "opencl")
        except MigrationAborted:
            # clean abort: the source slot is untouched and serving
            assert hypervisor.worker(vm.vm_id, "opencl") is source
            assert hypervisor.migrations[-1].aborted
        else:
            assert not report.aborted
            assert hypervisor.worker(vm.vm_id, "opencl") is not source
        # no stuck frozen window either way
        assert vm.vm_id not in hypervisor.router.frozen_vms
        # and in both outcomes the guest reads its own bytes back
        got = self._read_back(env, mem, data.nbytes)
        assert got.tobytes() == data.tobytes(), \
            f"mode {mode} delivered wrong bytes"

    def test_total_loss_aborts_to_serving_source(self):
        from repro.migration import MigrationAborted

        hypervisor, vm, env, mem, data = self.migration_stack("vm-loss")
        source = hypervisor.worker(vm.vm_id, "opencl")
        # arm the migration channel only — the guest channel stays
        # clean, so "source still serving" is directly observable
        plan = FaultPlan(seed=SEED, drop=1.0)
        hypervisor.fault_plan = plan
        with pytest.raises(MigrationAborted):
            hypervisor.live_migrate_vm(vm.vm_id, "opencl")
        assert hypervisor.worker(vm.vm_id, "opencl") is source
        assert any(event.leg == "cutover" for event in plan.events)
        got = env.read(mem, data.nbytes)
        assert got.tobytes() == data.tobytes()

    def test_fault_events_carry_migration_legs(self):
        """Injected migration faults are attributable per leg — chaos
        runs can assert coverage of pre-copy and cutover separately."""
        from repro.migration import MigrationPolicy

        hypervisor, vm, env, mem, data = self.migration_stack("vm-legs")
        # kernel writes are invisible to the recorder: they force real
        # pre-copy payload frames for the plan to fault
        kernel = env.kernel(env.program(
            "__kernel void vector_add(__global float* a, __global float* "
            "b, __global float* c, int n) {}"), "vector_add")
        outs = [env.buffer(data.nbytes) for _ in range(4)]
        second = env.buffer(data.nbytes, host=data)

        plan = FaultPlan(seed=SEED, drop=0.4, duplicate=0.4, delay=0.4)
        hypervisor.fault_plan = plan  # migration channel only
        policy = MigrationPolicy(max_frame_retries=64)
        engine = hypervisor.start_live_migration(vm.vm_id, "opencl",
                                                 policy=policy)
        engine.precopy_round()
        for out in outs:
            env.set_args(kernel, mem, second, out, self.N)
            env.launch(kernel, [self.N])
        env.finish()
        shipped = engine.precopy_round()
        assert shipped == 4 * data.nbytes
        report = engine.cutover()
        assert not report.aborted

        legs = {event.leg for event in plan.events}
        assert "precopy" in legs
        assert "cutover" in legs
        assert all(event.vm_id == vm.vm_id for event in plan.events)
        assert report.retransmits == engine.channel.retransmits > 0
