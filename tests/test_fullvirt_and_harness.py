"""Tests for the full-virtualization model and the measurement harness."""

import pytest

from repro.fullvirt import (
    FullVirtEstimate,
    TrapModel,
    estimate_fullvirt,
    summarize,
)
from repro.harness.report import format_figure5, format_table
from repro.harness.runner import (
    FigureFiveRow,
    Measurement,
    run_figure5,
    run_native_opencl,
    run_virtualized,
)
from repro.vclock import CostModel
from repro.workloads import GaussianWorkload, NNWorkload


def measurement(name="w", mode="native", runtime=1.0, **kwargs):
    return Measurement(name=name, mode=mode, runtime=runtime, verified=True,
                       **kwargs)


class TestTrapModel:
    def test_from_cost_model(self):
        model = TrapModel.from_cost_model(CostModel())
        assert model.trap_cost == CostModel().mmio_trap_cost
        assert model.traps_per_call == CostModel().mmio_traps_per_call

    def test_estimate_counts_call_and_data_traps(self):
        native = measurement(runtime=1e-3)
        ava = measurement(mode="ava", runtime=1.1e-3, calls_sync=10,
                          calls_async=90)
        model = TrapModel(trap_cost=10e-6, traps_per_call=10,
                          bar_window_bytes=4096)
        estimate = estimate_fullvirt(native, ava, payload_bytes=40960,
                                     model=model)
        assert estimate.traps == 100 * 10 + 10
        assert estimate.fullvirt_runtime == pytest.approx(
            1e-3 + 1010 * 10e-6
        )

    def test_slowdowns(self):
        estimate = FullVirtEstimate(
            name="x", native_runtime=1.0, ava_runtime=1.1,
            fullvirt_runtime=20.0, traps=100,
        )
        assert estimate.fullvirt_slowdown == 20.0
        assert estimate.ava_slowdown == pytest.approx(1.1)

    def test_summarize_geomeans(self):
        estimates = {
            "a": FullVirtEstimate("a", 1.0, 1.0, 4.0, 1),
            "b": FullVirtEstimate("b", 1.0, 1.0, 16.0, 1),
        }
        means = summarize(estimates)
        assert means["fullvirt_geomean"] == pytest.approx(8.0)
        assert means["ava_geomean"] == pytest.approx(1.0)


class TestRunner:
    def test_native_measurement_fields(self):
        result = run_native_opencl(GaussianWorkload(scale=0.1))
        assert result.mode == "native"
        assert result.verified
        assert result.runtime > 0
        assert "api_call" in result.accounts

    def test_virtualized_counts_calls(self):
        result = run_virtualized(GaussianWorkload(scale=0.1),
                                 vm_id="vm-h1")
        assert result.mode == "ava"
        assert result.calls_sync > 0
        assert result.calls_async > 0

    def test_figure5_row_properties(self):
        native = measurement(runtime=2.0)
        virtualized = measurement(mode="ava", runtime=2.2)
        row = FigureFiveRow("w", "dev", native, virtualized)
        assert row.relative_runtime == pytest.approx(1.1)
        assert row.verified

    def test_figure5_row_zero_native(self):
        row = FigureFiveRow("w", "dev", measurement(runtime=0.0),
                            measurement(mode="ava", runtime=1.0))
        assert row.relative_runtime == float("inf")

    def test_run_figure5_subset(self):
        rows = run_figure5(scale=0.05,
                           workload_classes=[GaussianWorkload, NNWorkload],
                           include_mvnc=False)
        assert [row.name for row in rows] == ["gaussian", "nn"]
        assert all(row.verified for row in rows)
        assert all(row.relative_runtime >= 1.0 for row in rows)

    def test_transport_selection(self):
        local = run_virtualized(GaussianWorkload(scale=0.05),
                                vm_id="vm-h2", transport="inproc")
        remote = run_virtualized(GaussianWorkload(scale=0.05),
                                 vm_id="vm-h3", transport="network")
        assert remote.runtime > local.runtime


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_figure5_mentions_paper(self):
        rows = run_figure5(scale=0.05,
                           workload_classes=[GaussianWorkload],
                           include_mvnc=False)
        text = format_figure5(rows)
        assert "paper" in text
        assert "gaussian" in text
        assert "ok" in text


class TestGantt:
    def test_gantt_shape(self):
        from repro.harness.report import format_gantt
        from repro.hypervisor.scheduler import (
            ContendedDevice, FairShareScheduler, WorkItem,
        )

        stats = ContendedDevice(FairShareScheduler()).run({
            "alpha": [WorkItem(1e-3) for _ in range(10)],
            "beta": [WorkItem(1e-3) for _ in range(10)],
        })
        text = format_gantt(stats, width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # two VMs + axis
        assert "A" in lines[0] and "B" in lines[1]
        assert "ms" in lines[2]

    def test_gantt_empty(self):
        from repro.harness.report import format_gantt

        assert "empty" in format_gantt({})
