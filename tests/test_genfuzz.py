"""Generator fuzz: random API specs, generated stacks, verified round trips.

The strongest correctness property CAvA can have: for *any* spec in the
language's space, the generated guest and server modules agree on the
wire protocol.  This fuzzer builds random function signatures (scalars,
strings, handles, in/out buffers, boxes), synthesizes an echo-style
native module whose behaviour is predictable from its arguments,
generates a full stack, runs calls through a real hypervisor, and checks
every output path.
"""

from __future__ import annotations

import contextlib
import itertools
import sys
import types

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.generator import generate_sources
from repro.hypervisor.hypervisor import ApiRegistration, Hypervisor
from repro.hypervisor.router import RoutingTable
from repro.remoting.buffers import OutBox, read_bytes, write_back
from repro.spec.model import (
    ApiSpec,
    CType,
    Direction,
    FunctionSpec,
    ParamSpec,
    SyncMode,
    SyncPolicy,
    TypeSpec,
)
from repro.spec.expr import Name
from repro.spec.model import scalar_literal

_COUNTER = itertools.count()

PARAM_KINDS = ("scalar_int", "scalar_float", "string", "handle",
               "in_buffer", "out_buffer", "scalar_box", "new_handle")


def build_spec(kind_lists):
    """An ApiSpec with one function per kind-list."""
    spec = ApiSpec(name=f"fuzz{next(_COUNTER)}")
    spec.types["fz_status"] = TypeSpec(name="fz_status", success_value="0")
    spec.types["fz_handle"] = TypeSpec(name="fz_handle", is_handle=True,
                                       size_bytes=8)
    for index, kinds in enumerate(kind_lists):
        func = FunctionSpec(
            name=f"fzCall{index}",
            return_type=CType("fz_status"),
            sync_policy=SyncPolicy.always(SyncMode.SYNC),
        )
        for slot, kind in enumerate(kinds):
            name = f"p{slot}"
            if kind == "scalar_int":
                param = ParamSpec(name=name, ctype=CType("long"))
            elif kind == "scalar_float":
                param = ParamSpec(name=name, ctype=CType("double"))
            elif kind == "string":
                param = ParamSpec(name=name,
                                  ctype=CType("char", 1, is_const=True),
                                  is_string=True)
            elif kind == "handle":
                param = ParamSpec(name=name, ctype=CType("fz_handle"),
                                  is_handle=True)
            elif kind == "in_buffer":
                func.params.append(ParamSpec(name=f"{name}_size",
                                             ctype=CType("long")))
                param = ParamSpec(name=name,
                                  ctype=CType("void", 1, is_const=True),
                                  direction=Direction.IN,
                                  buffer_size=Name(f"{name}_size"))
            elif kind == "out_buffer":
                func.params.append(ParamSpec(name=f"{name}_size",
                                             ctype=CType("long")))
                param = ParamSpec(name=name, ctype=CType("void", 1),
                                  direction=Direction.OUT,
                                  buffer_size=Name(f"{name}_size"))
            elif kind == "scalar_box":
                param = ParamSpec(name=name, ctype=CType("long", 1),
                                  direction=Direction.OUT,
                                  buffer_size=scalar_literal(1),
                                  buffer_is_elements=True)
            elif kind == "new_handle":
                param = ParamSpec(name=name, ctype=CType("fz_handle", 1),
                                  direction=Direction.OUT,
                                  buffer_size=scalar_literal(1),
                                  buffer_is_elements=True,
                                  element_allocates=True)
            else:  # pragma: no cover
                raise AssertionError(kind)
            func.params.append(param)
        spec.add_function(func)
    spec.require_valid()
    return spec


class FuzzHandle:
    """Host object handed out by new_handle slots."""

    def __init__(self, tag):
        self.tag = tag


def build_native_module(spec):
    """An echo-style native implementation for ``spec``.

    Behaviour per parameter kind (deterministic, checkable guest-side):
    out_buffers are filled with the XOR of 0x5A and their size;
    scalar_boxes get the sum of all integer scalars; new_handles get a
    FuzzHandle tagged with the call's scalar sum.
    """
    module = types.ModuleType(f"_fuzz_native_{spec.name}")

    def make_impl(func):
        param_specs = {p.name: p for p in func.params}

        def impl(*args, _func=func, _specs=param_specs):
            named = dict(zip([p.name for p in _func.params], args))
            scalar_sum = sum(
                int(v) for n, v in named.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                and not _specs[n].is_handle
            )
            for name, value in named.items():
                param = _specs[name]
                if param.direction is Direction.OUT and value is not None:
                    if param.element_allocates:
                        value[0] = FuzzHandle(scalar_sum)
                    elif isinstance(value, OutBox):
                        value[0] = scalar_sum
                    else:  # out buffer
                        size = len(value)
                        write_back(value,
                                   bytes((0x5A ^ (size & 0xFF),) * size))
                if param.is_handle and value is not None:
                    if not isinstance(value, FuzzHandle):
                        return -7  # wrong translation
            return 0

        return impl

    for func in spec.functions.values():
        setattr(module, func.name, make_impl(func))
    sys.modules[module.__name__] = module
    return module


def deploy(spec, native_module):
    import tempfile

    from repro.codegen.generator import generate_api

    stack = generate_api(spec, tempfile.mkdtemp(prefix="cava_fuzz_"),
                         native_module.__name__)
    hv = Hypervisor()
    hv.register_api(ApiRegistration(
        name=spec.name,
        routing_table=RoutingTable.from_spec(spec),
        dispatch=stack.dispatch(),
        record_kinds={},
        guest_module=stack.guest_module,
        session_binder=lambda worker: (
            lambda w: contextlib.nullcontext()
        ),
    ))
    return hv


kind_lists_strategy = st.lists(
    st.lists(st.sampled_from(PARAM_KINDS), min_size=0, max_size=5),
    min_size=1, max_size=3,
)


def draw_call_plan(spec, kind_lists, data):
    """Pre-draw every free value so a plan can replay on several stacks."""
    plans = []
    for index in range(len(kind_lists)):
        func = spec.functions[f"fzCall{index}"]
        entry = {}
        for param in func.params:
            if param.is_handle and not param.ctype.is_pointer:
                continue
            if param.element_allocates:
                continue
            if param.direction is Direction.OUT and \
                    param.buffer_size is not None and param.buffer_is_elements:
                continue
            if param.direction is Direction.OUT:
                entry[param.name] = data.draw(
                    st.integers(min_value=1, max_value=64),
                    label=f"{func.name}.{param.name}.outsize")
            elif param.is_string:
                entry[param.name] = data.draw(
                    st.text(max_size=8), label=f"{param.name}.str")
            elif param.ctype.base == "double":
                entry[param.name] = 0.0
            elif param.direction is Direction.IN and \
                    param.buffer_size is not None:
                continue  # content derives from the preceding size scalar
            else:
                entry[param.name] = data.draw(
                    st.integers(0, 50), label=f"{param.name}.int")
        plans.append(entry)
    return plans


def replay_call(library, hv, vm, spec, func, plan_entry, handle_pool):
    """Build args from a pre-drawn plan and run one call.

    Returns every output path as plain bytes/ints so runs on different
    stacks can be diffed exactly.
    """
    args = []
    out_buffers = []
    scalar_boxes = []
    handle_boxes = []
    for param in func.params:
        if param.is_handle and not param.ctype.is_pointer:
            if not handle_pool:
                worker = hv.worker(vm.vm_id, spec.name)
                handle_pool.append(worker.handles.allocate(FuzzHandle(-1)))
            args.append(handle_pool[0])
        elif param.element_allocates:
            box = OutBox()
            handle_boxes.append(box)
            args.append(box)
        elif param.direction is Direction.OUT and \
                param.buffer_size is not None and param.buffer_is_elements:
            box = OutBox()
            scalar_boxes.append(box)
            args.append(box)
        elif param.direction is Direction.OUT:
            size_value = plan_entry[param.name]
            target = bytearray(size_value)
            out_buffers.append(target)
            args[-1] = size_value
            args.append(target)
        elif param.is_string:
            args.append(plan_entry[param.name])
        elif param.ctype.base == "double":
            args.append(plan_entry[param.name])
        elif param.direction is Direction.IN and \
                param.buffer_size is not None:
            size_value = args[-1]
            args.append(np.frombuffer(
                bytes(range(256))[:size_value], dtype=np.uint8
            ).copy() if size_value else np.zeros(0, np.uint8))
        else:
            args.append(plan_entry[param.name])
    code = getattr(library, func.name)(*args)
    for box in handle_boxes:
        handle_pool.append(box.value)
    return {
        "code": code,
        "out_buffers": [bytes(target) for target in out_buffers],
        "scalar_boxes": [box.value for box in scalar_boxes],
        # raw handle values are per-worker identities, not comparable
        # across stacks — only that a real handle came back is
        "handle_boxes": [isinstance(box.value, int)
                         for box in handle_boxes],
    }


class TestGeneratorFuzz:
    @settings(max_examples=25, deadline=None)
    @given(kind_lists_strategy, st.data())
    def test_round_trip_any_signature(self, kind_lists, data):
        spec = build_spec(kind_lists)
        native = build_native_module(spec)
        hv = deploy(spec, native)
        vm = hv.create_vm(f"vm-{spec.name}")
        library = vm.library(spec.name)

        # seed a handle for functions that take one
        handle_pool = []

        for index, kinds in enumerate(kind_lists):
            func = spec.functions[f"fzCall{index}"]
            args = []
            out_buffers = []
            scalar_boxes = []
            handle_boxes = []
            for param in func.params:
                kind = None
                if param.is_handle and not param.ctype.is_pointer:
                    if not handle_pool:
                        # mint one via a helper handle table entry
                        worker = hv.worker(vm.vm_id, spec.name)
                        handle_pool.append(
                            worker.handles.allocate(FuzzHandle(-1))
                        )
                    args.append(handle_pool[0])
                elif param.element_allocates:
                    box = OutBox()
                    handle_boxes.append(box)
                    args.append(box)
                elif param.direction is Direction.OUT and \
                        param.buffer_size is not None and \
                        param.buffer_is_elements:
                    box = OutBox()
                    scalar_boxes.append(box)
                    args.append(box)
                elif param.direction is Direction.OUT:
                    size_value = data.draw(
                        st.integers(min_value=1, max_value=64),
                        label=f"{func.name}.{param.name}.outsize",
                    )
                    target = bytearray(size_value)
                    out_buffers.append((target, size_value))
                    # the matching size scalar was appended *before* the
                    # buffer param; patch it retroactively
                    args[-1] = size_value
                    args.append(target)
                elif param.is_string:
                    args.append(data.draw(st.text(max_size=8),
                                          label=f"{param.name}.str"))
                elif param.ctype.base == "double":
                    args.append(0.0)
                elif param.direction is Direction.IN and \
                        param.buffer_size is not None:
                    size_value = args[-1]
                    args.append(np.frombuffer(
                        bytes(range(256))[:size_value], dtype=np.uint8
                    ).copy() if size_value else np.zeros(0, np.uint8))
                else:
                    value = data.draw(st.integers(0, 50),
                                      label=f"{param.name}.int")
                    args.append(value)
            # recompute the expected scalar sum honestly from args
            expected_sum = sum(
                int(v) for v, p in zip(args, func.params)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                and not p.is_handle
            )
            code = getattr(library, func.name)(*args)
            assert code == 0, f"{func.name} returned {code}"
            for target, size_value in out_buffers:
                assert bytes(target) == \
                    bytes((0x5A ^ (size_value & 0xFF),) * size_value)
            for box in scalar_boxes:
                assert box.value == expected_sum
            for box in handle_boxes:
                assert isinstance(box.value, int)
                handle_pool.append(box.value)

    @settings(max_examples=25, deadline=None)
    @given(kind_lists_strategy, st.data())
    def test_cache_on_off_outputs_byte_identical(self, kind_lists, data):
        """For any generated stack, arming the transfer cache changes
        nothing observable: every output path — return codes, out
        buffers, scalar boxes, minted handles — diffs byte-for-byte
        against the uncached run of the identical call plan.

        Each call runs twice per stack so the cached legs actually
        elide (the second send of every in-buffer and string re-sends
        unchanged payloads).
        """
        from repro.remoting.xfercache import CachePolicy

        spec = build_spec(kind_lists)
        native = build_native_module(spec)
        plans = draw_call_plan(spec, kind_lists, data)

        policies = {
            "off": None,
            "shared": CachePolicy(min_bytes=1),
            "local": CachePolicy(min_bytes=1, shared_index=False),
        }
        outputs = {}
        for label, policy in policies.items():
            hv = deploy(spec, native)
            vm = hv.create_vm(f"vm-{spec.name}-{label}",
                              cache_policy=policy)
            library = vm.library(spec.name)
            handle_pool = []
            run = []
            for index in range(len(kind_lists)):
                func = spec.functions[f"fzCall{index}"]
                for _ in range(2):  # second pass re-sends, cache bites
                    run.append(replay_call(library, hv, vm, spec, func,
                                           plans[index], handle_pool))
            outputs[label] = run

        assert outputs["shared"] == outputs["off"]
        assert outputs["local"] == outputs["off"]
