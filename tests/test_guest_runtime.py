"""Unit tests for the guest invocation runtime and driver."""

import pytest

from repro.guest.driver import GuestDriver
from repro.guest.library import GuestRuntime, RemotingError
from repro.remoting.buffers import OutBox
from repro.remoting.codec import Reply
from repro.transport.base import DeliveryResult


class ScriptedTransport:
    """Transport double returning pre-programmed replies."""

    def __init__(self, replies=None):
        self.replies = list(replies or [])
        self.sent = []
        self.async_flags = []

    def deliver(self, command, guest_now, asynchronous=False):
        self.sent.append(command)
        self.async_flags.append(asynchronous)
        reply = (self.replies.pop(0) if self.replies
                 else Reply(seq=command.seq, return_value=0))
        return DeliveryResult(
            reply=reply,
            sent_at=guest_now + 1e-6,
            completed_at=guest_now + 5e-6,
            reply_cost=1e-6,
        )


def make_runtime(replies=None):
    transport = ScriptedTransport(replies)
    driver = GuestDriver("vm-t", transport)
    return GuestRuntime(driver, "testapi"), transport, driver


def submit(runtime, mode="sync", out_targets=None, ret_kind="scalar",
           **kwargs):
    return runtime.submit(
        "fn", mode,
        kwargs.get("scalars", {}),
        kwargs.get("handles", {}),
        kwargs.get("in_buffers", {}),
        kwargs.get("out_sizes", {}),
        out_targets or {},
        ret_kind=ret_kind,
        success=0,
    )


class TestDriver:
    def test_sequence_numbers_increase(self):
        runtime, transport, driver = make_runtime()
        submit(runtime)
        submit(runtime)
        assert transport.sent[0].seq < transport.sent[1].seq

    def test_closed_driver_rejects(self):
        runtime, _, driver = make_runtime()
        driver.close()
        with pytest.raises(RuntimeError):
            submit(runtime)

    def test_commands_stamped_with_vm_and_api(self):
        runtime, transport, _ = make_runtime()
        submit(runtime)
        assert transport.sent[0].vm_id == "vm-t"
        assert transport.sent[0].api == "testapi"


class TestSyncPath:
    def test_return_value_passed_through(self):
        runtime, _, _ = make_runtime([Reply(seq=1, return_value=-30)])
        assert submit(runtime) == -30

    def test_clock_waits_for_completion(self):
        runtime, _, driver = make_runtime()
        submit(runtime)
        assert driver.clock.now > 5e-6  # completed_at + reply costs

    def test_out_buffer_written(self):
        reply = Reply(seq=1, return_value=0, out_payloads={"p": b"\x09" * 4})
        runtime, _, _ = make_runtime([reply])
        target = bytearray(4)
        submit(runtime, out_targets={"p": ("buffer", target)})
        assert target == b"\x09" * 4

    def test_scalar_box_written(self):
        reply = Reply(seq=1, return_value=0, out_scalars={"n": 42})
        runtime, _, _ = make_runtime([reply])
        box = OutBox()
        submit(runtime, out_targets={"n": ("scalar_box", box)})
        assert box.value == 42

    def test_handle_box_written(self):
        reply = Reply(seq=1, return_value=0, new_handles={"h": 0x77})
        runtime, _, _ = make_runtime([reply])
        box = OutBox()
        submit(runtime, out_targets={"h": ("handle_box", box)})
        assert box.value == 0x77

    def test_handle_array_written(self):
        reply = Reply(seq=1, return_value=0, new_handles={"hs": [5, 6]})
        runtime, _, _ = make_runtime([reply])
        target = [None, None]
        submit(runtime, out_targets={"hs": ("handle_array", target)})
        assert target == [5, 6]

    def test_handle_return(self):
        reply = Reply(seq=1, new_handles={"__ret__": 0x55})
        runtime, _, _ = make_runtime([reply])
        assert submit(runtime, ret_kind="handle") == 0x55

    def test_none_handle_return(self):
        runtime, _, _ = make_runtime([Reply(seq=1)])
        assert submit(runtime, ret_kind="handle") is None

    def test_server_error_raises(self):
        runtime, _, _ = make_runtime([Reply(seq=1, error="worker: boom")])
        with pytest.raises(RemotingError, match="boom"):
            submit(runtime)

    def test_unknown_out_kind_rejected(self):
        reply = Reply(seq=1, return_value=0, out_payloads={"p": b"x"})
        runtime, _, _ = make_runtime([reply])
        with pytest.raises(RemotingError):
            submit(runtime, out_targets={"p": ("teleport", bytearray(1))})


class TestAsyncPath:
    def test_returns_success_immediately(self):
        runtime, _, _ = make_runtime([Reply(seq=1, return_value=-5)])
        assert submit(runtime, mode="async") == 0

    def test_clock_only_pays_send(self):
        runtime, _, driver = make_runtime()
        submit(runtime, mode="async")
        # marshal + enqueue only — far less than completed_at
        assert driver.clock.now < 5e-6

    def test_transport_told_async(self):
        runtime, transport, _ = make_runtime()
        submit(runtime, mode="async")
        assert transport.async_flags == [True]

    def test_error_deferred_to_next_sync_call(self):
        runtime, _, _ = make_runtime([
            Reply(seq=1, return_value=-48),  # async failure
            Reply(seq=2, return_value=0),    # next sync call succeeds
        ])
        assert submit(runtime, mode="async") == 0
        assert submit(runtime, mode="sync") == -48

    def test_deferred_error_delivered_once(self):
        runtime, _, _ = make_runtime([
            Reply(seq=1, return_value=-48),
            Reply(seq=2, return_value=0),
            Reply(seq=3, return_value=0),
        ])
        submit(runtime, mode="async")
        assert submit(runtime) == -48
        assert submit(runtime) == 0

    def test_sync_failure_not_masked_by_deferred(self):
        runtime, _, _ = make_runtime([
            Reply(seq=1, return_value=-48),
            Reply(seq=2, return_value=-30),
        ])
        submit(runtime, mode="async")
        # the sync call's own error wins; deferred error is dropped
        assert submit(runtime) == -30

    def test_counters(self):
        runtime, _, _ = make_runtime()
        submit(runtime, mode="async")
        submit(runtime, mode="sync")
        assert runtime.calls_async == 1
        assert runtime.calls_sync == 1


class TestHelpers:
    def test_handle_list_truncates_to_count(self):
        assert GuestRuntime.handle_list([1, 2, 3], 2) == [1, 2]

    def test_handle_list_none(self):
        assert GuestRuntime.handle_list(None) is None

    def test_handle_list_null_entries(self):
        assert GuestRuntime.handle_list([1, None, 3]) == [1, 0, 3]

    def test_handle_list_rejects_objects(self):
        with pytest.raises(RemotingError):
            GuestRuntime.handle_list([object()])

    def test_read_buffer_size_check(self):
        with pytest.raises(RemotingError):
            GuestRuntime.read_buffer(b"ab", 4, "p")

    def test_read_buffer_negative_size(self):
        with pytest.raises(RemotingError):
            GuestRuntime.read_buffer(b"ab", -1, "p")
