"""The streaming log-bucketed histogram: units + property tests.

The property tests are the acceptance criterion for the quantile
machinery: on arbitrary sample sets — including across merges — the
histogram's nearest-rank quantile estimate must stay within the
documented relative-error bound of the exact nearest-rank percentile.
"""

import math

import pytest

from repro.telemetry.histogram import HistogramError, LogHistogram
from repro.telemetry.metrics import (
    EXACT_SAMPLE_LIMIT,
    LatencyHistogram,
    percentile,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


def exact_nearest_rank(samples, q):
    """The oracle: the sample at the nearest-rank position."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def assert_within_bound(histogram, samples, q):
    exact = exact_nearest_rank(samples, q)
    estimate = histogram.quantile(q)
    if exact <= histogram.min_value:
        # underflow bucket: absolute error bounded by min_value
        assert abs(estimate - exact) <= histogram.min_value
    else:
        bound = histogram.relative_error_bound
        assert abs(estimate - exact) <= bound * exact + 1e-300, (
            f"q={q}: estimate {estimate} vs exact {exact} "
            f"(bound {bound})"
        )


class TestLogHistogram:
    def test_empty(self):
        h = LogHistogram()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.buckets() == {}

    def test_record_is_bounded_memory(self):
        h = LogHistogram(buckets_per_decade=10)
        for i in range(100000):
            h.record(1e-6 * (1 + (i % 1000)))
        # 3 decades of dynamic range at 10 buckets/decade
        assert len(h.counts) <= 31
        assert h.count == 100000

    def test_exact_count_total_min_max(self):
        h = LogHistogram()
        values = [3e-6, 7e-5, 2e-4, 3e-6, 1e-2]
        for v in values:
            h.record(v)
        assert h.count == len(values)
        assert h.total == pytest.approx(sum(values))
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == pytest.approx(3e-6)
        assert h.max == pytest.approx(1e-2)

    def test_zero_and_underflow(self):
        h = LogHistogram()
        h.record(0.0)
        h.record(5e-10)  # below min_value
        h.record(1e-3)
        assert h.underflow == 2
        assert h.quantile(0.0) == pytest.approx(0.0, abs=h.min_value)
        assert h.quantile(1.0) == pytest.approx(1e-3, rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram().record(-1.0)

    def test_bad_layout_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram(buckets_per_decade=0)
        with pytest.raises(HistogramError):
            LogHistogram(min_value=0.0)

    def test_weighted_record(self):
        h = LogHistogram()
        h.record(1e-4, count=10)
        assert h.count == 10
        assert h.total == pytest.approx(1e-3)

    def test_quantile_extremes_clamped_to_observed(self):
        h = LogHistogram()
        for v in (2e-5, 4e-5, 8e-5):
            h.record(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_documented_bound_value(self):
        h = LogHistogram(buckets_per_decade=90)
        assert h.relative_error_bound == pytest.approx(
            10 ** (1 / 90) - 1
        )
        assert h.relative_error_bound < 0.026

    def test_merge_is_exact(self):
        a, b = LogHistogram(), LogHistogram()
        combined = LogHistogram()
        values = [1e-6 * (1.7 ** i) for i in range(40)]
        for i, v in enumerate(values):
            (a if i % 2 else b).record(v)
            combined.record(v)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.underflow == combined.underflow
        assert a.min == combined.min
        assert a.max == combined.max
        assert a.total == pytest.approx(combined.total)

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram(90).merge(LogHistogram(45))

    def test_merged_classmethod_empty(self):
        assert LogHistogram.merged([]).count == 0

    def test_roundtrip_dict(self):
        h = LogHistogram()
        for v in (0.0, 3e-6, 5e-4, 5e-4, 2.5):
            h.record(v)
        clone = LogHistogram.from_dict(h.to_dict())
        assert clone.counts == h.counts
        assert clone.count == h.count
        assert clone.underflow == h.underflow
        for q in (0.1, 0.5, 0.99):
            assert clone.quantile(q) == h.quantile(q)

    def test_malformed_dict_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram.from_dict({"buckets_per_decade": 90})

    def test_buckets_labels_ascending(self):
        h = LogHistogram()
        for v in (1e-10, 2e-6, 3e-3):
            h.record(v)
        labels = list(h.buckets())
        assert len(labels) == 3
        assert labels[0].startswith("<=1e-09")


class TestLatencyHistogram:
    def test_exact_small_n_matches_percentile(self):
        lh = LatencyHistogram()
        samples = [1e-6, 5e-6, 9e-6, 2e-5]
        for s in samples:
            lh.record(s)
        assert lh.exact
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert lh.quantile(q) == percentile(samples, q)

    def test_spills_to_streaming_past_limit(self):
        lh = LatencyHistogram(exact_limit=16)
        for i in range(17):
            lh.record(1e-6 * (i + 1))
        assert not lh.exact
        assert lh.count == 17
        # quantiles now come from the histogram, within its bound
        assert lh.quantile(0.5) == pytest.approx(9e-6, rel=0.03)

    def test_default_limit(self):
        assert LatencyHistogram().exact_limit == EXACT_SAMPLE_LIMIT

    def test_negative_clamped(self):
        lh = LatencyHistogram()
        lh.record(-1e-9)
        assert lh.count == 1
        assert lh.max == 0.0

    def test_merge_keeps_exact_when_small(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1e-6)
        b.record(3e-6)
        a.merge(b)
        assert a.exact
        assert a.count == 2
        assert a.quantile(0.5) == percentile([1e-6, 3e-6], 0.5)

    def test_merge_spills_when_combined_large(self):
        a = LatencyHistogram(exact_limit=4)
        b = LatencyHistogram(exact_limit=4)
        for i in range(3):
            a.record(1e-6 * (i + 1))
            b.record(1e-5 * (i + 1))
        a.merge(b)
        assert not a.exact
        assert a.count == 6

    def test_count_mean_max_from_histogram(self):
        lh = LatencyHistogram(exact_limit=2)
        for s in (1e-6, 2e-6, 3e-6, 6e-6):
            lh.record(s)
        assert lh.count == 4
        assert lh.mean == pytest.approx(3e-6)
        assert lh.max == pytest.approx(6e-6)

    def test_buckets_exact_path_pow2_labels(self):
        lh = LatencyHistogram()
        for s in (0.5e-6, 1.5e-6, 3e-6, 120e-6):
            lh.record(s)
        buckets = lh.buckets()
        assert buckets["<=1us"] == 1
        assert buckets["<=2us"] == 1
        assert buckets["<=4us"] == 1
        assert buckets["<=128us"] == 1

    def test_buckets_streaming_path_same_labels(self):
        lh = LatencyHistogram(exact_limit=2)
        for s in (0.5e-6, 1.5e-6, 3e-6, 120e-6):
            lh.record(s)
        buckets = lh.buckets()
        assert set(buckets) == {"<=1us", "<=2us", "<=4us", "<=128us"}
        assert sum(buckets.values()) == 4


@needs_hypothesis
class TestQuantileProperties:
    """Histogram quantiles vs exact percentiles on arbitrary samples."""

    # latencies across 9 orders of magnitude, plus exact zeros
    latency = st.one_of(
        st.floats(min_value=1e-9, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.just(0.0),
    )
    quantile = st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False)

    @given(samples=st.lists(latency, min_size=1, max_size=300),
           q=quantile)
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_documented_bound(self, samples, q):
        h = LogHistogram()
        for s in samples:
            h.record(s)
        assert_within_bound(h, samples, q)

    @given(left=st.lists(latency, min_size=1, max_size=150),
           right=st.lists(latency, min_size=1, max_size=150),
           q=quantile)
    @settings(max_examples=200, deadline=None)
    def test_merged_quantile_within_bound(self, left, right, q):
        a, b = LogHistogram(), LogHistogram()
        for s in left:
            a.record(s)
        for s in right:
            b.record(s)
        a.merge(b)
        assert_within_bound(a, left + right, q)

    @given(left=st.lists(latency, min_size=0, max_size=100),
           right=st.lists(latency, min_size=0, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_recording_everything_here(self, left, right):
        a, b = LogHistogram(), LogHistogram()
        combined = LogHistogram()
        for s in left:
            a.record(s)
            combined.record(s)
        for s in right:
            b.record(s)
            combined.record(s)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.underflow == combined.underflow
        assert a.count == combined.count

    @given(samples=st.lists(latency, min_size=1, max_size=1200),
           q=quantile)
    @settings(max_examples=100, deadline=None)
    def test_latency_histogram_bound_after_spill(self, samples, q):
        lh = LatencyHistogram(exact_limit=32)
        for s in samples:
            lh.record(s)
        if lh.exact:
            # exact path: interpolated convention, matches percentile()
            assert lh.quantile(q) == percentile(samples, q)
        else:
            assert_within_bound(lh.histogram, samples, q)
