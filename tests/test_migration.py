"""Tests for record/replay VM migration (§4.3)."""

import numpy as np
import pytest

from repro.migration.recorder import CallRecorder
from repro.migration.replayer import MigrationError, migrate_worker
from repro.opencl import types
from repro.remoting.buffers import OutBox
from repro.remoting.codec import Command, Reply
from repro.spec.model import RecordKind
from repro.stack import make_hypervisor
from repro.workloads import KMeansWorkload

VECTOR_SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}"
)


def command(fn, seq=1, handles=None):
    return Command(seq=seq, vm_id="vm", api="x", function=fn,
                   handles=handles or {})


class TestRecorderObjectTracking:
    def test_creates_recorded(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        assert len(recorder) == 1
        assert recorder.live_created_ids() == {10}

    def test_destroy_prunes_create(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=2),
                        RecordKind.DESTROY)
        assert len(recorder) == 0
        assert recorder.pruned_calls == 1

    def test_destroy_prunes_modifies_of_dead_object(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("tweak", handles={"h": 10}), Reply(seq=2),
                        RecordKind.MODIFY)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=3),
                        RecordKind.DESTROY)
        assert len(recorder) == 0

    def test_unrelated_records_survive_destroy(self):
        recorder = CallRecorder()
        recorder.record(command("make", seq=1),
                        Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("make", seq=2),
                        Reply(seq=2, new_handles={"h": 11}),
                        RecordKind.CREATE)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=3),
                        RecordKind.DESTROY)
        assert recorder.live_created_ids() == {11}

    def test_config_calls_recorded(self):
        recorder = CallRecorder()
        recorder.record(command("init"), Reply(seq=1), RecordKind.CONFIG)
        assert len(recorder) == 1

    def test_handle_lists_tracked(self):
        recorder = CallRecorder()
        recorder.record(
            command("makeAll"),
            Reply(seq=1, new_handles={"hs": [20, 21]}),
            RecordKind.CREATE,
        )
        assert recorder.live_created_ids() == {20, 21}


def build_state(cl, n=64):
    """Create context/queue/buffers/program/kernel with known contents."""
    plats = [None]
    cl.clGetPlatformIDs(1, plats, None)
    devs = [None]
    cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
    err = OutBox()
    ctx = cl.clCreateContext(None, 1, devs, None, None, err)
    queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
    data = np.arange(n, dtype=np.float32)
    mem = cl.clCreateBuffer(ctx, types.CL_MEM_COPY_HOST_PTR, 4 * n, data,
                            err)
    prog = cl.clCreateProgramWithSource(ctx, 1, VECTOR_SRC, None, err)
    cl.clBuildProgram(prog, 0, None, "", None, None)
    kernel = cl.clCreateKernel(prog, "vector_add", err)
    return {"ctx": ctx, "queue": queue, "mem": mem, "prog": prog,
            "kernel": kernel, "data": data, "n": n}


class TestWorkerMigration:
    def test_handles_survive_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-m")
        cl = vm.library("opencl")
        state = build_state(cl)
        old_device = hv.worker("vm-m", "opencl").native_session.devices[0]

        report = hv.migrate_vm("vm-m", "opencl")
        assert report.replayed_calls >= 4
        assert report.restored_buffers == 1
        assert report.downtime > 0

        new_device = hv.worker("vm-m", "opencl").native_session.devices[0]
        assert new_device is not old_device

        # the guest continues with its old handle values
        out = np.zeros(state["n"], dtype=np.float32)
        code = cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * state["n"], out,
                                      0, None, None)
        assert code == types.CL_SUCCESS
        assert np.allclose(out, state["data"])

    def test_workload_result_unchanged_by_midrun_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-k")
        cl = vm.library("opencl")
        state = build_state(cl, n=128)
        # mutate the buffer after creation so the snapshot matters
        update = np.full(128, 7.5, dtype=np.float32)
        cl.clEnqueueWriteBuffer(state["queue"], state["mem"], types.CL_TRUE,
                                0, 4 * 128, update, 0, None, None)
        hv.migrate_vm("vm-k", "opencl")
        out = np.zeros(128, dtype=np.float32)
        cl.clEnqueueReadBuffer(state["queue"], state["mem"], types.CL_TRUE,
                               0, 4 * 128, out, 0, None, None)
        assert np.allclose(out, update)

    def test_full_workload_after_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-w")
        cl = vm.library("opencl")
        build_state(cl)
        hv.migrate_vm("vm-w", "opencl")
        result = KMeansWorkload(scale=0.05).run(cl)
        assert result.verified

    def test_released_objects_not_replayed(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-r")
        cl = vm.library("opencl")
        state = build_state(cl)
        err = OutBox()
        extra = cl.clCreateBuffer(state["ctx"], 0, 256, None, err)
        assert cl.clReleaseMemObject(extra) == 0
        cl.clFinish(state["queue"])  # drain async release
        worker = hv.worker("vm-r", "opencl")
        assert extra not in worker.handles
        report = hv.migrate_vm("vm-r", "opencl")
        new_worker = hv.worker("vm-r", "opencl")
        assert extra not in new_worker.handles
        assert state["mem"] in new_worker.handles
        assert report.restored_buffers == 1

    def test_migrate_requires_fresh_target(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-x")
        cl = vm.library("opencl")
        build_state(cl)
        source = hv.worker("vm-x", "opencl")
        with pytest.raises(MigrationError):
            migrate_worker(source, source)

    def test_migrate_unknown_vm(self):
        hv = make_hypervisor(apis=("opencl",))
        with pytest.raises(KeyError):
            hv.migrate_vm("ghost", "opencl")

    def test_downtime_scales_with_buffer_bytes(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-small")
        cl = vm.library("opencl")
        build_state(cl, n=64)
        small = hv.migrate_vm("vm-small", "opencl")

        hv2 = make_hypervisor(apis=("opencl",))
        vm2 = hv2.create_vm("vm-big")
        cl2 = vm2.library("opencl")
        build_state(cl2, n=1 << 18)
        big = hv2.migrate_vm("vm-big", "opencl")
        assert big.snapshot_bytes > small.snapshot_bytes
        assert big.downtime > small.downtime


class TestMVNCMigration:
    """Record/replay also covers the MVNC API: graphs survive moves."""

    def test_graph_survives_migration(self):
        import numpy as np
        from repro.workloads.inception import build_inception_graph
        from repro.mvnc import api as mvnc_api

        hv = make_hypervisor(apis=("mvnc",))
        vm = hv.create_vm("vm-ncs-m")
        mv = vm.library("mvnc")

        device = OutBox()
        assert mv.mvncOpenDevice(None, device) == mvnc_api.MVNC_OK
        blob = build_inception_graph(input_hw=32).serialize()
        graph = OutBox()
        assert mv.mvncAllocateGraph(device.value, graph, blob,
                                    len(blob)) == mvnc_api.MVNC_OK

        old_stick = hv.worker("vm-ncs-m", "mvnc").native_session.devices[0]
        report = hv.migrate_vm("vm-ncs-m", "mvnc")
        new_stick = hv.worker("vm-ncs-m", "mvnc").native_session.devices[0]
        assert new_stick is not old_stick
        assert report.replayed_calls >= 2

        # inference works against the replayed graph, same handle values
        image = np.random.default_rng(5).random(
            (32, 32, 3)).astype(np.float16)
        assert mv.mvncLoadTensor(graph.value, image, image.nbytes,
                                 11) == mvnc_api.MVNC_OK
        out = np.zeros(10, dtype=np.float16)
        length, cookie = OutBox(), OutBox()
        assert mv.mvncGetResult(graph.value, out, out.nbytes, length,
                                cookie) == mvnc_api.MVNC_OK
        assert cookie.value == 11
        assert abs(float(out.sum()) - 1.0) < 0.05

    def test_deallocated_graph_not_replayed(self):
        from repro.workloads.inception import build_inception_graph
        from repro.mvnc import api as mvnc_api

        hv = make_hypervisor(apis=("mvnc",))
        vm = hv.create_vm("vm-ncs-d")
        mv = vm.library("mvnc")
        device = OutBox()
        mv.mvncOpenDevice(None, device)
        blob = build_inception_graph(input_hw=32).serialize()
        graph = OutBox()
        mv.mvncAllocateGraph(device.value, graph, blob, len(blob))
        assert mv.mvncDeallocateGraph(graph.value) == mvnc_api.MVNC_OK
        worker = hv.worker("vm-ncs-d", "mvnc")
        assert graph.value not in worker.handles
        report = hv.migrate_vm("vm-ncs-d", "mvnc")
        new_worker = hv.worker("vm-ncs-d", "mvnc")
        assert graph.value not in new_worker.handles
        assert device.value in new_worker.handles
