"""Tests for record/replay VM migration (§4.3) — stop-the-world and live."""

import json
import os

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.guest.library import RemotingError
from repro.migration import MigrationAborted, MigrationPolicy
from repro.migration.recorder import CallRecorder
from repro.migration.replayer import MigrationError, migrate_worker
from repro.opencl import types
from repro.remoting.buffers import OutBox
from repro.remoting.codec import Command, Reply
from repro.remoting.xfercache import CachePolicy
from repro.spec.model import RecordKind
from repro.stack import make_hypervisor
from repro.workloads import KMeansWorkload
from repro.workloads.base import open_env

VECTOR_SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}"
)


def command(fn, seq=1, handles=None):
    return Command(seq=seq, vm_id="vm", api="x", function=fn,
                   handles=handles or {})


class TestRecorderObjectTracking:
    def test_creates_recorded(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        assert len(recorder) == 1
        assert recorder.live_created_ids() == {10}

    def test_destroy_prunes_create(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=2),
                        RecordKind.DESTROY)
        assert len(recorder) == 0
        assert recorder.pruned_calls == 1

    def test_destroy_prunes_modifies_of_dead_object(self):
        recorder = CallRecorder()
        recorder.record(command("make"), Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("tweak", handles={"h": 10}), Reply(seq=2),
                        RecordKind.MODIFY)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=3),
                        RecordKind.DESTROY)
        assert len(recorder) == 0

    def test_unrelated_records_survive_destroy(self):
        recorder = CallRecorder()
        recorder.record(command("make", seq=1),
                        Reply(seq=1, new_handles={"h": 10}),
                        RecordKind.CREATE)
        recorder.record(command("make", seq=2),
                        Reply(seq=2, new_handles={"h": 11}),
                        RecordKind.CREATE)
        recorder.record(command("free", handles={"h": 10}), Reply(seq=3),
                        RecordKind.DESTROY)
        assert recorder.live_created_ids() == {11}

    def test_config_calls_recorded(self):
        recorder = CallRecorder()
        recorder.record(command("init"), Reply(seq=1), RecordKind.CONFIG)
        assert len(recorder) == 1

    def test_handle_lists_tracked(self):
        recorder = CallRecorder()
        recorder.record(
            command("makeAll"),
            Reply(seq=1, new_handles={"hs": [20, 21]}),
            RecordKind.CREATE,
        )
        assert recorder.live_created_ids() == {20, 21}


def build_state(cl, n=64):
    """Create context/queue/buffers/program/kernel with known contents."""
    plats = [None]
    cl.clGetPlatformIDs(1, plats, None)
    devs = [None]
    cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
    err = OutBox()
    ctx = cl.clCreateContext(None, 1, devs, None, None, err)
    queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
    data = np.arange(n, dtype=np.float32)
    mem = cl.clCreateBuffer(ctx, types.CL_MEM_COPY_HOST_PTR, 4 * n, data,
                            err)
    prog = cl.clCreateProgramWithSource(ctx, 1, VECTOR_SRC, None, err)
    cl.clBuildProgram(prog, 0, None, "", None, None)
    kernel = cl.clCreateKernel(prog, "vector_add", err)
    return {"ctx": ctx, "queue": queue, "mem": mem, "prog": prog,
            "kernel": kernel, "data": data, "n": n}


class TestWorkerMigration:
    def test_handles_survive_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-m")
        cl = vm.library("opencl")
        state = build_state(cl)
        old_device = hv.worker("vm-m", "opencl").native_session.devices[0]

        report = hv.migrate_vm("vm-m", "opencl")
        assert report.replayed_calls >= 4
        assert report.restored_buffers == 1
        assert report.downtime > 0

        new_device = hv.worker("vm-m", "opencl").native_session.devices[0]
        assert new_device is not old_device

        # the guest continues with its old handle values
        out = np.zeros(state["n"], dtype=np.float32)
        code = cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * state["n"], out,
                                      0, None, None)
        assert code == types.CL_SUCCESS
        assert np.allclose(out, state["data"])

    def test_workload_result_unchanged_by_midrun_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-k")
        cl = vm.library("opencl")
        state = build_state(cl, n=128)
        # mutate the buffer after creation so the snapshot matters
        update = np.full(128, 7.5, dtype=np.float32)
        cl.clEnqueueWriteBuffer(state["queue"], state["mem"], types.CL_TRUE,
                                0, 4 * 128, update, 0, None, None)
        hv.migrate_vm("vm-k", "opencl")
        out = np.zeros(128, dtype=np.float32)
        cl.clEnqueueReadBuffer(state["queue"], state["mem"], types.CL_TRUE,
                               0, 4 * 128, out, 0, None, None)
        assert np.allclose(out, update)

    def test_full_workload_after_migration(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-w")
        cl = vm.library("opencl")
        build_state(cl)
        hv.migrate_vm("vm-w", "opencl")
        result = KMeansWorkload(scale=0.05).run(cl)
        assert result.verified

    def test_released_objects_not_replayed(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-r")
        cl = vm.library("opencl")
        state = build_state(cl)
        err = OutBox()
        extra = cl.clCreateBuffer(state["ctx"], 0, 256, None, err)
        assert cl.clReleaseMemObject(extra) == 0
        cl.clFinish(state["queue"])  # drain async release
        worker = hv.worker("vm-r", "opencl")
        assert extra not in worker.handles
        report = hv.migrate_vm("vm-r", "opencl")
        new_worker = hv.worker("vm-r", "opencl")
        assert extra not in new_worker.handles
        assert state["mem"] in new_worker.handles
        assert report.restored_buffers == 1

    def test_migrate_requires_fresh_target(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-x")
        cl = vm.library("opencl")
        build_state(cl)
        source = hv.worker("vm-x", "opencl")
        with pytest.raises(MigrationError):
            migrate_worker(source, source)

    def test_migrate_unknown_vm(self):
        hv = make_hypervisor(apis=("opencl",))
        with pytest.raises(KeyError):
            hv.migrate_vm("ghost", "opencl")

    def test_downtime_scales_with_buffer_bytes(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-small")
        cl = vm.library("opencl")
        build_state(cl, n=64)
        small = hv.migrate_vm("vm-small", "opencl")

        hv2 = make_hypervisor(apis=("opencl",))
        vm2 = hv2.create_vm("vm-big")
        cl2 = vm2.library("opencl")
        build_state(cl2, n=1 << 18)
        big = hv2.migrate_vm("vm-big", "opencl")
        assert big.snapshot_bytes > small.snapshot_bytes
        assert big.downtime > small.downtime


class TestMVNCMigration:
    """Record/replay also covers the MVNC API: graphs survive moves."""

    def test_graph_survives_migration(self):
        import numpy as np
        from repro.workloads.inception import build_inception_graph
        from repro.mvnc import api as mvnc_api

        hv = make_hypervisor(apis=("mvnc",))
        vm = hv.create_vm("vm-ncs-m")
        mv = vm.library("mvnc")

        device = OutBox()
        assert mv.mvncOpenDevice(None, device) == mvnc_api.MVNC_OK
        blob = build_inception_graph(input_hw=32).serialize()
        graph = OutBox()
        assert mv.mvncAllocateGraph(device.value, graph, blob,
                                    len(blob)) == mvnc_api.MVNC_OK

        old_stick = hv.worker("vm-ncs-m", "mvnc").native_session.devices[0]
        report = hv.migrate_vm("vm-ncs-m", "mvnc")
        new_stick = hv.worker("vm-ncs-m", "mvnc").native_session.devices[0]
        assert new_stick is not old_stick
        assert report.replayed_calls >= 2

        # inference works against the replayed graph, same handle values
        image = np.random.default_rng(5).random(
            (32, 32, 3)).astype(np.float16)
        assert mv.mvncLoadTensor(graph.value, image, image.nbytes,
                                 11) == mvnc_api.MVNC_OK
        out = np.zeros(10, dtype=np.float16)
        length, cookie = OutBox(), OutBox()
        assert mv.mvncGetResult(graph.value, out, out.nbytes, length,
                                cookie) == mvnc_api.MVNC_OK
        assert cookie.value == 11
        assert abs(float(out.sum()) - 1.0) < 0.05

    def test_deallocated_graph_not_replayed(self):
        from repro.workloads.inception import build_inception_graph
        from repro.mvnc import api as mvnc_api

        hv = make_hypervisor(apis=("mvnc",))
        vm = hv.create_vm("vm-ncs-d")
        mv = vm.library("mvnc")
        device = OutBox()
        mv.mvncOpenDevice(None, device)
        blob = build_inception_graph(input_hw=32).serialize()
        graph = OutBox()
        mv.mvncAllocateGraph(device.value, graph, blob, len(blob))
        assert mv.mvncDeallocateGraph(graph.value) == mvnc_api.MVNC_OK
        worker = hv.worker("vm-ncs-d", "mvnc")
        assert graph.value not in worker.handles
        report = hv.migrate_vm("vm-ncs-d", "mvnc")
        new_worker = hv.worker("vm-ncs-d", "mvnc")
        assert graph.value not in new_worker.handles
        assert device.value in new_worker.handles


def live_stack(vm_id, n=64, **vm_kwargs):
    hv = make_hypervisor(apis=("opencl",))
    vm = hv.create_vm(vm_id, **vm_kwargs)
    cl = vm.library("opencl")
    state = build_state(cl, n=n)
    return hv, vm, cl, state


class TestLiveMigration:
    """Iterative pre-copy + frozen cutover: the live upgrade of §4.3."""

    def test_midstream_write_survives_cutover(self):
        hv, vm, cl, state = live_stack("vm-live")
        source = hv.worker("vm-live", "opencl")

        engine = hv.start_live_migration("vm-live", "opencl")
        engine.precopy_round()
        # the guest keeps running mid-migration and dirties device state
        update = np.full(64, 123.0, dtype=np.float32)
        code = cl.clEnqueueWriteBuffer(state["queue"], state["mem"],
                                       types.CL_TRUE, 0, 4 * 64, update,
                                       0, None, None)
        assert code == types.CL_SUCCESS
        engine.precopy_round()
        report = engine.cutover()

        assert not report.aborted
        assert report.mode == "live"
        assert report.rounds == 2
        dest = hv.worker("vm-live", "opencl")
        assert dest is engine.dest and dest is not source
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS
        assert np.allclose(out, update)

    def test_result_identical_to_unmigrated_run(self):
        def run(migrate):
            hv, vm, cl, state = live_stack("vm-ab", n=32)
            engine = None
            if migrate:
                engine = hv.start_live_migration("vm-ab", "opencl")
                engine.precopy_round()
            update = np.linspace(0.0, 1.0, 32).astype(np.float32)
            cl.clEnqueueWriteBuffer(state["queue"], state["mem"],
                                    types.CL_TRUE, 0, 4 * 32, update, 0,
                                    None, None)
            if migrate:
                engine.precopy_round()
                assert not engine.cutover().aborted
            out = np.zeros(32, dtype=np.float32)
            code = cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                          types.CL_TRUE, 0, 4 * 32, out,
                                          0, None, None)
            return code, out.tobytes()

        assert run(True) == run(False)

    def test_kernel_writes_ship_by_content_digest(self):
        """Kernel launches are not recorded (verb-based inference), so
        only the per-round content-digest scan catches their writes."""
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-kd")
        cl = vm.library("opencl")
        env = open_env(cl)
        n = 256
        a = np.arange(n, dtype=np.float32)
        b = np.full(n, 3.0, dtype=np.float32)
        ma = env.buffer(4 * n, host=a)
        mb = env.buffer(4 * n, host=b)
        mc = env.buffer(4 * n)
        kernel = env.kernel(env.program(VECTOR_SRC), "vector_add")
        env.set_args(kernel, ma, mb, mc, n)

        engine = hv.start_live_migration("vm-kd", "opencl")
        assert engine.precopy_round() == 0  # replay staged everything
        env.launch(kernel, [n])
        env.finish()
        # exactly the kernel-dirtied buffer ships, nothing else
        assert engine.precopy_round() == 4 * n
        report = engine.cutover()
        assert not report.aborted

        out = env.read(mc, 4 * n)
        assert np.allclose(out, a + b)

    def test_handle_ids_preserved_across_cutover(self):
        hv, vm, cl, state = live_stack("vm-ids")
        source = hv.worker("vm-ids", "opencl")
        ids_before = set(source.handles.snapshot_ids())
        report = hv.live_migrate_vm("vm-ids", "opencl")
        assert not report.aborted
        dest = hv.worker("vm-ids", "opencl")
        assert dest.handles.snapshot_ids() == ids_before
        # the guest's stashed handle values still work post-cutover
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS

    def test_downtime_beats_stop_the_world(self):
        n = 1 << 18  # 1 MiB of device state

        hv_live, _, _, _ = live_stack("vm-big-live", n=n)
        live = hv_live.live_migrate_vm("vm-big-live", "opencl")

        hv_stw, _, _, _ = live_stack("vm-big-stw", n=n)
        stw = hv_stw.migrate_vm("vm-big-stw", "opencl")

        assert live.downtime > 0
        assert live.downtime < live.total_time
        # the frozen window no longer pays for the bulk state transfer
        assert live.downtime <= 0.25 * stw.downtime
        assert live.snapshot_bytes >= 4 * n

    def test_stall_charged_to_first_posthaw_call(self):
        hv, vm, cl, state = live_stack("vm-stall", n=1 << 16)
        report = hv.live_migrate_vm("vm-stall", "opencl")
        assert not report.aborted
        # the guest clock is behind the cutover point; its next call
        # absorbs the frozen window as visible router stall
        out = np.zeros(4, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 16, out, 0,
                                      None, None) == types.CL_SUCCESS
        metrics = hv.router.metrics_for("vm-stall")
        assert metrics.migration_stall > 0
        assert "vm-stall" not in hv.router.frozen_vms

    def test_destroy_churn_during_migration_is_replayed(self):
        hv, vm, cl, state = live_stack("vm-churn-live")
        err = OutBox()
        temp = cl.clCreateBuffer(state["ctx"], 0, 4096, None, err)
        engine = hv.start_live_migration("vm-churn-live", "opencl")
        engine.precopy_round()  # replays the temp's create onto the dest
        assert temp in engine.dest.handles
        assert cl.clReleaseMemObject(temp) == 0
        cl.clFinish(state["queue"])  # drain the async release
        engine.precopy_round()  # forwards the destroy via the listener
        assert temp not in engine.dest.handles
        report = engine.cutover()
        assert not report.aborted
        dest = hv.worker("vm-churn-live", "opencl")
        assert temp not in dest.handles
        assert state["mem"] in dest.handles

    def test_precopy_elides_store_known_bytes(self):
        """Dirty contents the per-VM transfer store has already seen
        cross the migration channel as content-addressed refs."""
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-elide",
                          cache_policy=CachePolicy(min_bytes=64))
        cl = vm.library("opencl")
        env = open_env(cl)
        n = 256
        a = np.arange(n, dtype=np.float32)
        b = np.full(n, 3.0, dtype=np.float32)
        ma = env.buffer(4 * n, host=a)
        mb = env.buffer(4 * n, host=b)
        mc = env.buffer(4 * n)
        md = env.buffer(4 * n)
        # seed the store with the bytes the kernel is about to produce
        env.write(md, (a + b).astype(np.float32))
        kernel = env.kernel(env.program(VECTOR_SRC), "vector_add")
        env.set_args(kernel, ma, mb, mc, n)

        engine = hv.start_live_migration("vm-elide", "opencl")
        engine.precopy_round()
        env.launch(kernel, [n])
        env.finish()
        shipped = engine.precopy_round()
        assert shipped == 4 * n  # payload accounting is unchanged...
        # ...but the wire carried a ref instead of the payload
        assert engine.report.elided_bytes == \
            4 * n - engine.policy.ref_bytes
        assert not engine.cutover().aborted
        assert np.allclose(env.read(mc, 4 * n), a + b)

    def test_admin_report_exposes_migrations(self):
        hv, vm, cl, state = live_stack("vm-admin")
        hv.live_migrate_vm("vm-admin", "opencl")
        report = hv.admin_report()
        per_vm = report["vm-admin"]["migration"]
        assert per_vm["count"] == 1
        assert per_vm["aborted"] == 0
        assert per_vm["downtime"] > 0
        totals = report["_migration"]
        assert totals["count"] == 1

    def test_finished_engine_rejects_further_driving(self):
        hv, vm, cl, state = live_stack("vm-done")
        engine = hv.start_live_migration("vm-done", "opencl")
        engine.precopy_round()
        engine.cutover()
        with pytest.raises(MigrationError):
            engine.precopy_round()
        with pytest.raises(MigrationError):
            engine.cutover()

    def test_crashed_source_rejected(self):
        hv, vm, cl, state = live_stack("vm-dead")
        hv._on_worker_lost("vm-dead", "opencl", "induced crash")
        with pytest.raises(MigrationError):
            hv.start_live_migration("vm-dead", "opencl")

    def test_unknown_vm_rejected(self):
        hv = make_hypervisor(apis=("opencl",))
        with pytest.raises(KeyError):
            hv.start_live_migration("ghost", "opencl")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(max_rounds=0)
        with pytest.raises(ValueError):
            MigrationPolicy(channel_bps=0)
        with pytest.raises(ValueError):
            MigrationPolicy(convergence_bytes=-1)
        with pytest.raises(ValueError):
            MigrationPolicy(max_frame_retries=-1)


class TestLiveMigrationAbort:
    """Abort is clean: the source keeps serving, the dest is scrubbed."""

    def test_manual_abort_leaves_source_serving(self):
        hv, vm, cl, state = live_stack("vm-abort")
        source = hv.worker("vm-abort", "opencl")
        engine = hv.start_live_migration("vm-abort", "opencl")
        engine.precopy_round()
        report = engine.abort("operator changed their mind")
        assert report.aborted and engine.aborted
        assert hv.worker("vm-abort", "opencl") is source
        assert engine.dest.crashed is not None
        assert hv.migrations[-1] is report
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS
        assert np.allclose(out, state["data"])

    def test_lost_cutover_frame_aborts_cleanly(self):
        hv, vm, cl, state = live_stack("vm-lost")
        source = hv.worker("vm-lost", "opencl")
        # arm the migration channel only (no guest-transport wrapping):
        # every migration frame drops until the retry budget dies
        hv.fault_plan = FaultPlan(seed=7, drop=1.0)
        engine = hv.start_live_migration("vm-lost", "opencl")
        engine.precopy_round()  # ships nothing; no frames to drop
        with pytest.raises(MigrationAborted) as excinfo:
            engine.cutover()
        assert "cutover" in str(excinfo.value)
        assert hv.worker("vm-lost", "opencl") is source
        assert "vm-lost" not in hv.router.frozen_vms
        assert hv.migrations[-1].aborted
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS
        assert np.allclose(out, state["data"])

    def test_dest_crash_during_replay_aborts(self):
        hv, vm, cl, state = live_stack("vm-crash")
        source = hv.worker("vm-crash", "opencl")
        plan = FaultPlan(seed=9, crash_on_call=3)
        engine = hv.start_live_migration("vm-crash", "opencl")
        engine.dest.fault_hook = plan.worker_hook()
        with pytest.raises(MigrationAborted):
            engine.precopy_round()
        assert hv.worker("vm-crash", "opencl") is source
        assert hv.migrations[-1].aborted
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS

    def test_frozen_vm_rejected_then_thaw_stalls(self):
        hv, vm, cl, state = live_stack("vm-frozen")
        hv.router.freeze_vm("vm-frozen", "test freeze")
        update = np.zeros(64, dtype=np.float32)
        with pytest.raises(RemotingError):
            cl.clEnqueueWriteBuffer(state["queue"], state["mem"],
                                    types.CL_TRUE, 0, 4 * 64, update, 0,
                                    None, None)
        metrics = hv.router.metrics_for("vm-frozen")
        assert metrics.frozen_rejected == 1
        hv.router.thaw_vm("vm-frozen", resume_at=vm.clock.now + 1.0)
        assert cl.clEnqueueWriteBuffer(state["queue"], state["mem"],
                                       types.CL_TRUE, 0, 4 * 64, update,
                                       0, None, None) == types.CL_SUCCESS
        assert metrics.migration_stall > 0.9


class TestMVNCLiveMigration:
    """The live protocol is API-agnostic: MVNC graphs move too."""

    def test_graph_survives_live_migration(self):
        from repro.workloads.inception import build_inception_graph
        from repro.mvnc import api as mvnc_api

        hv = make_hypervisor(apis=("mvnc",))
        vm = hv.create_vm("vm-ncs-live")
        mv = vm.library("mvnc")

        device = OutBox()
        assert mv.mvncOpenDevice(None, device) == mvnc_api.MVNC_OK
        blob = build_inception_graph(input_hw=32).serialize()
        graph = OutBox()
        assert mv.mvncAllocateGraph(device.value, graph, blob,
                                    len(blob)) == mvnc_api.MVNC_OK

        old_stick = hv.worker("vm-ncs-live", "mvnc").native_session.devices[0]
        report = hv.live_migrate_vm("vm-ncs-live", "mvnc")
        assert not report.aborted and report.mode == "live"
        new_stick = hv.worker("vm-ncs-live", "mvnc").native_session.devices[0]
        assert new_stick is not old_stick

        image = np.random.default_rng(5).random(
            (32, 32, 3)).astype(np.float16)
        assert mv.mvncLoadTensor(graph.value, image, image.nbytes,
                                 17) == mvnc_api.MVNC_OK
        out = np.zeros(10, dtype=np.float16)
        length, cookie = OutBox(), OutBox()
        assert mv.mvncGetResult(graph.value, out, out.nbytes, length,
                                cookie) == mvnc_api.MVNC_OK
        assert cookie.value == 17
        assert abs(float(out.sum()) - 1.0) < 0.05


class TestMigrationSeedGaps:
    """Backfill for the seed's stop-the-world path."""

    def test_partial_replay_surfaces_migration_error(self):
        hv, vm, cl, state = live_stack("vm-tamper")
        worker = hv.worker("vm-tamper", "opencl")
        # corrupt one log entry: replay cannot reconstruct the state
        worker.recorder.log[2].command.function = "clTotallyBogus"
        with pytest.raises(MigrationError):
            hv.migrate_vm("vm-tamper", "opencl")

    def test_partial_live_replay_aborts_to_source(self):
        hv, vm, cl, state = live_stack("vm-tamper-live")
        source = hv.worker("vm-tamper-live", "opencl")
        source.recorder.log[2].command.function = "clTotallyBogus"
        with pytest.raises(MigrationAborted):
            hv.live_migrate_vm("vm-tamper-live", "opencl")
        assert hv.worker("vm-tamper-live", "opencl") is source
        out = np.zeros(64, dtype=np.float32)
        assert cl.clEnqueueReadBuffer(state["queue"], state["mem"],
                                      types.CL_TRUE, 0, 4 * 64, out, 0,
                                      None, None) == types.CL_SUCCESS

    def test_log_stays_minimal_after_destroy_churn(self):
        hv, vm, cl, state = live_stack("vm-minimal")
        worker = hv.worker("vm-minimal", "opencl")
        baseline = len(worker.recorder)
        live_ids = set(worker.recorder.live_created_ids())
        err = OutBox()
        for _ in range(50):
            temp = cl.clCreateBuffer(state["ctx"], 0, 4096, None, err)
            cl.clReleaseMemObject(temp)
        cl.clFinish(state["queue"])
        assert len(worker.recorder) == baseline
        assert worker.recorder.pruned_calls >= 50
        assert worker.recorder.live_created_ids() == live_ids


class TestFigure5BitIdentity:
    def test_no_migration_reproduces_stored_figure5(self):
        """With the live-migration machinery present but unused, the
        default stack reproduces BENCH_figure5.json bit for bit."""
        from repro.harness import run_figure5

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_figure5.json")
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        rows = run_figure5()
        got = {
            row.name: (row.native.runtime, row.virtualized.runtime)
            for row in rows
        }
        want = {
            row["name"]: (row["native_runtime"], row["virtualized_runtime"])
            for row in stored["rows"]
        }
        assert got == want
