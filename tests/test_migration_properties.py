"""Property-based fidelity: live migration is invisible to the guest.

Random guest programs (create/write/read/release over device buffers)
run twice — once plain, once with a live migration started at a random
point mid-stream and cut over before the final reads.  Every
guest-visible outcome must be identical: per-op results, final buffer
contents, and the worker's live handle set.

Soak pattern mirrors the transfer-cache property suite: the
``CAVA_MIG_EXAMPLES`` environment variable scales the example count
(default 25; CI soaks run hundreds).
"""

import os

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stack import make_hypervisor
from repro.workloads.base import open_env

EXAMPLES = int(os.environ.get("CAVA_MIG_EXAMPLES", "25"))

#: words per buffer — small keeps programs fast; fidelity does not care
BUF_WORDS = 16
MAX_OPS = 24


@st.composite
def programs(draw):
    """A random op list plus the index the migration starts at."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("create")),
            st.tuples(st.just("write"), st.integers(0, 7),
                      st.integers(0, 255)),
            st.tuples(st.just("read"), st.integers(0, 7)),
            st.tuples(st.just("release"), st.integers(0, 7)),
        ),
        min_size=1, max_size=MAX_OPS,
    ))
    cut = draw(st.integers(0, len(ops)))
    return ops, cut


class _Harness:
    """One guest VM executing the op DSL, collecting visible outcomes."""

    def __init__(self, vm_id):
        self.hv = make_hypervisor(apis=("opencl",))
        self.vm = self.hv.create_vm(vm_id)
        self.vm_id = vm_id
        self.cl = self.vm.library("opencl")
        self.env = open_env(self.cl)
        #: every buffer ever created: [handle, live?]
        self.bufs = []
        self.trace = []

    def _pick(self, seed):
        if not self.bufs:
            return None
        index = seed % len(self.bufs)
        mem, live = self.bufs[index]
        return (index, mem) if live else None

    def apply(self, op):
        kind = op[0]
        if kind == "create":
            mem = self.env.buffer(4 * BUF_WORDS)
            self.bufs.append([mem, True])
            self.trace.append(("created", len(self.bufs) - 1))
        elif kind == "write":
            picked = self._pick(op[1])
            if picked is None:
                self.trace.append(("skip",))
                return
            index, mem = picked
            data = np.full(BUF_WORDS, float(op[2]), dtype=np.float32)
            self.env.write(mem, data)
            self.trace.append(("wrote", index, op[2]))
        elif kind == "read":
            picked = self._pick(op[1])
            if picked is None:
                self.trace.append(("skip",))
                return
            index, mem = picked
            out = self.env.read(mem, 4 * BUF_WORDS)
            self.trace.append(("read", index, out.tobytes()))
        elif kind == "release":
            picked = self._pick(op[1])
            if picked is None:
                self.trace.append(("skip",))
                return
            index, mem = picked
            assert self.cl.clReleaseMemObject(mem) == 0
            self.cl.clFinish(self.env.queue)
            self.bufs[index][1] = False
            self.trace.append(("released", index))

    def finalize(self):
        final = []
        for index, (mem, live) in enumerate(self.bufs):
            if live:
                final.append(
                    (index, self.env.read(mem, 4 * BUF_WORDS).tobytes()))
        worker = self.hv.worker(self.vm_id, "opencl")
        handles = frozenset(worker.handles.snapshot_ids())
        return tuple(self.trace), tuple(final), handles


def run_program(ops, cut, migrate):
    harness = _Harness("vm-prop")
    engine = None
    for index, op in enumerate(ops):
        if migrate and index == cut:
            engine = harness.hv.start_live_migration("vm-prop", "opencl")
            engine.precopy_round()
        harness.apply(op)
    if migrate:
        if engine is None:  # cut == len(ops)
            engine = harness.hv.start_live_migration("vm-prop", "opencl")
            engine.precopy_round()
        engine.precopy_round()
        report = engine.cutover()
        assert not report.aborted
    return harness.finalize()


class TestMigrationInvisible:
    @settings(max_examples=EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_migrated_run_matches_unmigrated_run(self, program):
        ops, cut = program
        plain = run_program(ops, cut, migrate=False)
        migrated = run_program(ops, cut, migrate=True)
        assert migrated == plain

    @settings(max_examples=EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_migration_reports_are_sane(self, program):
        ops, cut = program
        harness = _Harness("vm-prop")
        for op in ops[:cut]:
            harness.apply(op)
        engine = harness.hv.start_live_migration("vm-prop", "opencl")
        engine.precopy_round()
        for op in ops[cut:]:
            harness.apply(op)
        engine.precopy_round()
        report = engine.cutover()
        assert not report.aborted
        assert report.downtime > 0
        assert report.downtime <= report.total_time
        assert report.rounds == 2
        # the destination serves and every live buffer reads back
        harness.finalize()
