"""Tests for the simulated Movidius NCS: graph format, executor, API."""

import numpy as np
import pytest

from repro.mvnc import api
from repro.mvnc.device import NCSDeviceSpec, SimulatedNCS
from repro.mvnc.graph import (
    CONV,
    DENSE,
    FLATTEN,
    CONCAT_BLOCK,
    POOL_AVG,
    POOL_MAX,
    RELU,
    SOFTMAX,
    GraphDefinition,
    GraphError,
    GraphExecutor,
    Layer,
    estimate_flops,
)
from repro.remoting.buffers import OutBox


def tiny_graph(num_classes=4):
    """8x8x1 input → conv → relu → pool → flatten → dense → softmax."""
    rng = np.random.default_rng(7)
    return GraphDefinition(
        name="tiny",
        input_shape=(8, 8, 1),
        layers=[
            Layer(CONV, {"stride": 1},
                  {"w": rng.normal(size=(3, 3, 1, 4)).astype(np.float16),
                   "b": np.zeros(4, dtype=np.float16)}),
            Layer(RELU),
            Layer(POOL_MAX, {"size": 2, "stride": 2}),
            Layer(FLATTEN),
            Layer(DENSE, {}, {
                "w": rng.normal(size=(3 * 3 * 4, num_classes)).astype(np.float16),
                "b": np.zeros(num_classes, dtype=np.float16)}),
            Layer(SOFTMAX),
        ],
    )


class TestGraphFormat:
    def test_serialize_round_trip(self):
        graph = tiny_graph()
        again = GraphDefinition.deserialize(graph.serialize())
        assert again.name == "tiny"
        assert again.input_shape == (8, 8, 1)
        assert len(again.layers) == 6
        assert again.layers[0].weights["w"].shape == (3, 3, 1, 4)

    def test_bad_magic_rejected(self):
        with pytest.raises(GraphError):
            GraphDefinition.deserialize(b"not a graph at all")

    def test_weights_stored_fp16(self):
        graph = tiny_graph()
        again = GraphDefinition.deserialize(graph.serialize())
        assert again.layers[0].weights["w"].dtype == np.float16


class TestExecutor:
    def test_softmax_output_sums_to_one(self):
        graph = tiny_graph()
        result = GraphExecutor(graph).run(
            np.random.default_rng(0).normal(size=(8, 8, 1)).astype(np.float16)
        )
        assert result.output.shape == (4,)
        assert float(result.output.sum()) == pytest.approx(1.0, abs=1e-2)

    def test_flops_counted(self):
        graph = tiny_graph()
        result = GraphExecutor(graph).run(
            np.zeros((8, 8, 1), dtype=np.float16)
        )
        assert result.flops > 2 * 6 * 6 * 9 * 4  # at least the conv

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            GraphExecutor(tiny_graph()).run(np.zeros((4, 4, 1)))

    def test_conv_channel_mismatch_names_layer(self):
        graph = GraphDefinition(
            name="bad", input_shape=(8, 8, 3),
            layers=[Layer(CONV, {}, {"w": np.zeros((3, 3, 1, 2),
                                                   dtype=np.float16)})],
        )
        with pytest.raises(GraphError, match="layer 0"):
            GraphExecutor(graph).run(np.zeros((8, 8, 3), dtype=np.float16))

    def test_dense_needs_flat_input(self):
        graph = GraphDefinition(
            name="bad", input_shape=(4, 4, 1),
            layers=[Layer(DENSE, {}, {"w": np.zeros((16, 2),
                                                    dtype=np.float16)})],
        )
        with pytest.raises(GraphError):
            GraphExecutor(graph).run(np.zeros((4, 4, 1), dtype=np.float16))

    def test_avg_pool(self):
        graph = GraphDefinition(
            name="pool", input_shape=(4, 4, 1),
            layers=[Layer(POOL_AVG, {"size": 2, "stride": 2})],
        )
        x = np.arange(16, dtype=np.float16).reshape(4, 4, 1)
        out = GraphExecutor(graph).run(x).output
        assert out.shape == (2, 2, 1)
        assert float(out[0, 0, 0]) == pytest.approx(2.5)

    def test_inception_block_concatenates_branches(self):
        rng = np.random.default_rng(1)
        graph = GraphDefinition(
            name="incept", input_shape=(8, 8, 2),
            layers=[Layer(
                CONCAT_BLOCK,
                {"branches": ["b1x1", "b3x3"]},
                {
                    "b1x1_w": rng.normal(size=(1, 1, 2, 3)).astype(np.float16),
                    "b3x3_w": rng.normal(size=(3, 3, 2, 5)).astype(np.float16),
                },
            )],
        )
        out = GraphExecutor(graph).run(
            rng.normal(size=(8, 8, 2)).astype(np.float16)
        ).output
        assert out.shape == (8, 8, 8)  # 3 + 5 channels, SAME padding

    def test_unknown_layer_kind(self):
        graph = GraphDefinition(name="x", input_shape=(2, 2, 1),
                                layers=[Layer("teleport")])
        with pytest.raises(GraphError):
            GraphExecutor(graph).run(np.zeros((2, 2, 1), dtype=np.float16))

    def test_estimate_flops_matches_run(self):
        graph = tiny_graph()
        estimate = estimate_flops(graph)
        run = GraphExecutor(graph).run(
            np.ones((8, 8, 1), dtype=np.float16)).flops
        assert estimate == run


@pytest.fixture()
def ncs():
    with api.ncs_session([SimulatedNCS()]) as sess:
        yield sess


def open_device(sess):
    handle = OutBox()
    assert api.mvncOpenDevice(None, handle) == api.MVNC_OK
    return handle.value


def allocate(sess, device, graph=None):
    blob = (graph or tiny_graph()).serialize()
    handle = OutBox()
    code = api.mvncAllocateGraph(device, handle, blob, len(blob))
    assert code == api.MVNC_OK
    return handle.value


class TestDeviceLifecycle:
    def test_get_device_name(self, ncs):
        name = bytearray(64)
        assert api.mvncGetDeviceName(0, name, 64) == api.MVNC_OK
        assert b"Movidius" in bytes(name)

    def test_get_device_name_bad_index(self, ncs):
        assert api.mvncGetDeviceName(5, bytearray(8), 8) == \
            api.MVNC_DEVICE_NOT_FOUND

    def test_open_close(self, ncs):
        device = open_device(ncs)
        assert device.opened
        assert api.mvncCloseDevice(device) == api.MVNC_OK
        assert not device.opened

    def test_double_open_busy(self, ncs):
        open_device(ncs)
        box = OutBox()
        assert api.mvncOpenDevice(None, box) == api.MVNC_BUSY

    def test_close_unopened(self, ncs):
        assert api.mvncCloseDevice(ncs.devices[0]) == api.MVNC_INVALID_PARAMETERS

    def test_open_charges_boot_time(self, ncs):
        before = ncs.clock.now
        open_device(ncs)
        assert ncs.clock.now - before >= 2e-3


class TestGraphLifecycle:
    def test_allocate_and_deallocate(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        assert device.graph_bytes_used > 0
        assert api.mvncDeallocateGraph(graph) == api.MVNC_OK
        assert device.graph_bytes_used == 0

    def test_allocate_bad_blob(self, ncs):
        device = open_device(ncs)
        box = OutBox()
        assert api.mvncAllocateGraph(device, box, b"garbage", 7) == \
            api.MVNC_UNSUPPORTED_GRAPH_FILE

    def test_allocate_on_closed_device(self, ncs):
        device = ncs.devices[0]
        box = OutBox()
        blob = tiny_graph().serialize()
        assert api.mvncAllocateGraph(device, box, blob, len(blob)) == \
            api.MVNC_GONE

    def test_allocate_out_of_memory(self):
        spec = NCSDeviceSpec(graph_memory_bytes=64)
        with api.ncs_session([SimulatedNCS(spec)]) as sess:
            device = open_device(sess)
            blob = tiny_graph().serialize()
            box = OutBox()
            assert api.mvncAllocateGraph(device, box, blob, len(blob)) == \
                api.MVNC_OUT_OF_MEMORY

    def test_double_deallocate(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        api.mvncDeallocateGraph(graph)
        assert api.mvncDeallocateGraph(graph) == api.MVNC_INVALID_PARAMETERS


class TestInference:
    def _infer(self, ncs, graph):
        x = np.random.default_rng(3).normal(size=(8, 8, 1)).astype(np.float16)
        assert api.mvncLoadTensor(graph, x, x.nbytes, 77) == api.MVNC_OK
        out = np.zeros(4, dtype=np.float16)
        out_len = OutBox()
        user = OutBox()
        assert api.mvncGetResult(graph, out, out.nbytes, out_len, user) == \
            api.MVNC_OK
        return out, out_len.value, user.value

    def test_load_and_get_result(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        out, length, user = self._infer(ncs, graph)
        assert length == 8
        assert user == 77
        assert float(out.sum()) == pytest.approx(1.0, abs=1e-2)

    def test_get_result_without_load(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        assert api.mvncGetResult(graph, np.zeros(4, np.float16), 8, OutBox(),
                                 OutBox()) == api.MVNC_NO_DATA

    def test_wrong_input_size(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        bad = np.zeros(10, dtype=np.float16)
        assert api.mvncLoadTensor(graph, bad, bad.nbytes, None) == \
            api.MVNC_INVALID_PARAMETERS

    def test_output_capacity_too_small(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        x = np.zeros((8, 8, 1), dtype=np.float16)
        api.mvncLoadTensor(graph, x, x.nbytes, None)
        code = api.mvncGetResult(graph, np.zeros(1, np.float16), 2, OutBox(),
                                 OutBox())
        assert code == api.MVNC_INVALID_PARAMETERS
        # result must still be retrievable afterwards
        out = np.zeros(4, dtype=np.float16)
        assert api.mvncGetResult(graph, out, 8, OutBox(), OutBox()) == \
            api.MVNC_OK

    def test_fifo_ordering(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        x = np.zeros((8, 8, 1), dtype=np.float16)
        api.mvncLoadTensor(graph, x, x.nbytes, 1)
        api.mvncLoadTensor(graph, x, x.nbytes, 2)
        user = OutBox()
        out = np.zeros(4, dtype=np.float16)
        api.mvncGetResult(graph, out, 8, OutBox(), user)
        assert user.value == 1
        api.mvncGetResult(graph, out, 8, OutBox(), user)
        assert user.value == 2

    def test_inference_advances_clock(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        before = ncs.clock.now
        self._infer(ncs, graph)
        assert ncs.clock.now > before


class TestOptions:
    def test_output_size_option(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        data = OutBox()
        assert api.mvncGetGraphOption(
            graph, api.MVNC_GRAPH_OPTION_OUTPUT_SIZE, data, OutBox()
        ) == api.MVNC_OK
        assert data.value == 8  # 4 classes × fp16

    def test_time_taken_accumulates(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        data = OutBox()
        api.mvncGetGraphOption(graph, api.MVNC_GRAPH_OPTION_TIME_TAKEN, data,
                               OutBox())
        assert data.value == 0.0
        x = np.zeros((8, 8, 1), dtype=np.float16)
        api.mvncLoadTensor(graph, x, x.nbytes, None)
        api.mvncGetResult(graph, np.zeros(4, np.float16), 8, OutBox(),
                          OutBox())
        api.mvncGetGraphOption(graph, api.MVNC_GRAPH_OPTION_TIME_TAKEN, data,
                               OutBox())
        assert data.value > 0.0

    def test_global_log_level(self, ncs):
        assert api.mvncSetGlobalOption(api.MVNC_GLOBAL_OPTION_LOG_LEVEL, 2,
                                       4) == api.MVNC_OK
        data = OutBox()
        api.mvncGetGlobalOption(api.MVNC_GLOBAL_OPTION_LOG_LEVEL, data,
                                OutBox())
        assert data.value == 2

    def test_device_thermal_option(self, ncs):
        device = open_device(ncs)
        data = OutBox()
        assert api.mvncGetDeviceOption(
            device, api.MVNC_DEVICE_OPTION_THERMAL_STATS, data, OutBox()
        ) == api.MVNC_OK
        assert data.value > 0

    def test_readonly_graph_option_rejected(self, ncs):
        device = open_device(ncs)
        graph = allocate(ncs, device)
        assert api.mvncSetGraphOption(
            graph, api.MVNC_GRAPH_OPTION_TIME_TAKEN, 1, 4
        ) == api.MVNC_INVALID_PARAMETERS

    def test_function_count(self):
        assert len(api.FUNCTION_NAMES) == 13
        for name in api.FUNCTION_NAMES:
            assert callable(getattr(api, name))
