"""Tests for the 39-function C-shaped OpenCL API layer."""

import numpy as np
import pytest

from repro.opencl import api, session, types
from repro.remoting.buffers import OutBox

SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}\n"
    "__kernel void vector_scale(__global float* x, float alpha, int n) {}\n"
)


@pytest.fixture()
def env():
    with session() as sess:
        err = OutBox()
        plats = [None]
        api.clGetPlatformIDs(1, plats, None)
        devs = [None]
        api.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        ctx = api.clCreateContext(None, 1, devs, None, None, err)
        assert err.value == types.CL_SUCCESS
        queue = api.clCreateCommandQueue(ctx, devs[0], 0, err)
        assert err.value == types.CL_SUCCESS
        yield {
            "session": sess,
            "platform": plats[0],
            "device": devs[0],
            "ctx": ctx,
            "queue": queue,
        }


class TestPlatformDevice:
    def test_function_count_is_39(self):
        assert len(api.FUNCTION_NAMES) == 39
        for name in api.FUNCTION_NAMES:
            assert callable(getattr(api, name))

    def test_get_platform_ids_count_only(self, env):
        box = OutBox()
        assert api.clGetPlatformIDs(0, None, box) == types.CL_SUCCESS
        assert box.value == 1

    def test_get_platform_ids_requires_some_output(self, env):
        assert api.clGetPlatformIDs(0, None, None) == types.CL_INVALID_VALUE

    def test_platform_info_name(self, env):
        buf = bytearray(128)
        size_ret = OutBox()
        code = api.clGetPlatformInfo(env["platform"], types.CL_PLATFORM_NAME,
                                     128, buf, size_ret)
        assert code == types.CL_SUCCESS
        name = bytes(buf[:size_ret.value - 1]).decode()
        assert "AvA" in name

    def test_platform_info_too_small(self, env):
        buf = bytearray(2)
        code = api.clGetPlatformInfo(env["platform"], types.CL_PLATFORM_NAME,
                                     2, buf, None)
        assert code == types.CL_INVALID_VALUE

    def test_platform_info_bad_param(self, env):
        assert api.clGetPlatformInfo(env["platform"], 0xDEAD, 0, None,
                                     OutBox()) == types.CL_INVALID_VALUE

    def test_device_ids_type_filter(self, env):
        box = OutBox()
        code = api.clGetDeviceIDs(env["platform"], types.CL_DEVICE_TYPE_CPU,
                                  0, None, box)
        assert code == types.CL_DEVICE_NOT_FOUND

    def test_device_info_numeric(self, env):
        buf = bytearray(8)
        code = api.clGetDeviceInfo(env["device"],
                                   types.CL_DEVICE_MAX_COMPUTE_UNITS, 8, buf,
                                   None)
        assert code == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == \
            env["device"].spec.compute_units

    def test_invalid_device_rejected(self, env):
        assert api.clGetDeviceInfo("junk", types.CL_DEVICE_NAME, 0, None,
                                   OutBox()) == types.CL_INVALID_DEVICE


class TestContextQueue:
    def test_create_context_no_devices(self, env):
        err = OutBox()
        assert api.clCreateContext(None, 0, None, None, None, err) is None
        assert err.value == types.CL_INVALID_VALUE

    def test_retain_release_context(self, env):
        assert api.clRetainContext(env["ctx"]) == types.CL_SUCCESS
        assert api.clReleaseContext(env["ctx"]) == types.CL_SUCCESS
        buf = bytearray(8)
        assert api.clGetContextInfo(env["ctx"],
                                    types.CL_CONTEXT_REFERENCE_COUNT, 8, buf,
                                    None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 1

    def test_queue_info(self, env):
        buf = bytearray(8)
        assert api.clGetCommandQueueInfo(
            env["queue"], types.CL_QUEUE_REFERENCE_COUNT, 8, buf, None
        ) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 1

    def test_release_queue_finishes(self, env):
        assert api.clReleaseCommandQueue(env["queue"]) == types.CL_SUCCESS

    def test_bad_queue(self, env):
        assert api.clFinish(42) == types.CL_INVALID_COMMAND_QUEUE


class TestBuffers:
    def test_create_with_copy_host_ptr(self, env):
        err = OutBox()
        data = np.arange(8, dtype=np.float32)
        mem = api.clCreateBuffer(
            env["ctx"], types.CL_MEM_COPY_HOST_PTR, 32, data, err
        )
        assert err.value == types.CL_SUCCESS
        out = np.zeros(8, dtype=np.float32)
        api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0, 32, out)
        assert (out == data).all()

    def test_copy_host_ptr_requires_host_ptr(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], types.CL_MEM_COPY_HOST_PTR, 32,
                                 None, err)
        assert mem is None
        assert err.value == types.CL_INVALID_VALUE

    def test_write_read_round_trip(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 16, None, err)
        payload = np.arange(4, dtype=np.int32)
        assert api.clEnqueueWriteBuffer(env["queue"], mem, types.CL_TRUE, 0,
                                        16, payload) == types.CL_SUCCESS
        out = np.zeros(4, dtype=np.int32)
        assert api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0,
                                       16, out) == types.CL_SUCCESS
        assert (out == payload).all()

    def test_copy_buffer(self, env):
        err = OutBox()
        src = api.clCreateBuffer(env["ctx"], 0, 8, None, err)
        dst = api.clCreateBuffer(env["ctx"], 0, 8, None, err)
        api.clEnqueueWriteBuffer(env["queue"], src, types.CL_TRUE, 0, 8,
                                 b"abcdefgh")
        assert api.clEnqueueCopyBuffer(env["queue"], src, dst, 0, 0,
                                       8) == types.CL_SUCCESS
        out = bytearray(8)
        api.clEnqueueReadBuffer(env["queue"], dst, types.CL_TRUE, 0, 8, out)
        assert out == b"abcdefgh"

    def test_fill_buffer(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 8, None, err)
        assert api.clEnqueueFillBuffer(env["queue"], mem, b"\x05", 1, 0,
                                       8) == types.CL_SUCCESS
        out = bytearray(8)
        api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0, 8, out)
        assert out == b"\x05" * 8

    def test_mem_object_info(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], types.CL_MEM_READ_ONLY, 64,
                                 None, err)
        buf = bytearray(8)
        assert api.clGetMemObjectInfo(mem, types.CL_MEM_SIZE, 8, buf,
                                      None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 64

    def test_release_mem_object(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 64, None, err)
        assert api.clReleaseMemObject(mem) == types.CL_SUCCESS
        assert api.clReleaseMemObject(mem) == types.CL_INVALID_MEM_OBJECT

    def test_create_image(self, env):
        err = OutBox()
        img = api.clCreateImage(env["ctx"], 0, types.CL_RGBA, types.CL_FLOAT,
                                16, 16, None, err)
        assert err.value == types.CL_SUCCESS
        assert img.size == 16 * 16 * 4 * 4
        assert img.kind == types.CL_MEM_OBJECT_IMAGE2D

    def test_create_image_bad_format(self, env):
        err = OutBox()
        assert api.clCreateImage(env["ctx"], 0, 0xBAD, types.CL_FLOAT, 4, 4,
                                 None, err) is None
        assert err.value == types.CL_INVALID_IMAGE_FORMAT_DESCRIPTOR

    def test_wait_list_validation(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 8, None, err)
        out = bytearray(8)
        code = api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0, 8,
                                       out, 2, None, None)
        assert code == types.CL_INVALID_EVENT_WAIT_LIST


class TestProgramsKernels:
    def _built_program(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(env["ctx"], 1, SRC, None, err)
        assert err.value == types.CL_SUCCESS
        assert api.clBuildProgram(prog, 1, [env["device"]], "", None,
                                  None) == types.CL_SUCCESS
        return prog

    def test_build_and_kernel_names(self, env):
        prog = self._built_program(env)
        buf = bytearray(256)
        size_ret = OutBox()
        assert api.clGetProgramInfo(prog, types.CL_PROGRAM_KERNEL_NAMES, 256,
                                    buf, size_ret) == types.CL_SUCCESS
        names = bytes(buf[:size_ret.value - 1]).decode()
        assert "vector_add" in names and "vector_scale" in names

    def test_build_failure_log(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(
            env["ctx"], 1, "__kernel void missing_one_xyz(int a) {}", None,
            err)
        assert api.clBuildProgram(prog, 1, None, "", None,
                                  None) == types.CL_BUILD_PROGRAM_FAILURE
        buf = bytearray(512)
        size_ret = OutBox()
        api.clGetProgramBuildInfo(prog, env["device"],
                                  types.CL_PROGRAM_BUILD_LOG, 512, buf,
                                  size_ret)
        assert b"missing_one_xyz" in bytes(buf)

    def test_compile_program(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(env["ctx"], 1, SRC, None, err)
        assert api.clCompileProgram(prog, 1, None, "", 0, None, None, None,
                                    None) == types.CL_SUCCESS

    def test_create_kernel_unknown(self, env):
        prog = self._built_program(env)
        err = OutBox()
        assert api.clCreateKernel(prog, "nope", err) is None
        assert err.value == types.CL_INVALID_KERNEL_NAME

    def test_create_kernels_in_program(self, env):
        prog = self._built_program(env)
        count = OutBox()
        assert api.clCreateKernelsInProgram(prog, 0, None,
                                            count) == types.CL_SUCCESS
        assert count.value == 2
        kernels = [None, None]
        assert api.clCreateKernelsInProgram(prog, 2, kernels,
                                            None) == types.CL_SUCCESS
        assert all(k is not None for k in kernels)

    def test_kernel_info(self, env):
        prog = self._built_program(env)
        err = OutBox()
        kernel = api.clCreateKernel(prog, "vector_add", err)
        buf = bytearray(8)
        assert api.clGetKernelInfo(kernel, types.CL_KERNEL_NUM_ARGS, 8, buf,
                                   None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 4

    def test_kernel_work_group_info(self, env):
        prog = self._built_program(env)
        err = OutBox()
        kernel = api.clCreateKernel(prog, "vector_add", err)
        buf = bytearray(8)
        assert api.clGetKernelWorkGroupInfo(
            kernel, env["device"], types.CL_KERNEL_WORK_GROUP_SIZE, 8, buf,
            None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == \
            env["device"].spec.max_work_group_size

    def test_set_kernel_arg_bytes_scalar(self, env):
        prog = self._built_program(env)
        err = OutBox()
        kernel = api.clCreateKernel(prog, "vector_add", err)
        code = api.clSetKernelArg(kernel, 3, 4, (16).to_bytes(4, "little"))
        assert code == types.CL_SUCCESS
        assert kernel.args[3] == 16

    def test_set_kernel_arg_bad_byte_width(self, env):
        prog = self._built_program(env)
        err = OutBox()
        kernel = api.clCreateKernel(prog, "vector_add", err)
        assert api.clSetKernelArg(kernel, 3, 3,
                                  b"\x01\x02\x03") == types.CL_INVALID_ARG_SIZE


class TestExecution:
    def _vector_add_setup(self, env, n=64):
        err = OutBox()
        prog = api.clCreateProgramWithSource(env["ctx"], 1, SRC, None, err)
        api.clBuildProgram(prog, 1, None, "", None, None)
        kernel = api.clCreateKernel(prog, "vector_add", err)
        a = np.full(n, 2.0, dtype=np.float32)
        b = np.full(n, 3.0, dtype=np.float32)
        mems = []
        for host in (a, b, None):
            flags = types.CL_MEM_COPY_HOST_PTR if host is not None else 0
            mems.append(api.clCreateBuffer(env["ctx"], flags, 4 * n, host,
                                           err))
        for i, mem in enumerate(mems):
            api.clSetKernelArg(kernel, i, 8, mem)
        api.clSetKernelArg(kernel, 3, 4, n)
        return kernel, mems, n

    def test_ndrange_end_to_end(self, env):
        kernel, mems, n = self._vector_add_setup(env)
        event = OutBox()
        assert api.clEnqueueNDRangeKernel(env["queue"], kernel, 1, None, [n],
                                          None, 0, None,
                                          event) == types.CL_SUCCESS
        assert event.value.duration > 0
        out = np.zeros(n, dtype=np.float32)
        api.clEnqueueReadBuffer(env["queue"], mems[2], types.CL_TRUE, 0,
                                4 * n, out)
        assert (out == 5.0).all()

    def test_ndrange_offset_unsupported(self, env):
        kernel, _, n = self._vector_add_setup(env)
        assert api.clEnqueueNDRangeKernel(env["queue"], kernel, 1, [1], [n],
                                          None) == types.CL_INVALID_VALUE

    def test_enqueue_task(self, env):
        kernel, _, _ = self._vector_add_setup(env, n=1)
        assert api.clEnqueueTask(env["queue"], kernel) == types.CL_SUCCESS

    def test_flush_and_finish(self, env):
        assert api.clFlush(env["queue"]) == types.CL_SUCCESS
        assert api.clFinish(env["queue"]) == types.CL_SUCCESS

    def test_missing_args_rejected(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(env["ctx"], 1, SRC, None, err)
        api.clBuildProgram(prog, 1, None, "", None, None)
        kernel = api.clCreateKernel(prog, "vector_add", err)
        assert api.clEnqueueNDRangeKernel(
            env["queue"], kernel, 1, None, [4], None
        ) == types.CL_INVALID_KERNEL_ARGS
