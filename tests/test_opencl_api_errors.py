"""Error-path and info-query coverage for the mini-OpenCL API layer.

The silo's error behaviour matters to AvA: native error codes must
travel faithfully through the remoting stack, which requires the native
layer itself to be rigorous about them.
"""

import numpy as np
import pytest

from repro.opencl import api, session, types
from repro.remoting.buffers import OutBox


@pytest.fixture()
def env():
    with session() as sess:
        plats = [None]
        api.clGetPlatformIDs(1, plats, None)
        devs = [None]
        api.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs,
                           None)
        err = OutBox()
        ctx = api.clCreateContext(None, 1, devs, None, None, err)
        queue = api.clCreateCommandQueue(ctx, devs[0], 0, err)
        yield {"session": sess, "platform": plats[0], "device": devs[0],
               "ctx": ctx, "queue": queue}


class TestDiscoveryErrorPaths:
    def test_get_platform_ids_zero_entries_with_array(self, env):
        assert api.clGetPlatformIDs(0, [None], OutBox()) == \
            types.CL_INVALID_VALUE

    def test_get_device_ids_zero_entries_with_array(self, env):
        assert api.clGetDeviceIDs(env["platform"],
                                  types.CL_DEVICE_TYPE_GPU, 0, [None],
                                  OutBox()) == types.CL_INVALID_VALUE

    def test_device_type_all_matches(self, env):
        count = OutBox()
        assert api.clGetDeviceIDs(env["platform"],
                                  types.CL_DEVICE_TYPE_ALL, 0, None,
                                  count) == types.CL_SUCCESS
        assert count.value == 1

    def test_bad_platform_object(self, env):
        assert api.clGetDeviceIDs("junk", types.CL_DEVICE_TYPE_GPU, 0,
                                  None, OutBox()) == \
            types.CL_INVALID_PLATFORM

    def test_device_info_string_values(self, env):
        for param in (types.CL_DEVICE_NAME, types.CL_DEVICE_VENDOR,
                      types.CL_DEVICE_VERSION):
            buf = bytearray(128)
            size_ret = OutBox()
            assert api.clGetDeviceInfo(env["device"], param, 128, buf,
                                       size_ret) == types.CL_SUCCESS
            assert size_ret.value > 1

    def test_device_info_numeric_values(self, env):
        spec = env["device"].spec
        expectations = {
            types.CL_DEVICE_TYPE: spec.device_type,
            types.CL_DEVICE_MAX_CLOCK_FREQUENCY: spec.clock_mhz,
            types.CL_DEVICE_GLOBAL_MEM_SIZE: spec.global_mem_bytes,
            types.CL_DEVICE_LOCAL_MEM_SIZE: spec.local_mem_bytes,
            types.CL_DEVICE_MAX_WORK_GROUP_SIZE: spec.max_work_group_size,
        }
        for param, expected in expectations.items():
            buf = bytearray(8)
            assert api.clGetDeviceInfo(env["device"], param, 8, buf,
                                       None) == types.CL_SUCCESS
            assert int.from_bytes(bytes(buf), "little") == expected

    def test_size_query_without_buffer(self, env):
        size_ret = OutBox()
        assert api.clGetDeviceInfo(env["device"], types.CL_DEVICE_NAME, 0,
                                   None, size_ret) == types.CL_SUCCESS
        assert size_ret.value > 0


class TestContextQueueErrorPaths:
    def test_context_from_foreign_device(self, env):
        from repro.opencl.device import SimulatedGPU

        err = OutBox()
        foreign = SimulatedGPU()
        assert api.clCreateContext(None, 1, [foreign], None, None,
                                   err) is None
        assert err.value == types.CL_INVALID_DEVICE

    def test_queue_from_released_context(self, env):
        err = OutBox()
        ctx = api.clCreateContext(None, 1, [env["device"]], None, None, err)
        api.clReleaseContext(ctx)
        assert api.clCreateCommandQueue(ctx, env["device"], 0, err) is None
        assert err.value == types.CL_INVALID_CONTEXT

    def test_queue_info_bad_param(self, env):
        assert api.clGetCommandQueueInfo(env["queue"], 0xDEAD, 8,
                                         bytearray(8), None) == \
            types.CL_INVALID_VALUE

    def test_context_info_num_devices(self, env):
        buf = bytearray(8)
        assert api.clGetContextInfo(env["ctx"],
                                    types.CL_CONTEXT_NUM_DEVICES, 8, buf,
                                    None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 1


class TestTransferErrorPaths:
    def test_read_null_ptr(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 16, None, err)
        assert api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0,
                                       16, None) == types.CL_INVALID_VALUE

    def test_write_short_host_buffer(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 64, None, err)
        short = np.zeros(4, dtype=np.float32)  # 16 bytes < 64
        assert api.clEnqueueWriteBuffer(env["queue"], mem, types.CL_TRUE,
                                        0, 64, short) == \
            types.CL_INVALID_VALUE

    def test_copy_out_of_range(self, env):
        err = OutBox()
        src = api.clCreateBuffer(env["ctx"], 0, 16, None, err)
        dst = api.clCreateBuffer(env["ctx"], 0, 16, None, err)
        assert api.clEnqueueCopyBuffer(env["queue"], src, dst, 8, 0,
                                       16) == types.CL_INVALID_VALUE

    def test_fill_bad_pattern_multiple(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 10, None, err)
        assert api.clEnqueueFillBuffer(env["queue"], mem, b"abc", 3, 0,
                                       10) == types.CL_INVALID_VALUE

    def test_released_buffer_rejected(self, env):
        err = OutBox()
        mem = api.clCreateBuffer(env["ctx"], 0, 16, None, err)
        api.clReleaseMemObject(mem)
        out = bytearray(16)
        assert api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0,
                                       16, out) == \
            types.CL_INVALID_MEM_OBJECT

    def test_use_host_ptr_copies_initial_contents(self, env):
        err = OutBox()
        data = np.full(8, 3.0, dtype=np.float32)
        mem = api.clCreateBuffer(env["ctx"], types.CL_MEM_USE_HOST_PTR,
                                 32, data, err)
        assert err.value == types.CL_SUCCESS
        out = np.zeros(8, dtype=np.float32)
        api.clEnqueueReadBuffer(env["queue"], mem, types.CL_TRUE, 0, 32,
                                out)
        assert (out == 3.0).all()


class TestProgramKernelErrorPaths:
    def test_empty_source_rejected(self, env):
        err = OutBox()
        assert api.clCreateProgramWithSource(env["ctx"], 1, "   ", None,
                                             err) is None
        assert err.value == types.CL_INVALID_VALUE

    def test_multi_string_sources_joined(self, env):
        err = OutBox()
        pieces = ["__kernel void ", "vector_add(__global float* a, "
                  "__global float* b, __global float* c, int n) {}"]
        prog = api.clCreateProgramWithSource(env["ctx"], 2, pieces, None,
                                             err)
        assert err.value == types.CL_SUCCESS
        assert api.clBuildProgram(prog, 0, None, "", None, None) == \
            types.CL_SUCCESS

    def test_kernel_from_unbuilt_program(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(
            env["ctx"], 1,
            "__kernel void vector_add(__global float* a, __global float* "
            "b, __global float* c, int n) {}", None, err)
        kernel = api.clCreateKernel(prog, "vector_add", err)
        assert kernel is None
        assert err.value == types.CL_INVALID_PROGRAM_EXECUTABLE

    def test_kernels_in_program_small_array(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(
            env["ctx"], 1,
            "__kernel void vector_add(__global float* a, __global float* "
            "b, __global float* c, int n) {}\n"
            "__kernel void vector_scale(__global float* x, float alpha, "
            "int n) {}", None, err)
        api.clBuildProgram(prog, 0, None, "", None, None)
        assert api.clCreateKernelsInProgram(prog, 1, [None],
                                            None) == types.CL_INVALID_VALUE

    def test_compile_program_no_kernels(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(env["ctx"], 1,
                                             "int helper;", None, err)
        assert api.clCompileProgram(prog, 0, None, "", 0, None, None, None,
                                    None) == types.CL_BUILD_PROGRAM_FAILURE

    def test_work_group_info_preferred_multiple(self, env):
        err = OutBox()
        prog = api.clCreateProgramWithSource(
            env["ctx"], 1,
            "__kernel void vector_add(__global float* a, __global float* "
            "b, __global float* c, int n) {}", None, err)
        api.clBuildProgram(prog, 0, None, "", None, None)
        kernel = api.clCreateKernel(prog, "vector_add", err)
        buf = bytearray(8)
        assert api.clGetKernelWorkGroupInfo(
            kernel, env["device"],
            types.CL_KERNEL_PREFERRED_WORK_GROUP_SIZE_MULTIPLE, 8, buf,
            None) == types.CL_SUCCESS
        assert int.from_bytes(bytes(buf), "little") == 32
