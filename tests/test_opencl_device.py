"""Unit tests for the simulated GPU device and cost model."""

import pytest

from repro.opencl.device import DeviceSpec, KernelCost, SimulatedGPU
from repro.opencl.errors import CLError


class TestMemoryLedger:
    def test_allocate_and_free(self):
        gpu = SimulatedGPU()
        gpu.allocate(1024)
        assert gpu.allocated_bytes == 1024
        gpu.free(1024)
        assert gpu.allocated_bytes == 0

    def test_out_of_memory(self):
        gpu = SimulatedGPU(DeviceSpec.small_gpu(mem_bytes=1000))
        gpu.allocate(800)
        with pytest.raises(CLError):
            gpu.allocate(300)

    def test_zero_size_rejected(self):
        with pytest.raises(CLError):
            SimulatedGPU().allocate(0)

    def test_free_bytes(self):
        gpu = SimulatedGPU(DeviceSpec.small_gpu(mem_bytes=1000))
        gpu.allocate(256)
        assert gpu.free_bytes == 744

    def test_overfree_clamps(self):
        gpu = SimulatedGPU()
        gpu.allocate(100)
        gpu.free(500)
        assert gpu.allocated_bytes == 0


class TestCostModel:
    def test_copy_cost_linear(self):
        gpu = SimulatedGPU()
        small = gpu.copy_cost(1024)
        large = gpu.copy_cost(1024 * 1024)
        assert large > small
        # slope equals PCIe bandwidth
        slope = (large - small) / (1024 * 1024 - 1024)
        assert slope == pytest.approx(1 / gpu.spec.pcie_bandwidth)

    def test_copy_cost_has_fixed_overhead(self):
        gpu = SimulatedGPU()
        assert gpu.copy_cost(0) == pytest.approx(gpu.spec.dma_overhead)

    def test_negative_copy_rejected(self):
        with pytest.raises(ValueError):
            SimulatedGPU().copy_cost(-1)

    def test_kernel_cost_compute_bound(self):
        gpu = SimulatedGPU()
        heavy = KernelCost(flops_per_item=10000.0, bytes_per_item=1.0)
        items = 1_000_000
        cost = gpu.kernel_cost(heavy, items)
        expected = gpu.spec.launch_overhead + items * 10000.0 / gpu.spec.flops
        assert cost == pytest.approx(expected)

    def test_kernel_cost_memory_bound(self):
        gpu = SimulatedGPU()
        streaming = KernelCost(flops_per_item=1.0, bytes_per_item=1000.0)
        items = 1_000_000
        cost = gpu.kernel_cost(streaming, items)
        expected = (
            gpu.spec.launch_overhead
            + items * 1000.0 / gpu.spec.mem_bandwidth
        )
        assert cost == pytest.approx(expected)

    def test_efficiency_scales_cost(self):
        gpu = SimulatedGPU()
        base = KernelCost(flops_per_item=100.0)
        slow = KernelCost(flops_per_item=100.0, efficiency=0.5)
        items = 10000
        busy_base = gpu.kernel_cost(base, items) - gpu.spec.launch_overhead
        busy_slow = gpu.kernel_cost(slow, items) - gpu.spec.launch_overhead
        assert busy_slow == pytest.approx(2 * busy_base)

    def test_kernel_cost_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            SimulatedGPU().kernel_cost(KernelCost(), 0)


class TestTimeline:
    def test_execute_serializes(self):
        gpu = SimulatedGPU()
        first = gpu.execute(1.0, not_before=0.0)
        second = gpu.execute(1.0, not_before=0.0)
        assert first.end == pytest.approx(1.0)
        assert second.start == pytest.approx(1.0)
        assert second.end == pytest.approx(2.0)

    def test_not_before_delays_start(self):
        gpu = SimulatedGPU()
        timer = gpu.execute(1.0, not_before=5.0)
        assert timer.start == pytest.approx(5.0)
        assert gpu.timeline == pytest.approx(6.0)

    def test_busy_time_accumulates(self):
        gpu = SimulatedGPU()
        gpu.execute(1.0, not_before=0.0)
        gpu.execute(2.0, not_before=10.0)
        assert gpu.busy_time == pytest.approx(3.0)

    def test_utilization(self):
        gpu = SimulatedGPU()
        gpu.execute(1.0, not_before=0.0)
        gpu.execute(1.0, not_before=3.0)
        assert gpu.utilization() == pytest.approx(2.0 / 4.0)

    def test_utilization_zero_when_idle(self):
        assert SimulatedGPU().utilization() == 0.0

    def test_op_counts(self):
        gpu = SimulatedGPU()
        gpu.execute(0.1, 0.0, "kernel")
        gpu.execute(0.1, 0.0, "kernel")
        gpu.execute(0.1, 0.0, "h2d_copy")
        assert gpu.op_counts == {"kernel": 2, "h2d_copy": 1}

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimulatedGPU().execute(-0.1, 0.0)
