"""Unit tests for the kernel registry and simulated compiler."""

import numpy as np
import pytest

from repro.opencl.errors import CLError
from repro.opencl.kernels import (
    BUFFER,
    REGISTRY,
    SCALAR,
    LaunchContext,
    build_program,
    declared_kernels,
    register_kernel,
)


class FakeMem:
    def __init__(self, size):
        self.data = np.zeros(size, dtype=np.uint8)


class TestDeclarationScanner:
    def test_single_kernel(self):
        source = "__kernel void vector_add(__global float *a) { }"
        assert declared_kernels(source) == ["vector_add"]

    def test_multiple_kernels_in_order(self):
        source = """
        __kernel void alpha(int x) {}
        /* comment */
        __kernel void beta(float y) {}
        """
        assert declared_kernels(source) == ["alpha", "beta"]

    def test_no_kernels(self):
        assert declared_kernels("int helper(void) { return 1; }") == []

    def test_pointer_return_style(self):
        assert declared_kernels("__kernel void  spaced_name (int a)") == [
            "spaced_name"
        ]


class TestBuildProgram:
    def test_build_resolves_registered(self):
        resolved, log = build_program(
            "__kernel void vector_add(float *a, float *b, float *c, int n) {}"
        )
        assert "vector_add" in resolved
        assert "build succeeded" in log

    def test_build_missing_kernel_fails_with_log(self):
        with pytest.raises(CLError) as info:
            build_program("__kernel void totally_unknown_kernel_xyz(int a) {}")
        assert "totally_unknown_kernel_xyz" in str(info.value)

    def test_build_empty_source_fails(self):
        with pytest.raises(CLError):
            build_program("int nothing;")

    def test_options_echoed_in_log(self):
        _, log = build_program(
            "__kernel void vector_add(float *a, float *b, float *c, int n) {}",
            options="-cl-fast-relaxed-math",
        )
        assert "-cl-fast-relaxed-math" in log


class TestRegistry:
    def test_register_and_lookup(self):
        @register_kernel("test_kernel_reg_1", [BUFFER, SCALAR])
        def impl(ctx):
            pass

        found = REGISTRY.lookup("test_kernel_reg_1")
        assert found.num_args == 2
        assert found.arg_kinds == (BUFFER, SCALAR)

    def test_bad_arg_kind_rejected(self):
        with pytest.raises(ValueError):
            register_kernel("bad", ["weird"])

    def test_lookup_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            REGISTRY.lookup("never_registered_anywhere")

    def test_contains(self):
        assert "vector_add" in REGISTRY
        assert "nope_nope" not in REGISTRY

    def test_cost_metadata(self):
        @register_kernel("test_kernel_costed", [BUFFER],
                         flops_per_item=7.0, bytes_per_item=3.0,
                         efficiency=0.5)
        def impl(ctx):
            pass

        cost = REGISTRY.lookup("test_kernel_costed").cost
        assert cost.flops_per_item == 7.0
        assert cost.bytes_per_item == 3.0
        assert cost.efficiency == 0.5


class TestLaunchContext:
    def test_work_items_product(self):
        ctx = LaunchContext(global_size=(4, 8), local_size=None)
        assert ctx.work_items == 32

    def test_buf_typed_view_shares_storage(self):
        mem = FakeMem(16)
        ctx = LaunchContext(global_size=(4,), local_size=None, args=[mem])
        view = ctx.buf(0, np.float32)
        view[0] = 2.5
        assert np.frombuffer(mem.data, dtype=np.float32)[0] == 2.5

    def test_buf_on_scalar_raises(self):
        ctx = LaunchContext(global_size=(1,), local_size=None, args=[3])
        with pytest.raises(CLError):
            ctx.buf(0)

    def test_scalar_on_buffer_raises(self):
        ctx = LaunchContext(global_size=(1,), local_size=None,
                            args=[FakeMem(4)])
        with pytest.raises(CLError):
            ctx.scalar(0)


class TestBuiltinKernels:
    def _launch(self, name, args, global_size=(16,)):
        impl = REGISTRY.lookup(name)
        ctx = LaunchContext(global_size=global_size, local_size=None,
                            args=args)
        impl.fn(ctx)
        return ctx

    def test_vector_add(self):
        a, b, c = FakeMem(64), FakeMem(64), FakeMem(64)
        a.data.view(np.float32)[:] = 2.0
        b.data.view(np.float32)[:] = 3.0
        self._launch("vector_add", [a, b, c, 16])
        assert (c.data.view(np.float32) == 5.0).all()

    def test_vector_scale(self):
        x = FakeMem(64)
        x.data.view(np.float32)[:] = 2.0
        self._launch("vector_scale", [x, 2.5, 16])
        assert (x.data.view(np.float32) == 5.0).all()

    def test_saxpy(self):
        x, y = FakeMem(64), FakeMem(64)
        x.data.view(np.float32)[:] = 1.0
        y.data.view(np.float32)[:] = 1.0
        self._launch("saxpy", [3.0, x, y, 16])
        assert (y.data.view(np.float32) == 4.0).all()

    def test_reduce_sum(self):
        x, out = FakeMem(64), FakeMem(4)
        x.data.view(np.float32)[:] = 1.5
        self._launch("reduce_sum", [x, out, 16])
        assert out.data.view(np.float32)[0] == pytest.approx(24.0)
