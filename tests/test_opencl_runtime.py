"""Unit tests for the mini-OpenCL runtime object model and queue ops."""

import numpy as np
import pytest

from repro.opencl import runtime as rt
from repro.opencl import types
from repro.opencl.device import DeviceSpec, SimulatedGPU
from repro.opencl.errors import CLError
from repro.vclock import VirtualClock


@pytest.fixture()
def sess():
    with rt.session() as s:
        yield s


def make_context(sess):
    return rt.Context(sess, sess.devices)


def make_queue(sess):
    ctx = make_context(sess)
    return rt.CommandQueue(ctx, sess.devices[0])


PROGRAM_SRC = (
    "__kernel void vector_add(__global float* a, __global float* b, "
    "__global float* c, int n) {}"
)


class TestSessionStack:
    def test_current_session_requires_push(self):
        with pytest.raises(CLError):
            rt.current_session()

    def test_nested_sessions(self):
        with rt.session() as outer:
            assert rt.current_session() is outer
            with rt.session() as inner:
                assert rt.current_session() is inner
            assert rt.current_session() is outer

    def test_session_requires_device(self):
        with pytest.raises(ValueError):
            rt.Session(devices=[])

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            rt.pop_session()


class TestRefcounting:
    def test_retain_release(self, sess):
        ctx = make_context(sess)
        ctx.retain()
        assert not ctx.release()
        assert ctx.release()
        assert ctx.released

    def test_use_after_release(self, sess):
        ctx = make_context(sess)
        ctx.release()
        with pytest.raises(CLError):
            ctx.retain()

    def test_mem_release_frees_device_memory(self, sess):
        ctx = make_context(sess)
        device = sess.devices[0]
        before = device.allocated_bytes
        mem = rt.MemObject(ctx, 0, 4096, device)
        assert device.allocated_bytes == before + 4096
        mem.release()
        assert device.allocated_bytes == before


class TestMemObject:
    def test_data_initialized_zero(self, sess):
        ctx = make_context(sess)
        mem = rt.MemObject(ctx, 0, 128, sess.devices[0])
        assert mem.data.shape == (128,)
        assert not mem.data.any()

    def test_zero_size_rejected(self, sess):
        ctx = make_context(sess)
        with pytest.raises(CLError):
            rt.MemObject(ctx, 0, 0, sess.devices[0])

    def test_oom_raises(self):
        gpu = SimulatedGPU(DeviceSpec.small_gpu(mem_bytes=1024))
        with rt.session([gpu]) as s:
            ctx = make_context(s)
            rt.MemObject(ctx, 0, 1000, gpu)
            with pytest.raises(CLError):
                rt.MemObject(ctx, 0, 1000, gpu)


class TestTransfers:
    def test_write_then_read_round_trip(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 16, sess.devices[0])
        rt.enqueue_write(queue, mem, 0, 16, bytes(range(16)), blocking=True)
        payload, _ = rt.enqueue_read(queue, mem, 0, 16, blocking=True)
        assert payload == bytes(range(16))

    def test_offset_write(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        rt.enqueue_write(queue, mem, 4, 4, b"abcd", blocking=True)
        payload, _ = rt.enqueue_read(queue, mem, 0, 8, blocking=True)
        assert payload == b"\0\0\0\0abcd"

    def test_out_of_range_rejected(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        with pytest.raises(CLError):
            rt.enqueue_write(queue, mem, 4, 8, bytes(8), blocking=True)
        with pytest.raises(CLError):
            rt.enqueue_read(queue, mem, 0, 9, blocking=True)

    def test_blocking_advances_caller_clock(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 1 << 20, sess.devices[0])
        before = sess.clock.now
        rt.enqueue_write(queue, mem, 0, 1 << 20, bytes(1 << 20), blocking=True)
        waited = sess.clock.now - before
        assert waited >= sess.devices[0].copy_cost(1 << 20)

    def test_nonblocking_returns_immediately(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 1 << 20, sess.devices[0])
        before = sess.clock.now
        event = rt.enqueue_write(queue, mem, 0, 1 << 20, bytes(1 << 20),
                                 blocking=False)
        assert sess.clock.now == before
        assert event.end > before
        rt.finish(queue)
        assert sess.clock.now == pytest.approx(event.end)

    def test_copy_between_buffers(self, sess):
        queue = make_queue(sess)
        src = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        dst = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        rt.enqueue_write(queue, src, 0, 8, b"12345678", blocking=True)
        rt.enqueue_copy(queue, src, dst, 0, 0, 8)
        payload, _ = rt.enqueue_read(queue, dst, 0, 8, blocking=True)
        assert payload == b"12345678"

    def test_fill_pattern(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        rt.enqueue_fill(queue, mem, b"\x07\x09", 0, 8)
        payload, _ = rt.enqueue_read(queue, mem, 0, 8, blocking=True)
        assert payload == b"\x07\x09" * 4

    def test_fill_size_must_be_pattern_multiple(self, sess):
        queue = make_queue(sess)
        mem = rt.MemObject(queue.context, 0, 8, sess.devices[0])
        with pytest.raises(CLError):
            rt.enqueue_fill(queue, mem, b"\x01\x02\x03", 0, 8)


class TestProgramsAndKernels:
    def test_build_success(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, PROGRAM_SRC)
        prog.build()
        assert prog.build_status == types.CL_BUILD_SUCCESS
        assert prog.kernel_names == ["vector_add"]

    def test_build_failure_sets_log(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, "__kernel void missing_impl_xyz(int a) {}")
        with pytest.raises(CLError):
            prog.build()
        assert prog.build_status == types.CL_BUILD_ERROR
        assert "missing_impl_xyz" in prog.build_log

    def test_kernel_requires_built_program(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, PROGRAM_SRC)
        with pytest.raises(CLError):
            rt.Kernel(prog, "vector_add")

    def test_kernel_unknown_name(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, PROGRAM_SRC)
        prog.build()
        with pytest.raises(CLError):
            rt.Kernel(prog, "nope")

    def test_set_arg_validation(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, PROGRAM_SRC)
        prog.build()
        kernel = rt.Kernel(prog, "vector_add")
        mem = rt.MemObject(ctx, 0, 64, sess.devices[0])
        kernel.set_arg(0, mem)
        with pytest.raises(CLError):
            kernel.set_arg(0, 3.14)  # buffer slot, scalar given
        with pytest.raises(CLError):
            kernel.set_arg(3, mem)  # scalar slot, buffer given
        with pytest.raises(CLError):
            kernel.set_arg(9, mem)  # bad index

    def test_handle_resolver_used_for_int_buffer_args(self):
        mem_holder = {}

        def resolver(guest_id):
            return mem_holder[guest_id]

        with rt.session(handle_resolver=resolver) as s:
            ctx = rt.Context(s, s.devices)
            prog = rt.Program(ctx, PROGRAM_SRC)
            prog.build()
            kernel = rt.Kernel(prog, "vector_add")
            mem = rt.MemObject(ctx, 0, 64, s.devices[0])
            mem_holder[1234] = mem
            kernel.set_arg(0, 1234)
            assert kernel.args[0] is mem

    def test_int_buffer_arg_without_resolver_rejected(self, sess):
        ctx = make_context(sess)
        prog = rt.Program(ctx, PROGRAM_SRC)
        prog.build()
        kernel = rt.Kernel(prog, "vector_add")
        with pytest.raises(CLError):
            kernel.set_arg(0, 1234)


class TestNDRange:
    def _ready_kernel(self, sess, n=16):
        queue = make_queue(sess)
        ctx = queue.context
        prog = rt.Program(ctx, PROGRAM_SRC)
        prog.build()
        kernel = rt.Kernel(prog, "vector_add")
        bufs = [rt.MemObject(ctx, 0, 4 * n, sess.devices[0]) for _ in range(3)]
        bufs[0].data.view(np.float32)[:] = 1.0
        bufs[1].data.view(np.float32)[:] = 2.0
        for i, buf in enumerate(bufs):
            kernel.set_arg(i, buf)
        kernel.set_arg(3, n)
        return queue, kernel, bufs

    def test_launch_computes(self, sess):
        queue, kernel, bufs = self._ready_kernel(sess)
        rt.enqueue_ndrange(queue, kernel, [16])
        assert (bufs[2].data.view(np.float32) == 3.0).all()

    def test_launch_requires_all_args(self, sess):
        queue = make_queue(sess)
        prog = rt.Program(queue.context, PROGRAM_SRC)
        prog.build()
        kernel = rt.Kernel(prog, "vector_add")
        with pytest.raises(CLError):
            rt.enqueue_ndrange(queue, kernel, [16])

    def test_bad_work_dimension(self, sess):
        queue, kernel, _ = self._ready_kernel(sess)
        with pytest.raises(CLError):
            rt.enqueue_ndrange(queue, kernel, [1, 1, 1, 1])

    def test_local_size_divisibility(self, sess):
        queue, kernel, _ = self._ready_kernel(sess)
        with pytest.raises(CLError):
            rt.enqueue_ndrange(queue, kernel, [16], [5])

    def test_work_group_limit(self, sess):
        queue, kernel, _ = self._ready_kernel(sess)
        limit = sess.devices[0].spec.max_work_group_size
        with pytest.raises(CLError):
            rt.enqueue_ndrange(queue, kernel, [limit * 4], [limit * 2])

    def test_event_profiling_times(self, sess):
        queue, kernel, _ = self._ready_kernel(sess)
        event = rt.enqueue_ndrange(queue, kernel, [16])
        assert event.end > event.start >= event.queued
        assert event.duration > 0

    def test_queue_serializes_on_device(self, sess):
        queue, kernel, _ = self._ready_kernel(sess)
        first = rt.enqueue_ndrange(queue, kernel, [16])
        second = rt.enqueue_ndrange(queue, kernel, [16])
        assert second.start >= first.end
