"""Tests for the happens-before layer: ``cava race`` (CAVA4xx), the
generated-code ordering agreement checks (CAVA308/309), and the shared
suppression-family split with ``cava lint``.

The ``ordering_*`` specs under ``tests/specs_bad/`` are the negative
corpus — one per CAVA40x code, every one *accepted* by ``cava verify``.
"""

import json
import os

import pytest

from repro.analysis import (
    CODE_TABLE,
    Severity,
    analyze_generated_ordering,
    analyze_ordering,
    build_hb_model,
    lint_path,
    race_path,
    race_spec,
)
from repro.codegen.cli import main as cava_main
from repro.codegen.generator import GeneratedSources, generate_sources
from repro.codegen.verify import verify_spec
from repro.spec import parse_spec
from repro.spec.parser import parse_spec_file
from repro.stack import default_specs_dir

BAD_DIR = os.path.join(os.path.dirname(__file__), "specs_bad")

ORDERING_SEEDS = {
    "ordering_async_output": "CAVA401",
    "ordering_noncommuting": "CAVA402",
    "ordering_async_release_batch": "CAVA403",
    "ordering_stale_elision": "CAVA404",
}


def bad_spec(name):
    return parse_spec_file(os.path.join(BAD_DIR, name + ".cava"))


def bad_path(name):
    return os.path.join(BAD_DIR, name + ".cava")


def shipped(api):
    return os.path.join(default_specs_dir(), f"{api}.cava")


def codes(report):
    return {d.code for d in report.diagnostics}


class TestHBModel:
    def test_opencl_classifications(self):
        model = build_hb_model(parse_spec_file(shipped("opencl")))
        assert model.functions["clFinish"].classification == "sync"
        assert model.functions["clSetKernelArg"].classification == "async"
        # blocking_write toggles the mode at runtime
        assert model.functions["clEnqueueWriteBuffer"].classification \
            == "conditional"
        assert model.functions["clEnqueueWriteBuffer"].can_async
        assert "clFinish" in model.sync_points

    def test_alias_classes_group_void_pointers(self):
        model = build_hb_model(parse_spec_file(shipped("opencl")))
        write = next(
            a for a in model.functions["clEnqueueWriteBuffer"].accesses
            if a.param == "ptr"
        )
        read = next(
            a for a in model.functions["clEnqueueReadBuffer"].accesses
            if a.param == "ptr"
        )
        assert write.alias_class == read.alias_class
        assert write.writes_device and not write.writes_guest
        assert read.writes_guest and not read.writes_device

    def test_conflicts_and_commutes(self):
        model = build_hb_model(parse_spec_file(shipped("opencl")))
        assert model.conflicts("clEnqueueWriteBuffer",
                               "clEnqueueReadBuffer")
        assert not model.commutes("clEnqueueWriteBuffer",
                                  "clEnqueueReadBuffer")
        pairs = model.noncommuting_pairs()
        assert ("clEnqueueReadBuffer", "clEnqueueWriteBuffer") in pairs

    def test_release_vs_use_breaks_commutation_without_buffers(self):
        model = build_hb_model(bad_spec("ordering_async_release_batch"))
        assert not model.conflicts("freeWidget", "touchWidget")
        assert not model.commutes("freeWidget", "touchWidget")

    def test_sync_points_empty_for_all_async_api(self):
        model = build_hb_model(bad_spec("ordering_async_output"))
        assert model.sync_points == []
        assert {f.name for f in model.async_capable()} \
            == {"submit", "poll"}


class TestOrderingDiagnostics:
    @pytest.mark.parametrize("name,code", sorted(ORDERING_SEEDS.items()))
    def test_seed_fires_exactly_its_code(self, name, code):
        spec = bad_spec(name)
        assert verify_spec(spec).ok  # the shallow verifier passes
        diags, checks = analyze_ordering(spec)
        assert {d.code for d in diags} == {code}
        assert checks > 0

    @pytest.mark.parametrize("name,code", sorted(ORDERING_SEEDS.items()))
    def test_codes_are_registered(self, name, code):
        assert code in CODE_TABLE

    def test_401_is_error_the_rest_warnings(self):
        severities = {
            code: CODE_TABLE[code][0]
            for code in ("CAVA401", "CAVA402", "CAVA403", "CAVA404")
        }
        assert severities["CAVA401"] is Severity.ERROR
        assert all(severities[c] is Severity.WARNING
                   for c in ("CAVA402", "CAVA403", "CAVA404"))

    def test_sync_point_discharges_401(self):
        spec = parse_spec(
            "api(ok);\n"
            "int submit(int job) { async; }\n"
            "int poll(unsigned int *status) {\n"
            "  async; parameter(status) { out; nullable; buffer(1); }\n"
            "}\n"
            "int wait();\n"  # sync-capable: orders the reply application
        )
        diags, _ = analyze_ordering(spec)
        assert not any(d.code == "CAVA401" for d in diags)

    def test_sync_only_api_is_clean(self):
        spec = parse_spec(
            "api(calm);\n"
            "int send(const void *data, unsigned int data_size) {\n"
            "  parameter(data) { buffer(data_size); }\n"
            "}\n"
            "int recv(void *dst, unsigned int dst_size) {\n"
            "  parameter(dst) { out; buffer(dst_size); }\n"
            "}\n"
        )
        diags, _ = analyze_ordering(spec)
        assert diags == []


class TestGeneratedOrdering:
    """CAVA308/309: the generated stack must embed the HB contract."""

    def _sources(self, api="mvnc"):
        spec = parse_spec_file(shipped(api))
        return spec, generate_sources(spec, "repro.mvnc.api")

    def _tampered(self, sources, field_name, old, new):
        fields = {
            "api_name": sources.api_name,
            "guest_source": sources.guest_source,
            "server_source": sources.server_source,
            "routing_source": sources.routing_source,
        }
        assert old in fields[field_name], f"{old!r} not in {field_name}"
        fields[field_name] = fields[field_name].replace(old, new, 1)
        return GeneratedSources(**fields)

    def test_clean_stack_passes(self):
        spec, sources = self._sources()
        diags, checks = analyze_generated_ordering(spec, sources=sources)
        assert diags == []
        assert checks > len(
            [f for f in spec.functions.values() if not f.unsupported])

    def test_stub_mode_flip_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(
            sources, "guest_source",
            "            _mode = 'async'\n"
            "            return _rt.submit('mvncLoadTensor'",
            "            _mode = 'sync'\n"
            "            return _rt.submit('mvncLoadTensor'",
        )
        diags, _ = analyze_generated_ordering(spec, sources=tampered)
        assert any(d.code == "CAVA308" and d.subject == "mvncLoadTensor"
                   for d in diags)

    def test_stub_bypassing_runtime_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(
            sources, "guest_source",
            "return _rt.submit('mvncLoadTensor'",
            "return _rt.transport.send('mvncLoadTensor'",
        )
        diags, _ = analyze_generated_ordering(spec, sources=tampered)
        assert any(d.code == "CAVA308" and d.subject == "mvncLoadTensor"
                   for d in diags)

    def test_routing_misclassification_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(
            sources, "routing_source",
            "'mvncLoadTensor': 'async'",
            "'mvncLoadTensor': 'sync'",
        )
        diags, _ = analyze_generated_ordering(spec, sources=tampered)
        assert any(d.code == "CAVA309" and "mvncLoadTensor" in d.message
                   for d in diags)

    def test_routing_metadata_not_attached_caught(self):
        spec, sources = self._sources()
        tampered = self._tampered(
            sources, "routing_source",
            "    table.sync_points = list(SYNC_POINTS)\n",
            "",
        )
        diags, _ = analyze_generated_ordering(spec, sources=tampered)
        assert any(d.code == "CAVA309" for d in diags)

    def test_generated_sources_carry_ordering(self):
        spec, sources = self._sources()
        assert sources.ordering["mvncLoadTensor"] == "async"
        assert sources.ordering["mvncOpenDevice"] == "sync"

    def test_routing_table_from_spec_carries_ordering(self):
        from repro.hypervisor.router import RoutingTable

        spec = parse_spec_file(shipped("mvnc"))
        table = RoutingTable.from_spec(spec)
        assert table.ordering["mvncLoadTensor"] == "async"
        assert "mvncOpenDevice" in table.sync_points
        assert "mvncLoadTensor" not in table.sync_points


class TestRaceCli:
    def test_shipped_specs_pass_warning_gate(self, capsys):
        specs = [shipped(api) for api in ("opencl", "mvnc", "qat")]
        assert cava_main(["race", *specs, "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert out.count("race '") == 3

    def test_opencl_triage_is_suppressions_not_silence(self):
        report = race_path(shipped("opencl"))
        assert not report.diagnostics
        suppressed = {d.code for d, _why in report.suppressed}
        assert {"CAVA402", "CAVA403", "CAVA404"} <= suppressed

    def test_error_seed_exits_one(self, capsys):
        assert cava_main(
            ["race", bad_path("ordering_async_output")]) == 1
        assert "CAVA401" in capsys.readouterr().out

    def test_fail_on_threshold(self, capsys):
        warn_only = bad_path("ordering_noncommuting")
        assert cava_main(["race", warn_only, "--fail-on", "error"]) == 0
        assert cava_main(["race", warn_only, "--fail-on", "warning"]) == 1

    def test_json_output(self, capsys):
        assert cava_main([
            "race", bad_path("ordering_stale_elision"), "--json",
            "--fail-on", "warning",
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["api"] == "staley"
        assert document["tool"] == "race"
        assert any(d["code"] == "CAVA404"
                   for d in document["diagnostics"])

    def test_explicit_suppress_file(self, tmp_path, capsys):
        supp = tmp_path / "mute.lint"
        supp.write_text(
            "CAVA402 upload.data: single-producer stream, uploads are "
            "idempotent\n"
            "CAVA402 fill.pattern: single-producer stream, fills are "
            "idempotent\n")
        assert cava_main([
            "race", bad_path("ordering_noncommuting"),
            "--suppress", str(supp), "--fail-on", "warning",
        ]) == 0


class TestFamilySeparation:
    """One ``.lint`` file serves both tools; neither flags the other's
    entries as stale."""

    def test_lint_ignores_race_suppressions(self):
        report = lint_path(shipped("opencl"))
        assert report.gate("warning")
        assert not any(d.code == "CAVA002" for d in report.diagnostics)

    def test_race_ignores_lint_suppressions(self):
        report = race_path(shipped("opencl"))
        assert report.gate("warning")
        assert not any(d.code == "CAVA002" for d in report.diagnostics)

    def test_race_flags_stale_race_entries(self, tmp_path):
        supp = tmp_path / "mute.lint"
        supp.write_text(
            "CAVA403 nothing.here: this ordering finding never fires\n")
        spec_path = tmp_path / "calm.cava"
        spec_path.write_text("api(calm);\nint ping(int n);\n")
        report = race_path(str(spec_path), suppress_path=str(supp))
        assert any(d.code == "CAVA002" for d in report.diagnostics)

    def test_invalid_spec_reports_cava100(self, tmp_path):
        spec_path = tmp_path / "broken.cava"
        spec_path.write_text(
            "api(broken);\n"
            "int f(const void *data) {\n"
            "  parameter(data) { buffer(nosuch); }\n"
            "}\n")
        report = race_path(str(spec_path))
        assert "CAVA100" in codes(report)
        assert not report.gate("error")
