"""Property tests for the happens-before model: random schedules vs a
brute-force interleaving oracle.

The oracle executes command schedules over an *abstract* machine —
last-writer tokens per alias class for device state, (reader, value-
read) tokens for guest state, and type-level handle liveness — and
brute-forces every legal permutation of each unflushed async region
(sync commands are barriers and never move).  The soundness claim under
test: whenever any permutation changes the observable outcome, the
static model must already call some reordered pair non-commuting.  In
other words ``HBModel.commutes`` has **no false negatives** against the
oracle.

The companion seeded test measures the false-positive side: for every
statically flagged pair it searches for a divergence witness and
reports the fraction with none.  Conservative alias reasoning may keep
that above zero for future specs; today's shipped specs witness every
flagged pair.
"""

import itertools
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import build_hb_model
from repro.spec.parser import parse_spec_file
from repro.stack import default_specs_dir

BAD_DIR = os.path.join(os.path.dirname(__file__), "specs_bad")
SHIPPED = ("opencl", "mvnc", "qat")

_MODELS = {}


def model_for(api):
    if api not in _MODELS:
        if api in SHIPPED:
            path = os.path.join(default_specs_dir(), f"{api}.cava")
        else:
            path = os.path.join(BAD_DIR, f"{api}.cava")
        _MODELS[api] = build_hb_model(parse_spec_file(path))
    return _MODELS[api]


# ---------------------------------------------------------------------------
# the abstract interleaving oracle
# ---------------------------------------------------------------------------


def execute(model, schedule, initial_device=None):
    """Run ``schedule`` — a sequence of (token, function-name) pairs —
    over the abstract machine and return its observable outcome.

    * ``device``: alias class -> token of the last in-direction writer,
    * ``guest``: (alias class, reader token) -> device token pulled.
      Each out parameter lands in the caller's own destination box (the
      runtime applies a reply to the pointer captured at submission),
      so distinct invocations never clobber each other's guest cell —
      but *which device state* a reader observes is order-dependent,
    * ``faults``: frozenset of (token, handle type) use/release-after-
      release events.

    Tokens name invocations independently of their position, so the
    outcome of two permutations of the same multiset of invocations is
    directly comparable.
    """
    device = dict(initial_device or {})
    guest = {}
    dead = set()
    faults = set()
    for token, fname in schedule:
        func = model.functions[fname]
        for type_name in sorted(func.handle_uses | func.handle_releases):
            if type_name in dead:
                faults.add((token, type_name))
        dead |= func.handle_releases
        # out-direction accesses observe device state *before* this
        # invocation's own in-direction writes land
        for access in func.accesses:
            if access.writes_guest:
                guest[(access.alias_class, token)] = \
                    device.get(access.alias_class)
        for access in func.accesses:
            if access.writes_device:
                device[access.alias_class] = token
    return device, guest, frozenset(faults)


def region_permutations(schedule, modes, limit=720):
    """Every legal reordering of ``schedule``: maximal runs of commands
    dispatched async may permute freely; a sync dispatch is a barrier
    (the guest flushes the queue before it crosses the channel)."""
    runs = []
    current = []
    for entry, mode in zip(schedule, modes):
        if mode == "async":
            current.append(entry)
        else:
            if current:
                runs.append(current)
                current = []
            runs.append([entry])
    if current:
        runs.append(current)
    pools = []
    for run in runs:
        perms = list(itertools.permutations(run))
        assert len(perms) <= limit, "region too large to brute-force"
        pools.append(perms)
    for choice in itertools.product(*pools):
        yield [entry for run in choice for entry in run]


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


def schedule_strategy(api):
    """Random schedules over ``api``'s functions: each invocation picks
    a legal dispatch mode for its function; async runs are capped at 5
    so brute-forcing permutations stays cheap (<= 120 per region)."""
    model = model_for(api)
    names = sorted(model.functions)

    def annotate(picks):
        schedule, modes = [], []
        run = 0
        for occurrence, (fname, want_async) in enumerate(picks):
            func = model.functions[fname]
            if func.can_async and (want_async or not func.can_sync):
                if run < 5:
                    mode = "async"
                elif func.can_sync:
                    mode = "sync"
                else:
                    break  # async-only past the cap: truncate schedule
            else:
                mode = "sync"
            run = run + 1 if mode == "async" else 0
            schedule.append(((fname, occurrence), fname))
            modes.append(mode)
        return schedule, modes

    picks = st.lists(
        st.tuples(st.sampled_from(names), st.booleans()),
        min_size=2, max_size=8)
    return picks.map(annotate)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


class TestPairwiseSoundness:
    """Divergence under a pairwise swap implies the model flags the
    pair — ``commutes`` never green-lights an observable reorder."""

    @pytest.mark.parametrize("api", sorted(
        SHIPPED + ("ordering_noncommuting", "ordering_async_release_batch",
                   "ordering_stale_elision")))
    def test_no_false_negatives_over_all_pairs(self, api):
        model = model_for(api)
        names = sorted(model.functions)
        for first, second in itertools.product(names, names):
            a, b = ((first, 0), first), ((second, 1), second)
            forward = execute(model, [a, b])
            swapped = execute(model, [b, a])
            if forward != swapped:
                assert not model.commutes(first, second), (
                    f"oracle diverges for {first}/{second} but the "
                    f"model claims they commute")


class TestScheduleSoundness:
    @pytest.mark.parametrize("api", sorted(
        SHIPPED + ("ordering_noncommuting",
                   "ordering_async_release_batch")))
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_divergent_schedule_has_flagged_pair(self, api, data):
        model = model_for(api)
        schedule, modes = data.draw(schedule_strategy(api))
        baseline = execute(model, schedule)
        diverged = any(
            execute(model, perm) != baseline
            for perm in region_permutations(schedule, modes))
        if not diverged:
            return
        # some async pair sharing a region must be statically flagged
        flagged = False
        region = []
        for (token, fname), mode in zip(schedule, modes):
            if mode != "async":
                region = []
                continue
            flagged = flagged or any(
                not model.commutes(prior, fname) for prior in region)
            region.append(fname)
        assert flagged, (
            f"schedule {schedule!r} diverges under reordering but no "
            f"in-region pair is non-commuting")

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_sync_only_schedules_never_diverge(self, data):
        """With every dispatch sync there is exactly one legal order."""
        model = model_for("opencl")
        schedule, _modes = data.draw(schedule_strategy("opencl"))
        all_sync = ["sync"] * len(schedule)
        outcomes = {
            tuple(perm)
            for perm in region_permutations(schedule, all_sync)
        }
        assert outcomes == {tuple(schedule)}


class TestFalsePositiveRate:
    """The flip side, reported not gated: how many statically flagged
    pairs have *no* divergence witness under the oracle?"""

    def _witnessed(self, model, first, second, rng, attempts=32):
        a, b = ((first, 0), first), ((second, 1), second)
        classes = sorted({
            access.alias_class
            for func in model.functions.values()
            for access in func.accesses
        })
        for attempt in range(attempts):
            initial = {}
            if attempt:  # attempt 0 probes the empty machine
                for alias in classes:
                    if rng.random() < 0.5:
                        initial[alias] = ("ambient", rng.randrange(4))
            if execute(model, [a, b], initial) \
                    != execute(model, [b, a], initial):
                return True
        return False

    @pytest.mark.parametrize("api", sorted(SHIPPED))
    def test_fp_rate_reported(self, api, capsys):
        model = model_for(api)
        rng = random.Random(0xCA7A)
        pairs = sorted(model.noncommuting_pairs())
        if not pairs:
            pytest.skip(f"{api}: no non-commuting pairs to audit")
        unwitnessed = [
            (f, g) for f, g in pairs
            if not self._witnessed(model, f, g, rng)
        ]
        rate = len(unwitnessed) / len(pairs)
        with capsys.disabled():
            print(f"[cava race] {api}: {len(pairs)} flagged pairs, "
                  f"FP rate {rate:.0%} {unwitnessed or ''}")
        # every flagged pair in today's shipped specs has a witness;
        # loosen (and keep reporting) if a future spec's conservative
        # alias approximation introduces a genuine false positive
        assert rate == 0.0
