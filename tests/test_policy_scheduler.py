"""Tests for rate limiting and device-time scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.hypervisor.policy import RateLimiter, ResourcePolicy, VMPolicy
from repro.hypervisor.scheduler import (
    ContendedDevice,
    FairShareScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    WorkItem,
    jain_fairness,
)


class TestRateLimiter:
    def make(self, rate, burst=1):
        policy = ResourcePolicy()
        policy.set_policy("vm", VMPolicy(command_rate=rate,
                                         command_burst=burst))
        return RateLimiter(policy)

    def test_unlimited_by_default(self):
        limiter = RateLimiter(ResourcePolicy())
        assert limiter.next_allowed("anyone", 5.0) == 5.0

    def test_burst_passes_immediately(self):
        limiter = self.make(rate=10.0, burst=4)
        for _ in range(4):
            assert limiter.next_allowed("vm", 0.0) == 0.0

    def test_sustained_rate_enforced(self):
        limiter = self.make(rate=10.0, burst=1)
        releases = [limiter.next_allowed("vm", 0.0) for _ in range(11)]
        # first token free, then one per 0.1s
        assert releases[0] == 0.0
        assert releases[10] == pytest.approx(1.0)

    def test_tokens_refill_over_time(self):
        limiter = self.make(rate=10.0, burst=2)
        limiter.next_allowed("vm", 0.0)
        limiter.next_allowed("vm", 0.0)
        # 0.5 s later, 2 tokens are back (capped at burst)
        assert limiter.next_allowed("vm", 0.5) == 0.5

    def test_release_never_before_arrival(self):
        limiter = self.make(rate=100.0, burst=8)
        for arrival in (0.0, 0.001, 0.5, 0.5, 2.0):
            assert limiter.next_allowed("vm", arrival) >= arrival

    def test_delay_metric_accumulates(self):
        limiter = self.make(rate=10.0, burst=1)
        for _ in range(5):
            limiter.next_allowed("vm", 0.0)
        assert limiter.delay_injected["vm"] > 0

    def test_independent_vms(self):
        policy = ResourcePolicy()
        policy.set_policy("slow", VMPolicy(command_rate=1.0, command_burst=1))
        limiter = RateLimiter(policy)
        limiter.next_allowed("slow", 0.0)
        delayed = limiter.next_allowed("slow", 0.0)
        assert delayed > 0
        assert limiter.next_allowed("fast", 0.0) == 0.0

    def test_bad_rate_rejected(self):
        limiter = self.make(rate=0.0)
        with pytest.raises(ValueError):
            limiter.next_allowed("vm", 0.0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=50))
    def test_releases_monotone_for_monotone_arrivals(self, deltas):
        limiter = self.make(rate=5.0, burst=2)
        arrivals = []
        t = 0.0
        for d in deltas:
            t += d
            arrivals.append(t)
        releases = [limiter.next_allowed("vm", a) for a in arrivals]
        assert all(r2 >= r1 for r1, r2 in zip(releases, releases[1:]))


def uniform_streams(vms, count=50, duration=1e-3, think=0.0):
    return {vm: [WorkItem(duration, think) for _ in range(count)]
            for vm in vms}


class TestContendedDevice:
    def test_everything_completes(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=10))
        assert stats["a"].completed == 10
        assert stats["b"].completed == 10

    def test_device_serializes(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=10))
        total = stats["a"].device_time + stats["b"].device_time
        finish = max(s.finish_time for s in stats.values())
        assert finish == pytest.approx(total)

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            ContendedDevice(FifoScheduler()).run({})

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WorkItem(-1.0)

    def test_fair_share_equalizes_heterogeneous_demand(self):
        # "hog" issues 10x longer kernels than "mouse"
        streams = {
            "hog": [WorkItem(10e-3) for _ in range(200)],
            "mouse": [WorkItem(1e-3) for _ in range(200)],
        }
        device = ContendedDevice(FairShareScheduler())
        stats = device.run(streams)
        # while both were active, device time should be near-equal:
        # compare usage at the moment the mouse finished
        mouse_done = stats["mouse"].finish_time
        hog_time_before = sum(
            10e-3 for t in stats["hog"].completions if t <= mouse_done
        )
        mouse_time = stats["mouse"].device_time
        assert jain_fairness([hog_time_before, mouse_time]) > 0.95

    def test_weighted_fair_share(self):
        policy = ResourcePolicy()
        policy.set_policy("gold", VMPolicy(weight=3.0))
        policy.set_policy("bronze", VMPolicy(weight=1.0))
        streams = {
            "gold": [WorkItem(1e-3) for _ in range(400)],
            "bronze": [WorkItem(1e-3) for _ in range(400)],
        }
        device = ContendedDevice(FairShareScheduler(policy))
        stats = device.run(streams)
        done = min(s.finish_time for s in stats.values())
        gold = sum(1 for t in stats["gold"].completions if t <= done)
        bronze = sum(1 for t in stats["bronze"].completions if t <= done)
        assert gold / bronze == pytest.approx(3.0, rel=0.15)

    def test_round_robin_alternates(self):
        device = ContendedDevice(RoundRobinScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=20))
        # completions interleave: finish times alternate between VMs
        merged = sorted(
            [(t, "a") for t in stats["a"].completions]
            + [(t, "b") for t in stats["b"].completions]
        )
        alternations = sum(
            1 for (t1, v1), (t2, v2) in zip(merged, merged[1:]) if v1 != v2
        )
        assert alternations >= len(merged) * 0.8

    def test_fifo_favors_nobody_with_equal_streams(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b", "c"], count=30))
        times = [s.device_time for s in stats.values()]
        assert jain_fairness(times) > 0.99

    def test_rate_limited_stream_throttled(self):
        policy = ResourcePolicy()
        policy.set_policy("throttled",
                          VMPolicy(command_rate=100.0, command_burst=1))
        limiter = RateLimiter(policy)
        device = ContendedDevice(FifoScheduler(), rate_limiter=limiter)
        streams = uniform_streams(["throttled", "free"], count=100,
                                  duration=0.1e-3)
        stats = device.run(streams)
        # 100 commands at 100/s ≈ 1s for the throttled VM
        assert stats["throttled"].finish_time >= 0.9
        assert stats["free"].finish_time < 0.1

    def test_think_time_creates_idle_device(self):
        device = ContendedDevice(FifoScheduler())
        streams = {"a": [WorkItem(1e-3, think_time=9e-3) for _ in range(10)]}
        stats = device.run(streams)
        assert stats["a"].finish_time == pytest.approx(
            10 * 1e-3 + 9 * 9e-3
        )


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_or_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_single_vm_is_trivially_fair(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_all_zero_is_fair_not_nan(self):
        # an idle fleet is vacuously fair; must not divide by zero
        assert jain_fairness([0.0, 0.0, 0.0, 0.0]) == 1.0


class TestSfqReentry:
    """Regression: a late joiner must not monopolize the device.

    Before the fix, FairShareScheduler derived tags directly from raw
    usage, so a VM becoming ready late carried usage ≈ 0 and won every
    pick until it "caught up" with the incumbent — the incumbent
    starved for as long as the joiner had been absent.
    """

    def test_late_joiner_capped_at_weighted_share(self):
        join_at = 0.5
        streams = {
            "incumbent": [WorkItem(1e-3) for _ in range(1000)],
            # a zero-cost marker item whose think time delays the real
            # work: "late" re-enters the ready set at t ≈ join_at with
            # zero accumulated usage
            "late": [WorkItem(0.0, think_time=join_at)]
            + [WorkItem(1e-3) for _ in range(400)],
        }
        device = ContendedDevice(FairShareScheduler())
        stats = device.run(streams)
        window_end = join_at + 0.2
        late_wins = sum(
            1 for t in stats["late"].completions if join_at < t <= window_end
        )
        incumbent_wins = sum(
            1
            for t in stats["incumbent"].completions
            if join_at < t <= window_end
        )
        total = late_wins + incumbent_wins
        assert total > 100  # the window saw real contention
        # equal weights → the joiner's fair share of the window is 1/2;
        # pre-fix it wins essentially everything (~1.0 of the window)
        assert late_wins <= 0.6 * total, (
            f"late joiner won {late_wins}/{total} of the post-join window"
        )
        assert incumbent_wins >= 0.4 * total

    def test_continuously_busy_vms_unaffected(self):
        # the re-entry clamp must be a no-op when everyone stays ready
        streams = uniform_streams(["a", "b"], count=200, duration=1e-3)
        stats = ContendedDevice(FairShareScheduler()).run(streams)
        done = min(s.finish_time for s in stats.values())
        a = sum(1 for t in stats["a"].completions if t <= done)
        b = sum(1 for t in stats["b"].completions if t <= done)
        assert jain_fairness([a, b]) > 0.99


class TestRoundRobinReset:
    """Regression: the rotation cursor leaked across run() calls, so a
    second run on the same scheduler instance started mid-rotation and
    back-to-back identical runs produced different stats."""

    def test_same_streams_twice_identical_stats(self):
        device = ContendedDevice(RoundRobinScheduler())

        def make_streams():
            return {
                "a": [WorkItem(1e-3) for _ in range(30)],
                "b": [WorkItem(2e-3) for _ in range(15)],
                "c": [WorkItem(1e-3) for _ in range(20)],
            }

        first = device.run(make_streams())
        second = device.run(make_streams())
        for vm in first:
            assert first[vm].completions == second[vm].completions
            assert first[vm].finish_time == second[vm].finish_time
            assert first[vm].total_wait == second[vm].total_wait

    def test_fair_share_also_resets(self):
        device = ContendedDevice(FairShareScheduler())
        streams = uniform_streams(["a", "b"], count=40)
        first = device.run(streams)
        second = device.run(uniform_streams(["a", "b"], count=40))
        for vm in first:
            assert first[vm].completions == second[vm].completions


class TestWaitSplit:
    """Regression: throttle delay from the admission rate limiter was
    charged into the same counters as queueing behind other VMs' work;
    the split keeps total_wait = queue + throttle for compatibility."""

    def make_limited(self, rate, burst=1):
        policy = ResourcePolicy()
        policy.set_policy(
            "limited", VMPolicy(command_rate=rate, command_burst=burst)
        )
        return RateLimiter(policy)

    def test_solo_throttled_vm_has_no_queue_wait(self):
        # alone on the device, every wait is admission throttling
        device = ContendedDevice(
            FifoScheduler(), rate_limiter=self.make_limited(rate=100.0)
        )
        stats = device.run(
            {"limited": [WorkItem(0.1e-3) for _ in range(50)]}
        )
        entry = stats["limited"]
        assert entry.total_throttle_wait > 0
        assert entry.total_queue_wait == pytest.approx(0.0)
        assert entry.total_wait == pytest.approx(entry.total_throttle_wait)

    def test_contended_throttled_vm_splits_both(self):
        device = ContendedDevice(
            FifoScheduler(), rate_limiter=self.make_limited(rate=100.0)
        )
        streams = {
            "limited": [WorkItem(0.1e-3) for _ in range(50)],
            "free": [WorkItem(5e-3) for _ in range(50)],
        }
        stats = device.run(streams)
        limited = stats["limited"]
        # throttled *and* stuck behind the free VM's 5 ms kernels
        assert limited.total_throttle_wait > 0
        assert limited.total_queue_wait > 0
        assert limited.total_wait == pytest.approx(
            limited.total_queue_wait + limited.total_throttle_wait
        )
        # the free VM is never throttled: all wait is queueing
        free = stats["free"]
        assert free.total_throttle_wait == pytest.approx(0.0)
        assert free.total_wait == pytest.approx(free.total_queue_wait)

    def test_per_item_lists_consistent(self):
        device = ContendedDevice(
            FifoScheduler(), rate_limiter=self.make_limited(rate=200.0)
        )
        streams = {
            "limited": [WorkItem(0.1e-3) for _ in range(30)],
            "free": [WorkItem(1e-3) for _ in range(30)],
        }
        stats = device.run(streams)
        for entry in stats.values():
            assert len(entry.queue_waits) == len(entry.waits)
            assert sum(entry.queue_waits) == pytest.approx(
                entry.total_queue_wait
            )
            for total, queued in zip(entry.waits, entry.queue_waits):
                assert total >= queued - 1e-12


class TestEngineEdgeCases:
    def test_zero_length_stream_mixed_with_busy(self):
        # a VM with no work at all must not wedge or skew the engine
        streams = {
            "idle": [],
            "busy": [WorkItem(1e-3) for _ in range(10)],
        }
        stats = ContendedDevice(FifoScheduler()).run(streams)
        assert stats["idle"].completed == 0
        assert stats["idle"].device_time == 0.0
        assert stats["busy"].completed == 10
        assert stats["busy"].finish_time == pytest.approx(10e-3)

    def test_zero_duration_items_complete(self):
        streams = {
            "zero": [WorkItem(0.0) for _ in range(5)],
            "busy": [WorkItem(1e-3) for _ in range(5)],
        }
        stats = ContendedDevice(RoundRobinScheduler()).run(streams)
        assert stats["zero"].completed == 5
        assert stats["zero"].device_time == 0.0
        assert stats["busy"].completed == 5

    def test_equal_release_ties_are_alphabetical(self):
        # all VMs ready at t=0 with identical tags: FIFO must pick the
        # alphabetically first, deterministically
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["c", "a", "b"], count=1))
        order = sorted(stats, key=lambda vm: stats[vm].completions[0])
        assert order == ["a", "b", "c"]

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.lists(
                st.builds(
                    WorkItem,
                    st.floats(min_value=0.0, max_value=5e-3),
                    st.floats(min_value=0.0, max_value=2e-3),
                ),
                min_size=0,
                max_size=12,
            ),
            min_size=1,
            max_size=4,
        ),
        st.sampled_from(["fifo", "rr", "fair"]),
    )
    def test_device_time_conserved_under_any_policy(self, streams, kind):
        scheduler = {
            "fifo": FifoScheduler,
            "rr": RoundRobinScheduler,
            "fair": FairShareScheduler,
        }[kind]()
        stats = ContendedDevice(scheduler).run(streams)
        expected = sum(
            item.duration for items in streams.values() for item in items
        )
        observed = sum(s.device_time for s in stats.values())
        assert observed == pytest.approx(expected)
        for vm, entry in stats.items():
            assert entry.completed == len(streams[vm])
