"""Tests for rate limiting and device-time scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.hypervisor.policy import RateLimiter, ResourcePolicy, VMPolicy
from repro.hypervisor.scheduler import (
    ContendedDevice,
    FairShareScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    WorkItem,
    jain_fairness,
)


class TestRateLimiter:
    def make(self, rate, burst=1):
        policy = ResourcePolicy()
        policy.set_policy("vm", VMPolicy(command_rate=rate,
                                         command_burst=burst))
        return RateLimiter(policy)

    def test_unlimited_by_default(self):
        limiter = RateLimiter(ResourcePolicy())
        assert limiter.next_allowed("anyone", 5.0) == 5.0

    def test_burst_passes_immediately(self):
        limiter = self.make(rate=10.0, burst=4)
        for _ in range(4):
            assert limiter.next_allowed("vm", 0.0) == 0.0

    def test_sustained_rate_enforced(self):
        limiter = self.make(rate=10.0, burst=1)
        releases = [limiter.next_allowed("vm", 0.0) for _ in range(11)]
        # first token free, then one per 0.1s
        assert releases[0] == 0.0
        assert releases[10] == pytest.approx(1.0)

    def test_tokens_refill_over_time(self):
        limiter = self.make(rate=10.0, burst=2)
        limiter.next_allowed("vm", 0.0)
        limiter.next_allowed("vm", 0.0)
        # 0.5 s later, 2 tokens are back (capped at burst)
        assert limiter.next_allowed("vm", 0.5) == 0.5

    def test_release_never_before_arrival(self):
        limiter = self.make(rate=100.0, burst=8)
        for arrival in (0.0, 0.001, 0.5, 0.5, 2.0):
            assert limiter.next_allowed("vm", arrival) >= arrival

    def test_delay_metric_accumulates(self):
        limiter = self.make(rate=10.0, burst=1)
        for _ in range(5):
            limiter.next_allowed("vm", 0.0)
        assert limiter.delay_injected["vm"] > 0

    def test_independent_vms(self):
        policy = ResourcePolicy()
        policy.set_policy("slow", VMPolicy(command_rate=1.0, command_burst=1))
        limiter = RateLimiter(policy)
        limiter.next_allowed("slow", 0.0)
        delayed = limiter.next_allowed("slow", 0.0)
        assert delayed > 0
        assert limiter.next_allowed("fast", 0.0) == 0.0

    def test_bad_rate_rejected(self):
        limiter = self.make(rate=0.0)
        with pytest.raises(ValueError):
            limiter.next_allowed("vm", 0.0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=50))
    def test_releases_monotone_for_monotone_arrivals(self, deltas):
        limiter = self.make(rate=5.0, burst=2)
        arrivals = []
        t = 0.0
        for d in deltas:
            t += d
            arrivals.append(t)
        releases = [limiter.next_allowed("vm", a) for a in arrivals]
        assert all(r2 >= r1 for r1, r2 in zip(releases, releases[1:]))


def uniform_streams(vms, count=50, duration=1e-3, think=0.0):
    return {vm: [WorkItem(duration, think) for _ in range(count)]
            for vm in vms}


class TestContendedDevice:
    def test_everything_completes(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=10))
        assert stats["a"].completed == 10
        assert stats["b"].completed == 10

    def test_device_serializes(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=10))
        total = stats["a"].device_time + stats["b"].device_time
        finish = max(s.finish_time for s in stats.values())
        assert finish == pytest.approx(total)

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            ContendedDevice(FifoScheduler()).run({})

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WorkItem(-1.0)

    def test_fair_share_equalizes_heterogeneous_demand(self):
        # "hog" issues 10x longer kernels than "mouse"
        streams = {
            "hog": [WorkItem(10e-3) for _ in range(200)],
            "mouse": [WorkItem(1e-3) for _ in range(200)],
        }
        device = ContendedDevice(FairShareScheduler())
        stats = device.run(streams)
        # while both were active, device time should be near-equal:
        # compare usage at the moment the mouse finished
        mouse_done = stats["mouse"].finish_time
        hog_time_before = sum(
            10e-3 for t in stats["hog"].completions if t <= mouse_done
        )
        mouse_time = stats["mouse"].device_time
        assert jain_fairness([hog_time_before, mouse_time]) > 0.95

    def test_weighted_fair_share(self):
        policy = ResourcePolicy()
        policy.set_policy("gold", VMPolicy(weight=3.0))
        policy.set_policy("bronze", VMPolicy(weight=1.0))
        streams = {
            "gold": [WorkItem(1e-3) for _ in range(400)],
            "bronze": [WorkItem(1e-3) for _ in range(400)],
        }
        device = ContendedDevice(FairShareScheduler(policy))
        stats = device.run(streams)
        done = min(s.finish_time for s in stats.values())
        gold = sum(1 for t in stats["gold"].completions if t <= done)
        bronze = sum(1 for t in stats["bronze"].completions if t <= done)
        assert gold / bronze == pytest.approx(3.0, rel=0.15)

    def test_round_robin_alternates(self):
        device = ContendedDevice(RoundRobinScheduler())
        stats = device.run(uniform_streams(["a", "b"], count=20))
        # completions interleave: finish times alternate between VMs
        merged = sorted(
            [(t, "a") for t in stats["a"].completions]
            + [(t, "b") for t in stats["b"].completions]
        )
        alternations = sum(
            1 for (t1, v1), (t2, v2) in zip(merged, merged[1:]) if v1 != v2
        )
        assert alternations >= len(merged) * 0.8

    def test_fifo_favors_nobody_with_equal_streams(self):
        device = ContendedDevice(FifoScheduler())
        stats = device.run(uniform_streams(["a", "b", "c"], count=30))
        times = [s.device_time for s in stats.values()]
        assert jain_fairness(times) > 0.99

    def test_rate_limited_stream_throttled(self):
        policy = ResourcePolicy()
        policy.set_policy("throttled",
                          VMPolicy(command_rate=100.0, command_burst=1))
        limiter = RateLimiter(policy)
        device = ContendedDevice(FifoScheduler(), rate_limiter=limiter)
        streams = uniform_streams(["throttled", "free"], count=100,
                                  duration=0.1e-3)
        stats = device.run(streams)
        # 100 commands at 100/s ≈ 1s for the throttled VM
        assert stats["throttled"].finish_time >= 0.9
        assert stats["free"].finish_time < 0.1

    def test_think_time_creates_idle_device(self):
        device = ContendedDevice(FifoScheduler())
        streams = {"a": [WorkItem(1e-3, think_time=9e-3) for _ in range(10)]}
        stats = device.run(streams)
        assert stats["a"].finish_time == pytest.approx(
            10 * 1e-3 + 9 * 9e-3
        )


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_or_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0
