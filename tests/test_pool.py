"""Device pools: classes, placement, the pool engine, integration."""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypervisor.policy import RateLimiter, ResourcePolicy, VMPolicy
from repro.hypervisor.pool import (
    BASELINE_TRANSFER_BPS,
    DEVICE_TIME_QUOTA,
    DeviceClass,
    DevicePool,
    PoolCapacityError,
    PoolScheduler,
    PoolWorkItem,
    PooledDevice,
    nominal_cost,
)
from repro.hypervisor.scheduler import (
    ContendedDevice,
    FairShareScheduler,
    WorkItem,
    jain_fairness,
)

GIB = 1024**3


def uniform_streams(vm_count, items=20, duration=1e-3, think=0.0):
    return {
        f"vm-{i:02d}": [WorkItem(duration, think_time=think)
                        for _ in range(items)]
        for i in range(vm_count)
    }


class TestDeviceClass:
    def test_baseline_gpu_spec_is_the_default_spec(self):
        from repro.opencl.device import DeviceSpec

        spec = DeviceClass.baseline_gpu().gpu_spec()
        assert spec == DeviceSpec()

    def test_scaled_gpu_spec(self):
        from repro.opencl.device import DeviceSpec

        base = DeviceSpec()
        spec = DeviceClass.big_gpu().gpu_spec()
        assert spec.flops == base.flops * 2.0
        assert spec.mem_bandwidth == base.mem_bandwidth * 2.0
        assert spec.pcie_bandwidth == base.pcie_bandwidth * 2.0
        assert spec.global_mem_bytes == 16 * GIB

    def test_baseline_ncs_spec_is_the_default_spec(self):
        from repro.mvnc.device import NCSDeviceSpec

        cls = DeviceClass(name="stick")  # scales 1.0 => default spec
        assert cls.ncs_spec() == NCSDeviceSpec()

    def test_qat_spec_scales_both_directions(self):
        from repro.qat.device import QATDeviceSpec

        base = QATDeviceSpec()
        spec = DeviceClass.qat().qat_spec()
        assert spec.compress_bps == base.compress_bps * 0.4
        assert spec.decompress_bps == base.decompress_bps * 0.4

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            DeviceClass(name="bad", compute_scale=0.0)
        with pytest.raises(ValueError):
            DeviceClass(name="bad", memory_bytes=0)

    def test_wall_time_scales_compute_and_transfer(self):
        device = PooledDevice("d0", DeviceClass.big_gpu())
        item = PoolWorkItem(duration=1.0, transfer_bytes=12e9)
        # compute halves (2x speed); transfer halves (2x bandwidth)
        assert device.wall_time(item) == pytest.approx(0.5 + 0.5)
        assert nominal_cost(item) == pytest.approx(2.0)

    def test_pool_work_item_rejects_negative_transfer(self):
        with pytest.raises(ValueError):
            PoolWorkItem(duration=1.0, transfer_bytes=-1.0)


class TestPlacement:
    def test_capacity_proportional_spread(self):
        pool = DevicePool.from_classes(
            [DeviceClass.big_gpu(), DeviceClass.baseline_gpu(),
             DeviceClass.baseline_gpu()]
        )
        for i in range(40):
            pool.place(f"vm-{i:02d}")
        counts = {d.device_id: len(d.resident) for d in pool.devices}
        assert counts["dev0-big-gpu"] == 20
        assert counts["dev1-gtx1080"] == 10
        assert counts["dev2-gtx1080"] == 10

    def test_placement_is_sticky(self):
        pool = DevicePool.from_classes(
            [DeviceClass.baseline_gpu(), DeviceClass.baseline_gpu()]
        )
        first = pool.place("vm-a")
        assert pool.place("vm-a") is first

    def test_memory_reservation_and_capacity_error(self):
        policy = ResourcePolicy()
        policy.set_policy("big", VMPolicy(memory_bytes=3 * GIB))
        policy.set_policy("huge", VMPolicy(memory_bytes=64 * GIB))
        pool = DevicePool.from_classes(
            [DeviceClass.small_gpu(), DeviceClass.baseline_gpu()],
            policy=policy,
        )
        # 3 GiB cannot fit the 2 GiB small GPU
        assert pool.place("big").device_class.name == "gtx1080"
        with pytest.raises(PoolCapacityError):
            pool.place("huge")

    def test_qos_steering_breaks_ties(self):
        # load the big GPU with resident weight so the candidate sees
        # *equal* projected load on both members; only steering differs.
        # small: w / 0.25; big: (R + w) / 2.0 — equal when R == 7w.
        def tied_pool(resident_weight):
            policy = ResourcePolicy()
            policy.set_policy("rt", VMPolicy(qos="realtime"))    # w = 4
            policy.set_policy("be", VMPolicy(qos="best-effort"))  # w = .25
            policy.set_policy("heavy", VMPolicy(weight=resident_weight))
            pool = DevicePool.from_classes(
                [DeviceClass.small_gpu(), DeviceClass.big_gpu()],
                policy=policy,
            )
            pool.migrate("heavy", pool.devices[1])
            return pool

        rt_home = tied_pool(7 * 4.0).place("rt")
        assert rt_home.device_class.name == "big-gpu"
        be_home = tied_pool(7 * 0.25).place("be")
        assert be_home.device_class.name == "small-gpu"

    def test_release_frees_reservation(self):
        policy = ResourcePolicy()
        policy.set_policy("vm-a", VMPolicy(memory_bytes=GIB))
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()],
                                       policy=policy)
        home = pool.place("vm-a")
        assert home.reserved_bytes == GIB
        pool.release("vm-a")
        assert home.reserved_bytes == 0
        assert "vm-a" not in pool.assignments

    def test_empty_pool_raises(self):
        with pytest.raises(PoolCapacityError):
            DevicePool().place("vm-a")

    def test_duplicate_device_id_rejected(self):
        pool = DevicePool()
        pool.add(DeviceClass.baseline_gpu(), device_id="d0")
        with pytest.raises(ValueError):
            pool.add(DeviceClass.ncs(), device_id="d0")


class TestPoolEngine:
    def test_single_device_matches_contended_device_exactly(self):
        """A 1-member baseline pool is the pre-pool scheduler, exactly."""
        streams = {
            "vm-a": [WorkItem(2e-3, think_time=1e-3) for _ in range(50)],
            "vm-b": [WorkItem(1e-3) for _ in range(80)],
            "vm-c": [WorkItem(5e-4, think_time=5e-4) for _ in range(60)],
        }
        policy = ResourcePolicy()
        policy.set_policy("vm-a", VMPolicy(weight=2.0))
        want = ContendedDevice(FairShareScheduler(policy)).run(
            {vm: list(items) for vm, items in streams.items()}
        )
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()],
                                       policy=policy)
        got = PoolScheduler(pool).run(streams)
        for vm in streams:
            assert got.vm_stats[vm].completed == want[vm].completed
            assert got.vm_stats[vm].finish_time == want[vm].finish_time
            assert got.vm_stats[vm].total_wait == want[vm].total_wait
            assert got.vm_stats[vm].completions == want[vm].completions

    def test_fast_device_finishes_sooner(self):
        streams = uniform_streams(1, items=10)
        slow = PoolScheduler(
            DevicePool.from_classes([DeviceClass.baseline_gpu()])
        ).run({k: list(v) for k, v in streams.items()})
        fast = PoolScheduler(
            DevicePool.from_classes([DeviceClass.big_gpu()])
        ).run(streams)
        assert fast.makespan == pytest.approx(slow.makespan / 2.0)
        # nominal service is device-independent
        assert fast.total_nominal == pytest.approx(slow.total_nominal)

    def test_stealing_improves_makespan(self):
        # 2 VMs homed on one device, the second device idle: stealing
        # must move work over and roughly halve the makespan
        classes = [DeviceClass.baseline_gpu(), DeviceClass.baseline_gpu()]
        streams = uniform_streams(2, items=100)

        def run(allow):
            pool = DevicePool.from_classes(classes)
            pool.migrate("vm-00", pool.devices[0])
            pool.migrate("vm-01", pool.devices[0])
            return PoolScheduler(pool, allow_stealing=allow).run(
                {k: list(v) for k, v in streams.items()}
            )

        without = run(False)
        with_steal = run(True)
        assert with_steal.steals > 0
        assert with_steal.makespan < without.makespan * 0.75

    def test_stealing_keeps_home_placement(self):
        pool = DevicePool.from_classes(
            [DeviceClass.baseline_gpu(), DeviceClass.baseline_gpu()]
        )
        pool.migrate("vm-00", pool.devices[0])
        pool.migrate("vm-01", pool.devices[0])
        result = PoolScheduler(pool).run(uniform_streams(2, items=50))
        assert result.steals > 0
        assert result.placements == {"vm-00": "dev0-gtx1080",
                                     "vm-01": "dev0-gtx1080"}

    def test_quota_drops_excess_items(self):
        policy = ResourcePolicy()
        policy.set_policy(
            "vm-00",
            VMPolicy(resource_limits={DEVICE_TIME_QUOTA: 10.5e-3}),
        )
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()],
                                       policy=policy)
        result = PoolScheduler(pool).run(uniform_streams(2, items=20))
        assert result.vm_stats["vm-00"].completed == 10
        assert result.quota_dropped["vm-00"] == 10
        assert result.vm_stats["vm-01"].completed == 20
        assert result.quota_dropped["vm-01"] == 0

    def test_open_loop_arrivals_respected(self):
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()])
        arrivals = [0.0, 0.5, 1.0]
        result = PoolScheduler(pool).run(
            {"vm-a": [WorkItem(1e-3, think_time=9.0)] * 3},
            arrivals={"vm-a": arrivals},
        )
        # think_time ignored: items start at their arrival stamps
        starts = [end - 1e-3 for end in result.vm_stats["vm-a"].completions]
        assert starts == pytest.approx(arrivals)

    def test_short_arrival_vector_rejected(self):
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()])
        with pytest.raises(ValueError):
            PoolScheduler(pool).run(
                {"vm-a": [WorkItem(1e-3)] * 3}, arrivals={"vm-a": [0.0]}
            )

    def test_rate_limiter_consulted_once_per_item(self):
        class CountingLimiter(RateLimiter):
            def __init__(self):
                super().__init__(ResourcePolicy())
                self.calls = 0

            def next_allowed(self, vm_id, submit):
                self.calls += 1
                return submit

        limiter = CountingLimiter()
        pool = DevicePool.from_classes(
            [DeviceClass.baseline_gpu(), DeviceClass.baseline_gpu()]
        )
        PoolScheduler(pool, rate_limiter=limiter).run(
            uniform_streams(4, items=5)
        )
        assert limiter.calls == 20

    def test_heterogeneous_fairness(self):
        pool = DevicePool.from_classes(
            [DeviceClass.big_gpu(), DeviceClass.baseline_gpu(),
             DeviceClass.small_gpu(), DeviceClass.small_gpu()]
        )
        result = PoolScheduler(pool).run(uniform_streams(16, items=40))
        shares = result.weighted_shares(pool.policy,
                                        horizon=0.5 * result.makespan)
        assert jain_fairness(list(shares.values())) > 0.9

    def test_empty_streams_rejected(self):
        pool = DevicePool.from_classes([DeviceClass.baseline_gpu()])
        with pytest.raises(ValueError):
            PoolScheduler(pool).run({})

    @settings(deadline=None, max_examples=30)
    @given(
        st.dictionaries(
            st.sampled_from(["vm-a", "vm-b", "vm-c"]),
            st.lists(
                st.builds(
                    WorkItem,
                    duration=st.floats(0.0, 1e-2, allow_nan=False),
                    think_time=st.floats(0.0, 1e-3, allow_nan=False),
                ),
                min_size=1, max_size=8,
            ),
            min_size=1, max_size=3,
        ),
        st.lists(
            st.sampled_from([
                DeviceClass.baseline_gpu(), DeviceClass.big_gpu(),
                DeviceClass.small_gpu(), DeviceClass.ncs(),
            ]),
            min_size=1, max_size=4,
        ),
        st.booleans(),
    )
    def test_nominal_service_is_conserved(self, streams, classes, steal):
        """Every submitted item runs exactly once, on some device."""
        pool = DevicePool.from_classes(classes)
        result = PoolScheduler(pool, allow_stealing=steal).run(
            {vm: list(items) for vm, items in streams.items()}
        )
        offered = sum(len(items) for items in streams.values())
        assert sum(s.completed for s in result.vm_stats.values()) == offered
        assert sum(d.completed for d in result.device_stats.values()) \
            == offered
        want_nominal = sum(nominal_cost(i) for items in streams.values()
                           for i in items)
        assert result.total_nominal == pytest.approx(want_nominal)
        per_vm = {vm: sum(c for _, c in result.vm_items[vm])
                  for vm in streams}
        for vm, items in streams.items():
            assert per_vm[vm] == pytest.approx(
                sum(nominal_cost(i) for i in items)
            )


class TestHypervisorIntegration:
    def make_pooled_hypervisor(self, classes, apis=("opencl",)):
        from repro.stack import make_hypervisor

        hv = make_hypervisor(apis=apis)
        for device_class in classes:
            hv.add_device(device_class)
        return hv

    def test_workers_bind_to_pool_members(self):
        from repro.workloads import BFSWorkload

        hv = self.make_pooled_hypervisor(
            [DeviceClass.baseline_gpu(), DeviceClass.baseline_gpu()]
        )
        for vm_id in ("vm-a", "vm-b"):
            vm = hv.create_vm(vm_id)
            result = BFSWorkload(scale=0.25).run(vm.library("opencl"))
            assert result.verified
        homes = {vm: hv.pool.assignments[vm].device_id
                 for vm in ("vm-a", "vm-b")}
        assert homes["vm-a"] != homes["vm-b"]
        for vm_id in ("vm-a", "vm-b"):
            worker = hv.worker(vm_id, "opencl")
            assert worker.pool_device is hv.pool.assignments[vm_id]

    def test_coplaced_workers_share_native_device(self):
        from repro.workloads import BFSWorkload

        hv = self.make_pooled_hypervisor([DeviceClass.baseline_gpu()])
        for vm_id in ("vm-a", "vm-b"):
            vm = hv.create_vm(vm_id)
            BFSWorkload(scale=0.25).run(vm.library("opencl"))
        member = hv.pool.devices[0]
        native = member.native_device("opencl")
        # both tenants accumulated time on one shared timeline
        assert native.busy_time > 0
        assert hv.worker("vm-a", "opencl").pool_device is member
        assert hv.worker("vm-b", "opencl").pool_device is member

    def test_destroy_vm_releases_placement(self):
        hv = self.make_pooled_hypervisor([DeviceClass.baseline_gpu()])
        hv.create_vm("vm-a")
        hv.worker("vm-a", "opencl")
        assert "vm-a" in hv.pool.assignments
        hv.destroy_vm("vm-a")
        assert "vm-a" not in hv.pool.assignments

    def test_admin_report_has_pool_section(self):
        from repro.workloads import BFSWorkload

        hv = self.make_pooled_hypervisor(
            [DeviceClass.baseline_gpu(), DeviceClass.ncs()]
        )
        vm = hv.create_vm("vm-a")
        BFSWorkload(scale=0.25).run(vm.library("opencl"))
        report = hv.admin_report()
        pool = report["_pool"]
        assert pool["total_capacity"] == pytest.approx(1.05)
        devices = pool["devices"]
        assert set(devices) == {"dev0-gtx1080", "dev1-ncs"}
        home = hv.pool.assignments["vm-a"].device_id
        assert devices[home]["vms"] == ["vm-a"]
        assert devices[home]["apis"]["opencl"]["busy_time"] > 0
        assert 0 < devices[home]["apis"]["opencl"]["utilization"] <= 1

    def test_absorb_pool_is_idempotent(self):
        from repro.telemetry.metrics import MetricsRegistry
        from repro.workloads import BFSWorkload

        hv = self.make_pooled_hypervisor([DeviceClass.baseline_gpu()])
        vm = hv.create_vm("vm-a")
        BFSWorkload(scale=0.25).run(vm.library("opencl"))
        registry = MetricsRegistry()
        registry.absorb_pool(hv.pool)
        first = registry.devices["dev0-gtx1080"].busy_time
        assert first > 0
        registry.absorb_pool(hv.pool)
        assert registry.devices["dev0-gtx1080"].busy_time == first
        assert registry.devices["dev0-gtx1080"].vms == ["vm-a"]


class TestFigure5BitIdentity:
    def test_single_member_pool_reproduces_stored_json_exactly(self):
        """Routing figure 5 through a 1-member baseline pool changes
        nothing: every runtime matches the stored JSON bit for bit."""
        from repro.harness import run_figure5
        from repro.stack import make_hypervisor

        def factory(api_name):
            hv = make_hypervisor(apis=(api_name,))
            hv.add_device(DeviceClass.baseline_gpu())
            return hv

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_figure5.json")
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        rows = run_figure5(hypervisor_factory=factory)
        got = {
            row.name: (row.native.runtime, row.virtualized.runtime)
            for row in rows
        }
        want = {
            row["name"]: (row["native_runtime"], row["virtualized_runtime"])
            for row in stored["rows"]
        }
        assert got == want


class TestRebalancer:
    """Elastic pool rebalancing: hot members shed tenants live."""

    def make_hot_pool(self):
        from repro.stack import make_hypervisor
        from repro.workloads import BFSWorkload

        hv = make_hypervisor(apis=("opencl",))
        hv.add_device(DeviceClass.baseline_gpu(), "dev-hot")
        for vm_id in ("vm-a", "vm-b"):
            vm = hv.create_vm(vm_id)
            assert BFSWorkload(scale=0.25).run(
                vm.library("opencl")).verified
        # a cold member joins the pool after the load landed
        hv.add_device(DeviceClass.baseline_gpu(), "dev-cold")
        return hv

    def test_rebalance_moves_busy_tenant_to_cold_member(self):
        from repro.hypervisor.pool import PoolRebalancer, RebalancePolicy
        from repro.workloads import BFSWorkload

        hv = self.make_hot_pool()
        rebalancer = PoolRebalancer(
            hv, policy=RebalancePolicy(min_spread=0.05,
                                       min_hot_utilization=0.01))
        choice = rebalancer.pick()
        assert choice is not None
        victim, hot, cold = choice
        assert hot.device_id == "dev-hot"
        assert cold.device_id == "dev-cold"
        assert victim in ("vm-a", "vm-b")

        reports = rebalancer.rebalance_once()
        assert reports and all(not r.aborted for r in reports)
        assert all(r.mode == "live" for r in reports)
        assert hv.pool.assignments[victim].device_id == "dev-cold"
        # the moved tenant keeps serving, now on the cold member
        result = BFSWorkload(scale=0.25).run(
            hv.vms[victim].library("opencl"))
        assert result.verified

    def test_idle_pool_left_alone(self):
        from repro.hypervisor.pool import PoolRebalancer
        from repro.stack import make_hypervisor

        hv = make_hypervisor(apis=("opencl",))
        hv.add_device(DeviceClass.baseline_gpu(), "dev-a")
        hv.add_device(DeviceClass.baseline_gpu(), "dev-b")
        rebalancer = PoolRebalancer(hv)
        assert rebalancer.pick() is None
        assert rebalancer.rebalance_once() == []

    def test_rebalancer_requires_a_pool(self):
        from repro.hypervisor.pool import PoolRebalancer
        from repro.stack import make_hypervisor

        hv = make_hypervisor(apis=("opencl",))
        with pytest.raises(PoolCapacityError):
            PoolRebalancer(hv)

    def test_policy_validation(self):
        from repro.hypervisor.pool import RebalancePolicy

        with pytest.raises(ValueError):
            RebalancePolicy(min_spread=1.5)
        with pytest.raises(ValueError):
            RebalancePolicy(min_hot_utilization=-0.1)

    def test_live_migration_honours_explicit_target(self):
        from repro.migration import MigrationError
        from repro.stack import make_hypervisor
        from repro.workloads import BFSWorkload

        hv = make_hypervisor(apis=("opencl",))
        hv.add_device(DeviceClass.baseline_gpu(), "dev-a")
        vm = hv.create_vm("vm-t")
        assert BFSWorkload(scale=0.25).run(vm.library("opencl")).verified
        hv.add_device(DeviceClass.baseline_gpu(), "dev-b")

        # migrating onto the member the VM already lives on is an error
        with pytest.raises(MigrationError):
            hv.start_live_migration("vm-t", "opencl",
                                    target_device_id="dev-a")

        report = hv.live_migrate_vm("vm-t", "opencl",
                                    target_device_id="dev-b")
        assert not report.aborted
        assert report.target_device == "dev-b"
        assert hv.pool.assignments["vm-t"].device_id == "dev-b"
        worker = hv.worker("vm-t", "opencl")
        assert worker.pool_device.device_id == "dev-b"
        assert BFSWorkload(scale=0.25).run(vm.library("opencl")).verified
