"""Property-based hardening across the core components.

These tests attack the invariants that keep the system trustworthy: the
router must survive arbitrary guest bytes, the rate limiter must never
exceed its configured envelope, the migration recorder must track object
lifetimes exactly, expressions must round-trip through their source
form, and the contended-device engine must conserve time.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypervisor.policy import RateLimiter, ResourcePolicy, VMPolicy
from repro.hypervisor.scheduler import (
    ContendedDevice,
    FairShareScheduler,
    FifoScheduler,
    WorkItem,
)
from repro.migration.recorder import CallRecorder
from repro.remoting.codec import (
    CodecError,
    Command,
    Reply,
    decode_message,
    decode_value,
    encode_message,
)
from repro.remoting.handles import HandleError, HandleTable
from repro.spec.expr import (
    Binary,
    Conditional,
    Literal,
    Name,
    SizeOf,
    Unary,
    evaluate,
    parse_expr,
)
from repro.spec.model import RecordKind


class TestCodecRobustness:
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_decoder(self, blob):
        """Untrusted guest bytes must fail cleanly, not explode."""
        try:
            decode_message(blob)
        except CodecError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=120))
    def test_random_value_bytes_fail_cleanly(self, blob):
        try:
            decode_value(blob)
        except CodecError:
            pass

    @given(st.binary(max_size=64))
    def test_truncations_of_valid_message_fail_cleanly(self, payload):
        wire = encode_message(
            Command(seq=1, vm_id="v", api="a", function="f",
                    in_buffers={"d": payload})
        )
        for cut in range(0, len(wire), max(1, len(wire) // 10)):
            truncated = wire[:cut]
            try:
                result = decode_message(truncated)
            except CodecError:
                continue
            # decoding may only succeed on the complete frame
            assert truncated == wire and isinstance(result, Command)

    @given(st.binary(max_size=64))
    def test_single_byte_corruptions_never_crash(self, payload):
        wire = bytearray(encode_message(
            Reply(seq=2, out_payloads={"x": payload})
        ))
        for index in range(0, len(wire), max(1, len(wire) // 8)):
            corrupted = bytearray(wire)
            corrupted[index] ^= 0xFF
            try:
                decode_message(bytes(corrupted))
            except CodecError:
                pass


class TestRateLimiterEnvelope:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.integers(min_value=1, max_value=16),
        st.lists(st.floats(min_value=0.0, max_value=0.05), min_size=5,
                 max_size=120),
    )
    def test_never_exceeds_token_envelope(self, rate, burst, gaps):
        policy = ResourcePolicy()
        policy.set_policy("vm", VMPolicy(command_rate=rate,
                                         command_burst=burst))
        limiter = RateLimiter(policy)
        arrival = 0.0
        releases = []
        for gap in gaps:
            arrival += gap
            releases.append(limiter.next_allowed("vm", arrival))
        # in any window of length W, at most rate*W + burst releases
        window = 0.5
        for start in releases:
            in_window = sum(
                1 for r in releases if start <= r < start + window
            )
            assert in_window <= rate * window + burst + 1e-6

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=0.1), min_size=2,
                    max_size=60))
    def test_releases_monotone(self, gaps):
        policy = ResourcePolicy()
        policy.set_policy("vm", VMPolicy(command_rate=50.0,
                                         command_burst=2))
        limiter = RateLimiter(policy)
        arrival = 0.0
        previous = -1.0
        for gap in gaps:
            arrival += gap
            release = limiter.next_allowed("vm", arrival)
            assert release >= arrival
            assert release >= previous
            previous = release


def _command(seq, handles=None):
    return Command(seq=seq, vm_id="v", api="a", function="f",
                   handles=handles or {})


class TestRecorderModel:
    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(st.sampled_from(["create", "destroy"]),
                  st.integers(min_value=0, max_value=12)),
        max_size=60,
    ))
    def test_log_tracks_live_set_exactly(self, ops):
        """The recorder's created ids equal a straightforward live-set
        model, for any create/destroy interleaving."""
        recorder = CallRecorder()
        live = set()
        next_id = 100
        created_ids = {}
        for op, key in ops:
            if op == "create":
                handle = next_id
                next_id += 1
                created_ids[key] = handle
                live.add(handle)
                recorder.record(
                    _command(handle),
                    Reply(seq=handle, new_handles={"h": handle}),
                    RecordKind.CREATE,
                )
            else:
                handle = created_ids.get(key)
                if handle is None or handle not in live:
                    continue
                live.discard(handle)
                recorder.record(
                    _command(0, handles={"h": handle}), Reply(seq=0),
                    RecordKind.DESTROY,
                )
        assert recorder.live_created_ids() == live


class TestHandleTableModel:
    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "free", "lookup"]),
                  st.integers(min_value=0, max_value=10)),
        max_size=80,
    ))
    def test_matches_dict_model(self, ops):
        table = HandleTable("vm-prop")
        model = {}
        objects = {}
        for op, key in ops:
            if op == "alloc":
                if key in model:  # re-allocating a slot frees the old one
                    table.free(model.pop(key))
                obj = object()
                objects[key] = obj
                model[key] = table.allocate(obj)
            elif op == "free" and key in model:
                guest_id = model.pop(key)
                assert table.free(guest_id) is objects[key]
            elif op == "lookup":
                if key in model:
                    assert table.lookup(model[key]) is objects[key]
                else:
                    with pytest.raises(HandleError):
                        table.lookup(0xDEAD0000 + key)
        assert len(table) == len(model)


def _expr_strategy():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=100).map(
            lambda v: Literal(float(v))),
        st.sampled_from(["a", "b", "c"]).map(Name),
        st.just(SizeOf("float")),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*"]), children,
                      children).map(lambda t: Binary(*t)),
            st.tuples(st.sampled_from(["<", "==", ">="]), children,
                      children).map(lambda t: Binary(*t)),
            children.map(lambda e: Unary("-", e)),
            st.tuples(children, children, children).map(
                lambda t: Conditional(*t)),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionRoundTrip:
    @settings(max_examples=80)
    @given(_expr_strategy(),
           st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_source_round_trip_preserves_value(self, expr, a, b, c):
        env = {"a": a, "b": b, "c": c}
        reparsed = parse_expr(expr.to_source())
        assert evaluate(reparsed, env) == evaluate(expr, env)

    @settings(max_examples=80)
    @given(_expr_strategy(),
           st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_python_compilation_matches_evaluator(self, expr, a, b, c):
        from repro.codegen.pyexpr import expr_to_python

        env = {"a": a, "b": b, "c": c}
        code = expr_to_python(expr, {"a", "b", "c"}, {}, {"float": 4})
        python_value = eval(code, dict(env))
        # C semantics: booleans are 1/0
        if isinstance(python_value, bool):
            python_value = 1.0 if python_value else 0.0
        assert float(python_value) == evaluate(expr, env)


class TestSchedulerConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                 max_size=4),
        st.sampled_from(["fifo", "fair"]),
    )
    def test_time_conserved_and_no_overlap(self, counts, policy):
        streams = {
            f"vm{i}": [WorkItem(1e-3) for _ in range(count)]
            for i, count in enumerate(counts)
        }
        scheduler = FifoScheduler() if policy == "fifo" \
            else FairShareScheduler()
        stats = ContendedDevice(scheduler).run(streams)
        # everything completed
        for vm, items in streams.items():
            assert stats[vm].completed == len(items)
        # the device never overlaps: merged completions are ≥1ms apart
        merged = sorted(
            t for s in stats.values() for t in s.completions
        )
        for first, second in zip(merged, merged[1:]):
            assert second - first >= 1e-3 - 1e-12
        # busy time equals total demand
        total = sum(s.device_time for s in stats.values())
        assert total == pytest.approx(sum(counts) * 1e-3)
