"""Tests for the QuickAssist extension: native API, spec, forwarding."""

import zlib

import pytest

from repro.codegen.verify import verify_spec
from repro.qat import api
from repro.qat.device import QATDeviceSpec, SimulatedQAT
from repro.remoting.buffers import OutBox
from repro.stack import load_spec, make_hypervisor
from repro.workloads.compression import CompressionWorkload, make_corpus


@pytest.fixture()
def qat():
    with api.qat_session([SimulatedQAT()]) as sess:
        yield sess


def start_instance(sess):
    box = OutBox()
    assert api.cpaDcStartInstance(0, box) == api.CPA_STATUS_SUCCESS
    return box.value


def open_session(instance, direction, level=6):
    box = OutBox()
    assert api.cpaDcInitSession(instance, box, level, direction) == \
        api.CPA_STATUS_SUCCESS
    return box.value


class TestInstances:
    def test_num_instances(self, qat):
        box = OutBox()
        assert api.cpaDcGetNumInstances(box) == api.CPA_STATUS_SUCCESS
        assert box.value == 1

    def test_start_bad_index(self, qat):
        assert api.cpaDcStartInstance(5, OutBox()) == \
            api.CPA_STATUS_INVALID_PARAM

    def test_double_start(self, qat):
        start_instance(qat)
        assert api.cpaDcStartInstance(0, OutBox()) == api.CPA_STATUS_RESOURCE

    def test_stop_with_open_sessions_refused(self, qat):
        instance = start_instance(qat)
        session = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        assert api.cpaDcStopInstance(instance) == api.CPA_STATUS_RESOURCE
        api.cpaDcRemoveSession(session)
        assert api.cpaDcStopInstance(instance) == api.CPA_STATUS_SUCCESS


class TestSessions:
    def test_bad_level(self, qat):
        instance = start_instance(qat)
        assert api.cpaDcInitSession(instance, OutBox(), 0,
                                    api.CPA_DC_DIR_COMPRESS) == \
            api.CPA_STATUS_INVALID_PARAM

    def test_bad_direction(self, qat):
        instance = start_instance(qat)
        assert api.cpaDcInitSession(instance, OutBox(), 6, 7) == \
            api.CPA_STATUS_INVALID_PARAM

    def test_session_limit(self):
        spec = QATDeviceSpec(max_sessions=2)
        with api.qat_session([SimulatedQAT(spec)]) as sess:
            instance = start_instance(sess)
            open_session(instance, api.CPA_DC_DIR_COMPRESS)
            open_session(instance, api.CPA_DC_DIR_COMPRESS)
            assert api.cpaDcInitSession(instance, OutBox(), 6,
                                        api.CPA_DC_DIR_COMPRESS) == \
                api.CPA_STATUS_RESOURCE

    def test_double_remove(self, qat):
        instance = start_instance(qat)
        session = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        assert api.cpaDcRemoveSession(session) == api.CPA_STATUS_SUCCESS
        assert api.cpaDcRemoveSession(session) == api.CPA_STATUS_INVALID_PARAM


class TestDataPath:
    def test_compress_round_trip(self, qat):
        instance = start_instance(qat)
        comp = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        data = b"hello hello hello hello " * 100
        dst = bytearray(4096)
        produced = OutBox()
        assert api.cpaDcCompressData(comp, data, len(data), dst, 4096,
                                     produced) == api.CPA_STATUS_SUCCESS
        assert produced.value < len(data)
        assert zlib.decompress(bytes(dst[: produced.value])) == data

    def test_decompress(self, qat):
        instance = start_instance(qat)
        decomp = open_session(instance, api.CPA_DC_DIR_DECOMPRESS)
        original = b"payload " * 64
        blob = zlib.compress(original)
        out = bytearray(len(original))
        restored = OutBox()
        assert api.cpaDcDecompressData(decomp, blob, len(blob), out,
                                       len(out), restored) == \
            api.CPA_STATUS_SUCCESS
        assert bytes(out[: restored.value]) == original

    def test_wrong_direction_rejected(self, qat):
        instance = start_instance(qat)
        comp = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        assert api.cpaDcDecompressData(comp, b"x", 1, bytearray(8), 8,
                                       OutBox()) == \
            api.CPA_STATUS_INVALID_PARAM

    def test_overflow(self, qat):
        instance = start_instance(qat)
        comp = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        import numpy as np
        noise = np.random.default_rng(1).bytes(4096)  # incompressible
        assert api.cpaDcCompressData(comp, noise, 4096, bytearray(16), 16,
                                     OutBox()) == api.CPA_DC_OVERFLOW

    def test_bad_data(self, qat):
        instance = start_instance(qat)
        decomp = open_session(instance, api.CPA_DC_DIR_DECOMPRESS)
        assert api.cpaDcDecompressData(decomp, b"not-zlib", 8,
                                       bytearray(64), 64, OutBox()) == \
            api.CPA_DC_BAD_DATA

    def test_requests_charge_time(self, qat):
        instance = start_instance(qat)
        comp = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        before = qat.clock.now
        data = b"a" * (1 << 20)
        api.cpaDcCompressData(comp, data, len(data), bytearray(1 << 20),
                              1 << 20, OutBox())
        assert qat.clock.now - before >= \
            instance.request_cost(1 << 20, decompress=False)

    def test_stats(self, qat):
        instance = start_instance(qat)
        comp = open_session(instance, api.CPA_DC_DIR_COMPRESS)
        data = b"stats " * 100
        api.cpaDcCompressData(comp, data, len(data), bytearray(2048), 2048,
                              OutBox())
        consumed, produced, requests = OutBox(), OutBox(), OutBox()
        assert api.cpaDcGetStats(instance, consumed, produced, requests) == \
            api.CPA_STATUS_SUCCESS
        assert consumed.value == len(data)
        assert requests.value == 1


class TestSpecAndForwarding:
    def test_spec_parses_and_verifies(self):
        spec = load_spec("qat")
        assert len(spec.functions) == 8
        assert spec.validate() == []
        report = verify_spec(spec)
        assert report.ok, report.errors

    def test_workload_native(self, qat):
        result = CompressionWorkload(blocks=4, block_kib=16).run(api)
        assert result.verified, result.detail

    def test_workload_forwarded(self):
        hv = make_hypervisor(apis=("qat",))
        vm = hv.create_vm("vm-qat")
        result = CompressionWorkload(blocks=4, block_kib=16).run(
            vm.library("qat")
        )
        assert result.verified, result.detail

    def test_forwarding_overhead_small(self):
        """Bulk-request APIs tolerate forwarding, like the NCS."""
        from repro.vclock import VirtualClock

        workload = CompressionWorkload(blocks=8, block_kib=512)
        clock = VirtualClock("qat-native")
        with api.qat_session([SimulatedQAT()], clock=clock):
            assert workload.run(api).verified
        native = clock.now

        hv = make_hypervisor(apis=("qat",))
        vm = hv.create_vm("vm-qat-f")
        assert workload.run(vm.library("qat")).verified
        ratio = vm.clock.now / native
        # a fast engine with medium payloads pays proportionally more
        # than PCIe-attached devices, but stays well under the chatty band
        assert 1.0 <= ratio < 1.25

    def test_handle_table_freed_on_remove(self):
        hv = make_hypervisor(apis=("qat",))
        vm = hv.create_vm("vm-qat-h")
        qa = vm.library("qat")
        worker = hv.worker("vm-qat", "qat") if False else \
            hv.worker("vm-qat-h", "qat")
        instance = OutBox()
        qa.cpaDcStartInstance(0, instance)
        session = OutBox()
        qa.cpaDcInitSession(instance.value, session, 6,
                            api.CPA_DC_DIR_COMPRESS)
        assert session.value in worker.handles
        qa.cpaDcRemoveSession(session.value)
        assert session.value not in worker.handles

    def test_corpus_deterministic(self):
        assert make_corpus(2, 1024, 7) == make_corpus(2, 1024, 7)
