"""Tests for router resource quotas and the spec verifier."""

import numpy as np
import pytest

from repro.codegen.verify import format_report, verify_spec
from repro.guest.library import RemotingError
from repro.hypervisor.policy import ResourcePolicy, VMPolicy
from repro.opencl import types
from repro.remoting.buffers import OutBox
from repro.spec import parse_spec
from repro.spec.cparser import parse_header
from repro.spec.infer import infer_preliminary_spec
from repro.spec.model import RecordKind
from repro.stack import load_spec, make_hypervisor


class TestResourceQuotas:
    def _hypervisor(self, limits):
        policy = ResourcePolicy()
        policy.set_policy("vm-q", VMPolicy(resource_limits=limits))
        return make_hypervisor(policy=policy, apis=("opencl",))

    def _open_context(self, cl):
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        err = OutBox()
        return cl.clCreateContext(None, 1, devs, None, None, err)

    def test_device_memory_quota_enforced(self):
        hv = self._hypervisor({"device_memory": 1 << 20})
        vm = hv.create_vm("vm-q")
        cl = vm.library("opencl")
        ctx = self._open_context(cl)
        err = OutBox()
        # within quota: fine
        first = cl.clCreateBuffer(ctx, 0, 512 * 1024, None, err)
        assert first is not None
        # this one would exceed 1 MiB cumulative: rejected by the router
        with pytest.raises(RemotingError, match="quota exhausted"):
            cl.clCreateBuffer(ctx, 0, 768 * 1024, None, err)
        assert hv.router.metrics_for("vm-q").rejected == 1

    def test_bus_bytes_quota(self):
        hv = self._hypervisor({"bus_bytes": 64 * 1024})
        vm = hv.create_vm("vm-q")
        cl = vm.library("opencl")
        ctx = self._open_context(cl)
        err = OutBox()
        mem = cl.clCreateBuffer(ctx, 0, 16 * 1024, None, err)
        # the create consumed 16 KiB of bus budget; writes use the rest
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs, None)
        queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
        payload = np.zeros(4096, dtype=np.float32)  # 16 KiB per write
        for _ in range(3):
            code = cl.clEnqueueWriteBuffer(queue, mem, types.CL_TRUE, 0,
                                           16 * 1024, payload, 0, None, None)
            assert code == types.CL_SUCCESS
        with pytest.raises(RemotingError, match="bus_bytes"):
            cl.clEnqueueWriteBuffer(queue, mem, types.CL_TRUE, 0, 16 * 1024,
                                    payload, 0, None, None)

    def test_other_vm_unaffected_by_quota(self):
        hv = self._hypervisor({"device_memory": 1024})
        vm_quota = hv.create_vm("vm-q")
        vm_free = hv.create_vm("vm-free")
        ctx_free = self._open_context(vm_free.library("opencl"))
        err = OutBox()
        mem = vm_free.library("opencl").clCreateBuffer(
            ctx_free, 0, 1 << 20, None, err
        )
        assert mem is not None

    def test_unlimited_by_default(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-any")
        cl = vm.library("opencl")
        ctx = self._open_context(cl)
        err = OutBox()
        assert cl.clCreateBuffer(ctx, 0, 64 << 20, None, err) is not None


class TestSpecVerifier:
    def test_shipped_specs_verify_clean(self):
        for api in ("opencl", "mvnc"):
            report = verify_spec(load_spec(api))
            assert report.ok, report.errors
            assert report.checks_passed > 30

    def test_async_with_required_outputs_is_error(self):
        spec = parse_spec(
            "api(x);\n"
            "int f(float *out_data, int out_data_size) {\n"
            "  async;\n"
            "  parameter(out_data) { out; buffer(out_data_size); }\n"
            "}\n"
        )
        report = verify_spec(spec)
        assert not report.ok
        assert any("required outputs" in e for e in report.errors)

    def test_conditional_async_with_outputs_is_property(self):
        spec = parse_spec(
            "api(x);\n"
            "int f(int blocking, float *out_data, int out_data_size) {\n"
            "  if (blocking == 1) sync; else async;\n"
            "  parameter(out_data) { out; buffer(out_data_size); }\n"
            "}\n"
        )
        report = verify_spec(spec)
        assert report.ok
        assert any("synchronization" in p for p in report.properties["f"])

    def test_deallocates_on_non_handle_is_error(self):
        spec = parse_spec(
            "api(x);\nint f(int plain) "
            "{ parameter(plain) { deallocates; } }"
        )
        report = verify_spec(spec)
        assert any("not a handle" in e for e in report.errors)

    def test_orphan_handle_type_warned(self):
        spec = parse_spec(
            "api(x);\ntype(hdl) { handle; }\nint useIt(hdl h);"
        )
        report = verify_spec(spec)
        assert any("never produced" in w for w in report.warnings)

    def test_opaque_params_warned_not_errored(self):
        spec = parse_spec("api(x);\nint f(void *pfn_notify);")
        report = verify_spec(spec)
        assert report.ok
        assert any("not marshalable" in w for w in report.warnings)

    def test_format_report_verbose(self):
        report = verify_spec(load_spec("mvnc"))
        text = format_report(report, verbose=True)
        assert "mvncLoadTensor" in text
        assert "✓" in text


class TestRecordVerbInference:
    def test_deallocate_is_destroy_not_create(self):
        header = parse_header(
            "typedef struct _g *g;\n"
            "int mvncDeallocateGraph(g graph_handle);\n"
            "int mvncAllocateGraph(int dev, g *graph_handle);\n"
        )
        spec = infer_preliminary_spec(header, "m")
        assert spec.function("mvncDeallocateGraph").record_kind \
            is RecordKind.DESTROY
        assert spec.function("mvncAllocateGraph").record_kind \
            is RecordKind.CREATE

    def test_mvnc_spec_kinds_correct(self):
        spec = load_spec("mvnc")
        assert spec.function("mvncDeallocateGraph").record_kind \
            is RecordKind.DESTROY
        assert spec.function("mvncCloseDevice").record_kind \
            is RecordKind.DESTROY
        assert spec.function("mvncOpenDevice").record_kind \
            is RecordKind.CREATE
        assert spec.function("mvncLoadTensor").record_kind is None
