"""Unit tests for buffer helpers."""

import numpy as np
import pytest

from repro.remoting.buffers import (
    OutBox,
    as_byte_view,
    byte_size_of,
    read_bytes,
    write_back,
)


class TestOutBox:
    def test_default_none(self):
        box = OutBox()
        assert box.value is None

    def test_set_and_get(self):
        box = OutBox()
        box.value = 42
        assert box.value == 42
        assert box[0] == 42

    def test_initial_value(self):
        assert OutBox("x").value == "x"

    def test_is_single_slot_list(self):
        assert len(OutBox()) == 1


class TestByteSizeOf:
    def test_numpy(self):
        assert byte_size_of(np.zeros(10, dtype=np.float32)) == 40

    def test_bytes(self):
        assert byte_size_of(b"abcd") == 4
        assert byte_size_of(bytearray(5)) == 5

    def test_str_utf8(self):
        assert byte_size_of("héllo") == 6

    def test_none_is_zero(self):
        assert byte_size_of(None) == 0

    def test_outbox_is_word(self):
        assert byte_size_of(OutBox()) == 8

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            byte_size_of(3.14)


class TestReadBytes:
    def test_numpy_round_trip(self):
        array = np.arange(4, dtype=np.int32)
        assert read_bytes(array) == array.tobytes()

    def test_limit_truncates(self):
        assert read_bytes(b"abcdef", limit=3) == b"abc"

    def test_negative_limit_raises(self):
        with pytest.raises(ValueError):
            read_bytes(b"abc", limit=-1)

    def test_string_utf8(self):
        assert read_bytes("hi") == b"hi"

    def test_none_is_empty(self):
        assert read_bytes(None) == b""


class TestWriteBack:
    def test_numpy_in_place(self):
        target = np.zeros(4, dtype=np.int32)
        source = np.arange(4, dtype=np.int32)
        write_back(target, source.tobytes())
        assert (target == source).all()

    def test_bytearray_in_place(self):
        target = bytearray(4)
        write_back(target, b"\x01\x02\x03\x04")
        assert target == bytearray([1, 2, 3, 4])

    def test_partial_write_allowed(self):
        target = bytearray(8)
        write_back(target, b"ab")
        assert target[:2] == b"ab"
        assert target[2:] == bytes(6)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            write_back(bytearray(2), b"abcd")

    def test_readonly_array_rejected(self):
        target = np.zeros(4, dtype=np.uint8)
        target.flags.writeable = False
        with pytest.raises(ValueError):
            write_back(target, b"\x01")

    def test_immutable_bytes_rejected(self):
        with pytest.raises(TypeError):
            write_back(b"abcd", b"x")

    def test_noncontiguous_view(self):
        base = np.zeros((4, 4), dtype=np.uint8)
        view = as_byte_view(base)
        assert len(view) == 16
