"""Unit and property tests for the wire codec."""

import struct
import time

import pytest
from hypothesis import given, strategies as st

from repro.remoting.codec import (
    CodecError,
    Command,
    Reply,
    StreamFramer,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
)


def wire_values():
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
        st.binary(max_size=40),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=10), children, max_size=5),
        ),
        max_leaves=20,
    )


class TestTaggedValues:
    @given(wire_values())
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_distinct_from_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_bytes_and_str_distinct(self):
        assert decode_value(encode_value(b"abc")) == b"abc"
        assert decode_value(encode_value("abc")) == "abc"

    def test_unencodable_raises(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_non_string_dict_key_raises(self):
        with pytest.raises(CodecError):
            encode_value({1: "x"})

    def test_truncated_data_raises(self):
        data = encode_value("hello world")
        with pytest.raises(CodecError):
            decode_value(data[:-3])

    def test_trailing_bytes_raise(self):
        with pytest.raises(CodecError):
            decode_value(encode_value(1) + b"x")

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            decode_value(b"Z")


class TestCommandReply:
    def make_command(self):
        return Command(
            seq=7,
            vm_id="vm-1",
            api="opencl",
            function="clEnqueueWriteBuffer",
            mode="async",
            scalars={"size": 4096, "blocking": False},
            handles={"queue": 0x1001, "waits": [0x1002, 0x1003], "evt": None},
            in_buffers={"ptr": b"\x00" * 64},
            out_sizes={"result": 16},
            issue_time=1.25,
        )

    def test_command_round_trip(self):
        cmd = self.make_command()
        again = decode_message(encode_message(cmd))
        assert isinstance(again, Command)
        assert again == cmd

    def test_reply_round_trip(self):
        reply = Reply(
            seq=7,
            return_value=0,
            out_payloads={"ptr": b"\x01\x02"},
            new_handles={"event": 0x2001},
            error=None,
            complete_time=3.5,
        )
        again = decode_message(encode_message(reply))
        assert isinstance(again, Reply)
        assert again == reply

    def test_error_reply_round_trip(self):
        reply = Reply(seq=1, error="CL_INVALID_VALUE")
        assert decode_message(encode_message(reply)).error == "CL_INVALID_VALUE"

    def test_payload_bytes(self):
        cmd = self.make_command()
        assert cmd.payload_bytes() == 64
        reply = Reply(seq=1, out_payloads={"a": b"123", "b": b"4567"})
        assert reply.payload_bytes() == 7

    def test_message_magic_checked(self):
        data = bytearray(encode_message(self.make_command()))
        data[0] = 0x00
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_short_message_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\xabC")

    def test_missing_field_rejected(self):
        with pytest.raises(CodecError):
            Command.from_wire_dict({"seq": 1})


class TestStreamFraming:
    def test_messages_survive_arbitrary_chunking(self):
        cmd = Command(seq=1, vm_id="v", api="a", function="f")
        reply = Reply(seq=1, return_value=0)
        stream = encode_message(cmd) + encode_message(reply)
        codec = StreamFramer()
        received = []
        for i in range(0, len(stream), 3):
            codec.feed(stream[i:i + 3])
            received.extend(codec.messages())
        assert len(received) == 2
        assert received[0] == cmd
        assert received[1] == reply

    def test_partial_message_not_delivered(self):
        codec = StreamFramer()
        data = encode_message(Command(seq=1, vm_id="v", api="a", function="f"))
        codec.feed(data[:10])
        assert codec.messages() == []
        codec.feed(data[10:])
        assert len(codec.messages()) == 1

    @given(st.integers(min_value=1, max_value=64))
    def test_chunk_size_invariance(self, chunk):
        commands = [
            Command(seq=i, vm_id="v", api="a", function=f"fn{i}",
                    in_buffers={"d": bytes(range(i % 20))})
            for i in range(5)
        ]
        stream = b"".join(encode_message(c) for c in commands)
        codec = StreamFramer()
        received = []
        for i in range(0, len(stream), chunk):
            codec.feed(stream[i:i + chunk])
            received.extend(codec.messages())
        assert received == commands


class TestHostileFrames:
    """The codec is a trust boundary: every malformation must surface as
    CodecError, never as a raw library exception (struct.error,
    RecursionError, MemoryError) that would escape Router.deliver."""

    def full_command(self):
        return Command(
            seq=9, vm_id="vm-h", api="cl", function="clDoWork",
            mode="async",
            scalars={"i": -3, "f": 2.5, "s": "txt", "n": None, "b": True},
            handles={"h": 0x1000, "hs": [1, 2], "none": None},
            in_buffers={"src": bytes(range(48))},
            out_sizes={"dst": 256},
            issue_time=1.5,
        )

    def test_systematically_truncated_command_frames(self):
        wire = encode_message(self.full_command())
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                decode_message(wire[:cut])

    def test_systematically_truncated_reply_frames(self):
        reply = Reply(seq=4, return_value=7,
                      out_payloads={"dst": b"\x01" * 32},
                      out_scalars={"count": 3}, new_handles={"h": 0x2000},
                      callbacks=[[1, [2, 3]]], complete_time=0.25)
        wire = encode_message(reply)
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                decode_message(wire[:cut])

    def test_systematic_single_byte_corruption_never_escapes(self):
        wire = encode_message(self.full_command())
        for index in range(len(wire)):
            for flip in (0x01, 0x80, 0xFF):
                mutated = bytearray(wire)
                mutated[index] ^= flip
                try:
                    message = decode_message(bytes(mutated))
                except CodecError:
                    continue
                # surviving frames must at least be structurally valid
                assert isinstance(message, (Command, Reply))

    def test_list_count_bomb_rejected_before_looping(self):
        # u32 count of ~4G with only a handful of payload bytes: the
        # decoder must reject by remaining-length bound, not iterate
        body = b"L" + struct.pack(">I", 4_000_000_000) + b"N" * 16
        start = time.monotonic()
        with pytest.raises(CodecError):
            decode_value(body)
        assert time.monotonic() - start < 0.5

    def test_dict_count_bomb_rejected_before_looping(self):
        body = b"M" + struct.pack(">I", 4_000_000_000) + b"\x00" * 16
        start = time.monotonic()
        with pytest.raises(CodecError):
            decode_value(body)
        assert time.monotonic() - start < 0.5

    def test_deep_nesting_is_codec_error_not_recursion_error(self):
        body = (b"L" + struct.pack(">I", 1)) * 5000 + b"N"
        frame = b"\xabC" + struct.pack(">I", len(body)) + body
        with pytest.raises(CodecError):
            decode_message(frame)

    def test_truncated_dict_key_rejected(self):
        body = b"M" + struct.pack(">I", 1) + struct.pack(">I", 64) + b"ke"
        with pytest.raises(CodecError):
            decode_value(body)

    def test_int_smuggled_as_buffer_rejected(self):
        # bytes(huge_int) would allocate gigabytes host-side
        wire_dict = self.full_command().to_wire_dict()
        wire_dict["inbufs"] = {"src": 2 ** 40}
        body = encode_value(wire_dict)
        frame = b"\xabC" + struct.pack(">I", len(body)) + body
        with pytest.raises(CodecError):
            decode_message(frame)

    def test_mistyped_command_fields_rejected(self):
        base = self.full_command().to_wire_dict()
        hostile = [
            ("seq", "not-an-int"), ("seq", True),
            ("vm", 7), ("api", None), ("fn", [1]), ("mode", 0),
            ("scalars", [1, 2]), ("handles", "x"), ("inbufs", "x"),
            ("outsz", [3]), ("t", "late"), ("tr", 5), ("tr", [1, 2, 3]),
        ]
        for key, value in hostile:
            wire_dict = dict(base)
            wire_dict[key] = value
            body = encode_value(wire_dict)
            frame = b"\xabC" + struct.pack(">I", len(body)) + body
            with pytest.raises(CodecError):
                decode_message(frame)

    def test_mistyped_out_size_rejected(self):
        wire_dict = self.full_command().to_wire_dict()
        wire_dict["outsz"] = {"dst": "big"}
        body = encode_value(wire_dict)
        frame = b"\xabC" + struct.pack(">I", len(body)) + body
        with pytest.raises(CodecError):
            decode_message(frame)

    def test_non_dict_message_body_rejected(self):
        body = encode_value([1, 2, 3])
        frame = b"\xabC" + struct.pack(">I", len(body)) + body
        with pytest.raises(CodecError):
            decode_message(frame)

    def test_mistyped_reply_fields_rejected(self):
        base = Reply(seq=1, return_value=0).to_wire_dict()
        for key, value in [("seq", None), ("outs", [1]), ("oscal", 3),
                           ("new", "x"), ("err", 17), ("t", None),
                           ("outs", {"d": 2 ** 40})]:
            wire_dict = dict(base)
            wire_dict[key] = value
            body = encode_value(wire_dict)
            frame = b"\xabR" + struct.pack(">I", len(body)) + body
            with pytest.raises(CodecError):
                decode_message(frame)
