"""Unit tests for per-VM handle tables."""

import pytest

from repro.remoting.handles import HandleError, HandleTable


class Thing:
    """An arbitrary host object."""


class TestAllocation:
    def test_allocate_and_lookup(self):
        table = HandleTable("vm-1")
        thing = Thing()
        guest_id = table.allocate(thing)
        assert table.lookup(guest_id) is thing

    def test_ids_are_distinct(self):
        table = HandleTable()
        ids = [table.allocate(Thing()) for _ in range(100)]
        assert len(set(ids)) == 100

    def test_same_object_same_id(self):
        table = HandleTable()
        thing = Thing()
        assert table.allocate(thing) == table.allocate(thing)
        assert len(table) == 1

    def test_allocate_none_rejected(self):
        with pytest.raises(HandleError):
            HandleTable().allocate(None)

    def test_len_and_contains(self):
        table = HandleTable()
        guest_id = table.allocate(Thing())
        assert len(table) == 1
        assert guest_id in table
        assert (guest_id + 1) not in table

    def test_allocated_total_counts_frees_too(self):
        table = HandleTable()
        a = table.allocate(Thing())
        table.free(a)
        table.allocate(Thing())
        assert table.allocated_total == 2
        assert len(table) == 1


class TestLookupErrors:
    def test_unknown_handle(self):
        with pytest.raises(HandleError):
            HandleTable().lookup(0x9999)

    def test_freed_handle(self):
        table = HandleTable()
        guest_id = table.allocate(Thing())
        table.free(guest_id)
        with pytest.raises(HandleError):
            table.lookup(guest_id)

    def test_non_int_handle(self):
        with pytest.raises(HandleError):
            HandleTable().lookup("nope")

    def test_cross_vm_handles_do_not_alias(self):
        table_a = HandleTable("vm-a")
        table_b = HandleTable("vm-b")
        id_a = table_a.allocate(Thing())
        with pytest.raises(HandleError):
            table_b.lookup(id_a)

    def test_lookup_optional_null(self):
        table = HandleTable()
        assert table.lookup_optional(None) is None
        assert table.lookup_optional(0) is None
        thing = Thing()
        assert table.lookup_optional(table.allocate(thing)) is thing


class TestReverseAndFree:
    def test_guest_id_of(self):
        table = HandleTable()
        thing = Thing()
        guest_id = table.allocate(thing)
        assert table.guest_id_of(thing) == guest_id

    def test_guest_id_of_unregistered(self):
        with pytest.raises(HandleError):
            HandleTable().guest_id_of(Thing())

    def test_free_returns_object(self):
        table = HandleTable()
        thing = Thing()
        guest_id = table.allocate(thing)
        assert table.free(guest_id) is thing
        assert len(table) == 0

    def test_items_snapshot(self):
        table = HandleTable()
        thing = Thing()
        guest_id = table.allocate(thing)
        assert list(table.items()) == [(guest_id, thing)]

    def test_clear(self):
        table = HandleTable()
        table.allocate(Thing())
        table.clear()
        assert len(table) == 0


class TestMigrationReplay:
    def test_allocate_as_preserves_guest_id(self):
        old = HandleTable("vm-1")
        original = Thing()
        guest_id = old.allocate(original)

        new = HandleTable("vm-1-migrated")
        replacement = Thing()
        new.allocate_as(guest_id, replacement)
        assert new.lookup(guest_id) is replacement

    def test_allocate_as_conflict_rejected(self):
        table = HandleTable()
        guest_id = table.allocate(Thing())
        with pytest.raises(HandleError):
            table.allocate_as(guest_id, Thing())

    def test_live_objects(self):
        table = HandleTable()
        things = [Thing() for _ in range(3)]
        for thing in things:
            table.allocate(thing)
        assert set(map(id, table.live_objects())) == set(map(id, things))
