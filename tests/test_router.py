"""Tests for the hypervisor invocation router (interposition point)."""

import pytest

from repro.hypervisor.policy import RateLimiter, ResourcePolicy, VMPolicy
from repro.hypervisor.router import Router, RoutingInfo, RoutingTable
from repro.remoting.codec import Command, Reply, decode_message, encode_message
from repro.spec import parse_spec
from repro.spec.model import RecordKind


class StubWorker:
    def __init__(self):
        self.executed = []

    def execute(self, command, release):
        self.executed.append((command, release))
        return Reply(seq=command.seq, return_value=0, complete_time=release)


@pytest.fixture()
def setup():
    worker = StubWorker()
    router = Router(lambda vm, api: worker)
    table = RoutingTable(api="testapi")
    table.functions["doWork"] = RoutingInfo(name="doWork")
    router.register_api(table)
    router.register_vm("vm1")
    return router, worker


def send(router, command, arrival=0.0):
    return decode_message(router.deliver(encode_message(command), arrival))


def make_command(function="doWork", vm="vm1", **kwargs):
    return Command(seq=1, vm_id=vm, api="testapi", function=function,
                   **kwargs)


class TestVerification:
    def test_known_function_dispatched(self, setup):
        router, worker = setup
        reply = send(router, make_command())
        assert reply.error is None
        assert len(worker.executed) == 1

    def test_unknown_vm_rejected(self, setup):
        router, worker = setup
        reply = send(router, make_command(vm="intruder"))
        assert "unknown VM" in reply.error
        assert not worker.executed

    def test_unknown_api_rejected(self, setup):
        router, worker = setup
        command = make_command()
        command.api = "nope"
        reply = send(router, command)
        assert "unknown API" in reply.error

    def test_unknown_function_rejected(self, setup):
        router, worker = setup
        reply = send(router, make_command(function="sneaky"))
        assert "does not route" in reply.error
        assert router.metrics_for("vm1").rejected == 1

    def test_oversized_payload_rejected(self, setup):
        router, _ = setup
        router.max_payload_bytes = 10
        reply = send(router, make_command(in_buffers={"d": b"x" * 100}))
        assert "exceeds router limit" in reply.error

    def test_bad_out_size_rejected(self, setup):
        router, _ = setup
        reply = send(router, make_command(out_sizes={"p": -5}))
        assert "bad out-size" in reply.error

    def test_oversized_out_buffer_rejected(self, setup):
        router, _ = setup
        router.max_payload_bytes = 100
        reply = send(router, make_command(out_sizes={"p": 10_000}))
        assert "exceeds router limit" in reply.error

    def test_malformed_bytes_rejected(self, setup):
        router, _ = setup
        reply = decode_message(router.deliver(b"garbage-not-a-frame", 0.0))
        assert "malformed" in reply.error

    def test_reply_message_rejected(self, setup):
        router, _ = setup
        wire = encode_message(Reply(seq=1))
        reply = decode_message(router.deliver(wire, 0.0))
        assert "expected a command" in reply.error

    def test_missing_worker_reported(self):
        router = Router(lambda vm, api: None)
        table = RoutingTable(api="testapi")
        table.functions["doWork"] = RoutingInfo(name="doWork")
        router.register_api(table)
        router.register_vm("vm1")
        reply = send(router, make_command())
        assert "no API server" in reply.error


class TestSchedulingAndAccounting:
    def test_interposition_cost_added(self, setup):
        router, worker = setup
        send(router, make_command(), arrival=1.0)
        _, release = worker.executed[0]
        assert release == pytest.approx(1.0 + router.interposition_cost)

    def test_rate_limiter_delays_release(self):
        policy = ResourcePolicy()
        policy.set_policy("vm1", VMPolicy(command_rate=10.0, command_burst=1))
        worker = StubWorker()
        router = Router(lambda vm, api: worker,
                        rate_limiter=RateLimiter(policy))
        table = RoutingTable(api="testapi")
        table.functions["doWork"] = RoutingInfo(name="doWork")
        router.register_api(table)
        router.register_vm("vm1")
        send(router, make_command(), arrival=0.0)
        send(router, make_command(), arrival=0.0)
        _, release2 = worker.executed[1]
        assert release2 >= 0.1
        assert router.metrics_for("vm1").rate_delay > 0

    def test_per_function_counters(self, setup):
        router, _ = setup
        send(router, make_command())
        send(router, make_command())
        metrics = router.metrics_for("vm1")
        assert metrics.commands == 2
        assert metrics.per_function["doWork"] == 2

    def test_per_function_distinguishes_functions(self, setup):
        router, _ = setup
        table = router.tables["testapi"]
        table.functions["other"] = RoutingInfo(name="other")
        send(router, make_command())
        send(router, make_command(function="other"))
        metrics = router.metrics_for("vm1")
        assert metrics.per_function == {"doWork": 1, "other": 1}
        # rejections are not counted as routed commands
        send(router, make_command(function="sneaky"))
        assert metrics.per_function == {"doWork": 1, "other": 1}


class TestRouterTracing:
    def test_policy_and_queue_spans_recorded(self, setup):
        from repro.telemetry import Tracer, use

        router, _ = setup
        tracer = Tracer()
        with use(tracer):
            command = make_command()
            command.span_id = 77
            send(router, command, arrival=1.0)
        names = {s.name: s for s in tracer.spans}
        policy = names["router.policy"]
        queue = names["router.queue"]
        assert policy.parent_id == 77 and queue.parent_id == 77
        assert policy.layer == "router"
        assert policy.start == 1.0
        assert policy.end == pytest.approx(1.0 + router.interposition_cost)
        assert queue.start == policy.end

    def test_rejection_span_carries_reason(self, setup):
        from repro.telemetry import Tracer, use

        router, _ = setup
        tracer = Tracer()
        with use(tracer):
            send(router, make_command(function="sneaky"))
        (span,) = tracer.spans
        assert span.name == "router.policy"
        assert "does not route" in span.attrs["rejected"]

    def test_no_spans_without_tracer(self, setup):
        from repro.telemetry import tracer as tele

        router, _ = setup
        send(router, make_command())
        assert tele.active().all_spans() == []

    def test_payload_bytes_accounted(self, setup):
        router, _ = setup
        send(router, make_command(in_buffers={"d": b"x" * 64}))
        assert router.metrics_for("vm1").payload_bytes == 64

    def test_resource_estimates_from_consumes(self):
        spec = parse_spec(
            "api(testapi);\n"
            "int copyData(int dst, size_t nbytes) "
            "{ consumes(bus_bytes, nbytes); }"
        )
        worker = StubWorker()
        router = Router(lambda vm, api: worker)
        router.register_api(RoutingTable.from_spec(spec))
        router.register_vm("vm1")
        command = make_command(function="copyData",
                               scalars={"dst": 1, "nbytes": 4096})
        send(router, command)
        assert router.metrics_for("vm1").resources["bus_bytes"] == 4096


class TestErrorReplySeqEcho:
    """Every verification rejection echoes the command's seq.

    A reply with seq=-1 is only legitimate when the frame was too
    damaged to recover a sequence number at all; any decodable command
    must get its own seq back, or the guest cannot match the failure to
    the call that caused it.
    """

    SEQ = 777

    def _reply(self, router, command):
        command.seq = self.SEQ
        return send(router, command)

    def test_unknown_vm_echoes_seq(self, setup):
        router, _ = setup
        reply = self._reply(router, make_command(vm="intruder"))
        assert "unknown VM" in reply.error
        assert reply.seq == self.SEQ

    def test_unknown_api_echoes_seq(self, setup):
        router, _ = setup
        command = make_command()
        command.api = "nope"
        reply = self._reply(router, command)
        assert "unknown API" in reply.error
        assert reply.seq == self.SEQ

    def test_unrouted_function_echoes_seq(self, setup):
        router, _ = setup
        reply = self._reply(router, make_command(function="sneaky"))
        assert "does not route" in reply.error
        assert reply.seq == self.SEQ

    def test_oversized_payload_echoes_seq(self, setup):
        router, _ = setup
        router.max_payload_bytes = 10
        reply = self._reply(router,
                            make_command(in_buffers={"d": b"x" * 100}))
        assert "exceeds router limit" in reply.error
        assert reply.seq == self.SEQ

    def test_bad_out_size_echoes_seq(self, setup):
        router, _ = setup
        reply = self._reply(router, make_command(out_sizes={"p": -5}))
        assert "bad out-size" in reply.error
        assert reply.seq == self.SEQ

    def test_oversized_out_buffer_echoes_seq(self, setup):
        router, _ = setup
        router.max_payload_bytes = 100
        reply = self._reply(router, make_command(out_sizes={"p": 10_000}))
        assert "exceeds router limit" in reply.error
        assert reply.seq == self.SEQ

    def test_quota_rejection_echoes_seq(self):
        spec = parse_spec(
            "api(testapi);\n"
            "int copyData(int dst, size_t nbytes) "
            "{ consumes(bus_bytes, nbytes); }"
        )
        policy = ResourcePolicy()
        policy.set_policy("vm1",
                          VMPolicy(resource_limits={"bus_bytes": 1}))
        router = Router(lambda vm, api: StubWorker(), policy=policy)
        router.register_api(RoutingTable.from_spec(spec))
        router.register_vm("vm1")
        command = make_command(function="copyData",
                               scalars={"dst": 1, "nbytes": 4096})
        command.seq = self.SEQ
        reply = send(router, command)
        assert "quota exhausted" in reply.error
        assert reply.seq == self.SEQ

    def test_undecodable_frame_gets_minus_one(self, setup):
        router, _ = setup
        reply = decode_message(router.deliver(b"garbage", 0.0))
        assert reply.seq == -1  # no seq recoverable from garbage


class TestUnknownVmAccounting:
    def test_unknown_vms_share_one_bounded_counter(self, setup):
        router, _ = setup
        before = set(router.metrics)
        for index in range(200):
            send(router, make_command(vm=f"intruder-{index}"))
        # untrusted vm_id bytes must not grow the metrics table
        assert set(router.metrics) == before
        assert router.unknown_rejections == 200

    def test_known_vm_rejections_still_per_vm(self, setup):
        router, _ = setup
        send(router, make_command(function="sneaky"))
        assert router.metrics_for("vm1").rejected == 1
        assert router.unknown_rejections == 0


class TestCircuitBreaker:
    """Breaker decisions key on the transport-attested ``source``."""

    def flood(self, router, times, start=0.0, step=1e-5,
              source="vm1"):
        for index in range(times):
            router.deliver(b"garbage", start + index * step, source=source)

    def send_from(self, router, command, arrival, source):
        return decode_message(
            router.deliver(encode_message(command), arrival, source=source)
        )

    def test_flood_trips_breaker(self, setup):
        router, worker = setup
        self.flood(router, router.breaker_threshold)
        assert router.breakers["vm1"].tripped == 1
        # even a well-formed command is rejected while the breaker is open
        arrival = router.breaker_threshold * 1e-5
        reply = self.send_from(router, make_command(), arrival, "vm1")
        assert "circuit open" in reply.error
        assert not worker.executed

    def test_breaker_closes_after_cooldown(self, setup):
        router, worker = setup
        self.flood(router, router.breaker_threshold)
        reopen = (router.breaker_threshold * 1e-5
                  + router.breaker_cooldown + 1e-6)
        reply = self.send_from(router, make_command(), reopen, "vm1")
        assert reply.error is None
        assert len(worker.executed) == 1

    def test_strikes_outside_window_do_not_trip(self, setup):
        router, _ = setup
        self.flood(router, router.breaker_threshold,
                   step=router.breaker_window * 2)
        assert router.breakers["vm1"].tripped == 0

    def test_other_sources_unaffected(self, setup):
        router, worker = setup
        router.register_vm("vm2")
        self.flood(router, router.breaker_threshold, source="vm1")
        command = make_command(vm="vm2")
        reply = self.send_from(router, command,
                               router.breaker_threshold * 1e-5, "vm2")
        assert reply.error is None
        assert len(worker.executed) == 1

    def test_unattributed_frames_never_open_a_breaker(self, setup):
        router, _ = setup
        for index in range(50):
            router.deliver(b"garbage", index * 1e-6)  # no source
        assert router.breakers == {}
        assert router.malformed_frames == 50


class TestWorkerCrashContainment:
    def test_crash_becomes_server_lost_reply(self):
        from repro.faults.errors import WorkerCrashed

        class DyingWorker:
            def execute(self, command, release):
                raise WorkerCrashed("boom")

        lost = []
        router = Router(lambda vm, api: DyingWorker(),
                        on_worker_lost=lambda *args: lost.append(args))
        table = RoutingTable(api="testapi")
        table.functions["doWork"] = RoutingInfo(name="doWork")
        router.register_api(table)
        router.register_vm("vm1")
        command = make_command()
        command.seq = 42
        reply = send(router, command)
        assert "server-lost" in reply.error
        assert reply.seq == 42
        assert lost == [("vm1", "testapi", "boom")]
        assert router.metrics_for("vm1").server_lost == 1

    def test_lost_resolver_becomes_server_lost_reply(self):
        from repro.faults.errors import WorkerLost

        def resolver(vm, api):
            raise WorkerLost("awaiting restart")

        router = Router(resolver)
        table = RoutingTable(api="testapi")
        table.functions["doWork"] = RoutingInfo(name="doWork")
        router.register_api(table)
        router.register_vm("vm1")
        reply = send(router, make_command())
        assert "server-lost" in reply.error
        assert "awaiting restart" in reply.error


class TestReplyEncodeGuard:
    def test_unencodable_reply_becomes_error_reply(self, setup):
        router, worker = setup

        class Opaque:
            pass

        def execute(command, release):
            return Reply(seq=command.seq, return_value=Opaque(),
                         complete_time=release)

        worker.execute = execute
        reply = send(router, make_command())
        assert "reply encoding failed" in reply.error
        assert reply.seq == 1


class TestRoutingTableFromSpec:
    def test_functions_and_records(self):
        spec = parse_spec(
            "api(x);\n"
            "int clCreateThing(int ctx);\n"
            "int weird(int a) { unsupported; }\n"
        )
        table = RoutingTable.from_spec(spec)
        assert "clCreateThing" in table.functions
        assert "weird" not in table.functions  # unsupported not routed
        assert table.functions["clCreateThing"].record_kind is \
            RecordKind.CREATE
