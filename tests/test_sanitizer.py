"""Tests for the runtime ordering/invariant sanitizer
(``repro.analysis.sanitizer``, armed via ``CAVA_SANITIZE=1`` /
``cava chaos --sanitize``).

The contract under test: armed, the sanitizer checks that real dispatch
behaviour linearizes against the spec's happens-before model (plus the
clock/cache/crash/pool invariant asserts) without performing any clock
operation — so virtual-time results stay bit-identical; disarmed, every
hook site is one attribute read on the module NOOP.
"""

import json
import os

import pytest

from repro.analysis import sanitizer as san
from repro.analysis.sanitizer import NOOP, Sanitizer, SanitizerError
from repro.guest.batching import BatchPolicy
from repro.remoting.xfercache import CachePolicy, digest_payload
from repro.stack import VirtualStack
from repro.workloads import NWWorkload

SMALL = 0.06


@pytest.fixture(autouse=True)
def disarm():
    """Every test starts and ends with the NOOP installed."""
    san.uninstall()
    yield
    san.uninstall()


def armed():
    return san.install(Sanitizer())


class TestInstall:
    def test_noop_by_default(self):
        assert san.active() is NOOP
        assert not san.active().enabled

    def test_install_and_uninstall(self):
        s = armed()
        assert san.active() is s and s.enabled
        san.uninstall()
        assert san.active() is NOOP

    def test_env_arming(self):
        san.maybe_install_from_env({"CAVA_SANITIZE": "1"})
        assert san.active().enabled
        san.uninstall()
        san.maybe_install_from_env({"CAVA_SANITIZE": "0"})
        assert not san.active().enabled
        san.maybe_install_from_env({})
        assert not san.active().enabled

    def test_hypervisor_arms_from_env(self, monkeypatch):
        from repro.hypervisor.hypervisor import Hypervisor

        monkeypatch.setenv("CAVA_SANITIZE", "1")
        Hypervisor()
        assert san.active().enabled

    def test_noop_hooks_are_inert(self):
        NOOP.record_dispatch("vm", "api", 0, "sync", "f")
        NOOP.check_reply_time("vm", "api", 1.0, 0.0)
        NOOP.verify_digest(b"x" * 16, b"anything")
        NOOP.check_worker_reset("vm", "api", 5, 5)
        NOOP.check_pool_conservation(1.0, 2.0)


class TestDispatchOrder:
    def test_in_order_stream_passes(self):
        s = armed()
        for seq in range(10):
            s.record_dispatch("vm", "api", seq, "async", "f")
        s.record_dispatch("vm", "api", 10, "sync", "g")
        assert s.violations == []
        assert s.checks["dispatch-order"] == 11

    def test_duplicate_redelivery_is_recorded_not_failed(self):
        s = armed()
        for seq in (0, 1, 2, 1, 2):  # NeedBytes-style replay
            s.record_dispatch("vm", "api", seq, "async", "f")
        assert s.violations == []
        assert s.summary()["duplicates"] == 2

    def test_async_async_reorder_is_legal(self):
        s = armed()
        s.record_dispatch("vm", "api", 0, "async", "f")
        s.record_dispatch("vm", "api", 2, "async", "f")
        s.record_dispatch("vm", "api", 1, "async", "f")
        assert s.violations == []
        assert s.summary()["reorders"] == 1

    def test_async_overtaking_sync_fails(self):
        s = armed()
        s.record_dispatch("vm", "api", 0, "async", "write")
        s.record_dispatch("vm", "api", 2, "sync", "finish")
        with pytest.raises(SanitizerError, match="program order"):
            s.record_dispatch("vm", "api", 1, "async", "write")
        assert s.violations

    def test_sync_overtaken_by_nothing_is_fine_across_vms(self):
        s = armed()
        s.record_dispatch("vm-a", "api", 5, "sync", "f")
        s.record_dispatch("vm-b", "api", 0, "async", "g")  # other VM
        assert s.violations == []


class TestInvariantChecks:
    def test_clock_monotonicity(self):
        s = armed()
        s.check_reply_time("vm", "api", 1.0, 1.0)     # equal is fine
        s.check_reply_time("vm", "api", 1.0, 2.0)
        with pytest.raises(SanitizerError, match="backwards"):
            s.check_reply_time("vm", "api", 2.0, 1.0)

    def test_digest_verification(self):
        s = armed()
        payload = b"x" * 2048
        s.verify_digest(digest_payload(payload), payload)
        with pytest.raises(SanitizerError, match="stale"):
            s.verify_digest(digest_payload(payload), b"y" * 2048)

    def test_worker_reset(self):
        s = armed()
        s.check_worker_reset("vm", "api", 0, 0)
        s.check_worker_reset("vm", "api", 0, None)  # no store armed
        with pytest.raises(SanitizerError, match="handle"):
            s.check_worker_reset("vm", "api", 3, 0)
        with pytest.raises(SanitizerError, match="transfer-store"):
            s.check_worker_reset("vm", "api", 0, 2)

    def test_pool_conservation(self):
        s = armed()
        s.check_pool_conservation(1.0, 1.0 + 1e-9)
        with pytest.raises(SanitizerError, match="conservation"):
            s.check_pool_conservation(1.0, 2.0)


class TestRuntimeIntegration:
    def test_clean_batched_run_passes_with_checks_performed(self):
        s = armed()
        stack = VirtualStack.build("opencl")
        session = stack.add_vm("vm-clean", batch_policy=BatchPolicy())
        assert NWWorkload(scale=SMALL).run(session.lib).verified
        assert s.checks["dispatch-order"] > 100
        assert s.checks["clock-monotonic"] > 100
        assert s.violations == []

    def test_broken_flush_discipline_is_caught(self):
        """The chaos knob: BatchPolicy(flush_before_sync=False) lets a
        sync call overtake queued async commands — exactly the hazard
        CAVA402/CAVA403 warn about — and the sanitizer must fail the
        run when the overtaken region flushes."""
        armed()
        stack = VirtualStack.build("opencl")
        session = stack.add_vm(
            "vm-bad",
            batch_policy=BatchPolicy(flush_before_sync=False))
        with pytest.raises(SanitizerError, match="program order"):
            NWWorkload(scale=SMALL).run(session.lib)
            session.flush()

    def test_unsanitized_run_tolerates_broken_flush_knob(self):
        """Without the sanitizer the same seeded stack must not raise —
        the knob only reorders virtual work, it breaks no machinery."""
        stack = VirtualStack.build("opencl")
        session = stack.add_vm(
            "vm-ok",
            batch_policy=BatchPolicy(flush_before_sync=False))
        NWWorkload(scale=SMALL).run(session.lib)
        session.flush()

    def test_transfer_cache_digests_reverified(self):
        s = armed()
        from repro.harness.xfer import (
            IterativeUploadWorkload,
            run_cache_compare,
        )

        comparison = run_cache_compare(
            IterativeUploadWorkload, scale=0.5, transport="ring",
            policy=CachePolicy())
        assert comparison.on.verified
        assert s.checks.get("xfer-digest", 0) > 0
        assert s.violations == []

    def test_pool_run_checks_conservation(self):
        s = armed()
        from repro.hypervisor.pool import (
            DeviceClass,
            DevicePool,
            PoolScheduler,
        )
        from repro.hypervisor.scheduler import WorkItem

        pool = DevicePool.from_classes(
            [DeviceClass.baseline_gpu(), DeviceClass.big_gpu()])
        streams = {
            f"vm-{i}": [WorkItem(1e-3) for _ in range(10)]
            for i in range(4)
        }
        PoolScheduler(pool).run(streams)
        assert s.checks["pool-conservation"] == 1
        assert s.violations == []


class TestChaosUnderSanitizer:
    @pytest.mark.parametrize("mode", ["crash", "duplicate"])
    def test_mode_contained_and_disarms(self, mode):
        from repro.faults.chaos import run_chaos

        report = run_chaos(mode=mode, sanitize=True, batching=True)
        assert report.contained
        assert not san.active().enabled  # disarmed on the way out

    def test_cli_sanitize_flag(self, capsys):
        from repro.codegen.cli import main as cava_main

        assert cava_main(
            ["chaos", "--mode", "duplicate", "--sanitize"]) == 0
        assert "contained" in capsys.readouterr().out


class TestBitIdentity:
    """Armed or not, the sanitizer never touches virtual time."""

    def test_figure5_reproduces_stored_json_with_sanitizer_armed(self):
        from repro.harness import run_figure5

        s = armed()
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_figure5.json")
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        rows = run_figure5()
        got = {
            row.name: (row.native.runtime, row.virtualized.runtime)
            for row in rows
        }
        want = {
            row["name"]: (row["native_runtime"], row["virtualized_runtime"])
            for row in stored["rows"]
        }
        assert got == want
        assert s.checks["dispatch-order"] > 1000
        assert s.violations == []


class TestMigrationHandleInvariant:
    """Post-cutover handle fidelity: dest table == source table."""

    def test_matching_tables_pass(self):
        s = armed()
        s.check_migration_handles("vm", "opencl", {1, 2, 3}, {1, 2, 3})
        assert s.checks["migration-handles"] == 1
        assert not s.violations

    def test_dropped_handle_detected(self):
        s = armed()
        with pytest.raises(SanitizerError) as excinfo:
            s.check_migration_handles("vm", "opencl", {1, 2, 3}, {1, 2})
        assert "handle fidelity" in str(excinfo.value)
        assert "missing" in str(excinfo.value)
        assert s.violations

    def test_leaked_handle_detected(self):
        s = armed()
        with pytest.raises(SanitizerError) as excinfo:
            s.check_migration_handles("vm", "opencl", {1, 2}, {1, 2, 9})
        assert "extra" in str(excinfo.value)

    def test_noop_hook_is_inert(self):
        NOOP.check_migration_handles("vm", "opencl", {1}, {2})

    def _migrate(self):
        import numpy as np

        from repro.opencl import types
        from repro.remoting.buffers import OutBox
        from repro.stack import make_hypervisor

        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-san-mig")
        cl = vm.library("opencl")
        plats = [None]
        cl.clGetPlatformIDs(1, plats, None)
        devs = [None]
        cl.clGetDeviceIDs(plats[0], types.CL_DEVICE_TYPE_GPU, 1, devs,
                          None)
        err = OutBox()
        ctx = cl.clCreateContext(None, 1, devs, None, None, err)
        queue = cl.clCreateCommandQueue(ctx, devs[0], 0, err)
        data = np.arange(256, dtype=np.float32)
        mem = cl.clCreateBuffer(ctx, types.CL_MEM_COPY_HOST_PTR,
                                data.nbytes, data, err)
        report = hv.live_migrate_vm("vm-san-mig", "opencl")
        out = np.zeros(256, dtype=np.float32)
        code = cl.clEnqueueReadBuffer(queue, mem, types.CL_TRUE, 0,
                                      data.nbytes, out, 0, None, None)
        assert code == types.CL_SUCCESS
        assert (out == data).all()
        return report, vm

    def test_armed_live_migration_passes(self):
        """A real cutover satisfies the invariant under the armed
        sanitizer (the CAVA_SANITIZE=1 chaos/CI path)."""
        s = armed()
        report, _vm = self._migrate()
        assert not report.aborted
        assert s.checks["migration-handles"] >= 1
        assert not s.violations

    def test_armed_migration_run_is_bit_identical(self):
        """The armed sanitizer performs no clock operations: a migrated
        run's virtual-time results match the unsanitized run exactly."""
        plain_report, plain_vm = self._migrate()
        armed()
        armed_report, armed_vm = self._migrate()
        assert armed_report.downtime == plain_report.downtime
        assert armed_report.total_time == plain_report.total_time
        assert armed_vm.clock.now == plain_vm.clock.now
