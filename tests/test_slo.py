"""SLO monitoring, open-loop load generation, and the flight recorder.

Covers the burn-rate monitor's breach/re-arm cycle, the target-file
format, the seeded arrival processes, admission-control accounting in
:func:`run_open_loop`, the crash/SLO flight recorder (ring bound, dump
format, and the three incident hooks), the ``cava slo`` exit-code
contract, and — because every one of these features must be free when
off — a bit-identity guard against the stored figure-5 results.
"""

import json
import os

import numpy as np
import pytest

from repro.codegen.cli import main as cava_main
from repro.faults import FaultPlan, RetryPolicy
from repro.guest.library import RemotingError
from repro.harness.loadgen import (
    AdmissionControl,
    BurstyArrivals,
    DiurnalArrivals,
    LoadgenError,
    PoissonArrivals,
    TraceArrivals,
    run_open_loop,
)
from repro.stack import make_hypervisor
from repro.telemetry import flightrec
from repro.telemetry.exporters import write_jsonl
from repro.telemetry.flightrec import FlightRecorder, read_dump
from repro.telemetry.slo import (
    BurnRateWindow,
    SLOError,
    SLOMonitor,
    SLOTarget,
    evaluate_trace,
    load_slo_targets,
    parse_slo_targets,
)
from repro.telemetry.tracer import Span
from repro.workloads.base import open_env

ONE_WINDOW = (BurnRateWindow(long_window=1.0, short_window=0.2,
                             max_burn_rate=3.0),)


def fresh_stack(vm_id="v1"):
    hypervisor = make_hypervisor(apis=("opencl",))
    vm = hypervisor.create_vm(vm_id)
    return hypervisor, vm


class _FakeClock:
    """Just enough clock for run_open_loop: now + advance_to."""

    def __init__(self):
        self.now = 0.0

    def advance_to(self, t, reason=None):
        assert t >= self.now
        self.now = t


class _FakeSession:
    vm_id = "vm-fake"

    def __init__(self):
        self.clock = _FakeClock()


def _service(seconds):
    def request(session):
        session.clock.now += seconds
        return 0
    return request


class TestBurnRateWindow:
    def test_validation(self):
        with pytest.raises(SLOError):
            BurnRateWindow(long_window=0.0, short_window=0.1,
                           max_burn_rate=1.0)
        with pytest.raises(SLOError):
            BurnRateWindow(long_window=1.0, short_window=2.0,
                           max_burn_rate=1.0)
        with pytest.raises(SLOError):
            BurnRateWindow(long_window=1.0, short_window=0.1,
                           max_burn_rate=0.0)


class TestSLOTarget:
    def test_matching_patterns(self):
        target = SLOTarget(name="t", vm="vm-a*", function="write*")
        assert target.matches("vm-a1", "writeBuffer")
        assert not target.matches("vm-b1", "writeBuffer")
        assert not target.matches("vm-a1", "readBuffer")

    def test_is_good(self):
        target = SLOTarget(name="t", latency=1e-3)
        assert target.is_good(0.5e-3, error=False)
        assert not target.is_good(2e-3, error=False)
        assert not target.is_good(0.5e-3, error=True)
        # error-rate-only target: any latency is fine
        assert SLOTarget(name="e").is_good(100.0, error=False)

    def test_validation(self):
        with pytest.raises(SLOError):
            SLOTarget(name="t", objective=1.0)
        with pytest.raises(SLOError):
            SLOTarget(name="t", objective=0.0)
        with pytest.raises(SLOError):
            SLOTarget(name="t", latency=-1.0)
        with pytest.raises(SLOError):
            SLOTarget(name="t", windows=())

    def test_error_budget(self):
        assert SLOTarget(name="t", objective=0.95).error_budget \
            == pytest.approx(0.05)


class TestSLOMonitor:
    def target(self):
        return SLOTarget(name="req", objective=0.9, windows=ONE_WINDOW)

    def test_one_event_per_episode_then_rearm(self):
        monitor = SLOMonitor([self.target()])
        # phase 1: healthy traffic
        for i in range(10):
            monitor.record("v1", "f", 0.0, error=False, now=i * 0.1)
        assert monitor.events == []
        # phase 2: a burst of failures — exactly one breach event
        for i in range(6):
            monitor.record("v1", "f", 0.0, error=True, now=1.0 + i * 0.02)
        assert len(monitor.events) == 1
        event = monitor.events[0]
        assert event.target == "req"
        assert event.vm_id == "v1"
        assert event.burn_long > 3.0
        assert event.burn_short > 3.0
        # phase 3: recovery re-arms the window pair
        for i in range(30):
            monitor.record("v1", "f", 0.0, error=False, now=2.0 + i * 0.1)
        assert len(monitor.events) == 1
        # phase 4: a second episode raises a second event
        for i in range(4):
            monitor.record("v1", "f", 0.0, error=True, now=6.0 + i * 0.01)
        assert len(monitor.events) == 2

    def test_slow_requests_burn_budget(self):
        target = SLOTarget(name="lat", latency=1e-3, objective=0.9,
                           windows=ONE_WINDOW)
        monitor = SLOMonitor([target])
        for i in range(5):
            monitor.record("v1", "f", latency=5e-3, error=False,
                           now=i * 0.01)
        assert monitor.breached
        assert monitor.breaches_by_vm() == {"v1": 1}

    def test_states_are_per_vm(self):
        monitor = SLOMonitor([self.target()])
        for i in range(5):
            monitor.record("bad-vm", "f", 0.0, error=True, now=i * 0.01)
            monitor.record("good-vm", "f", 0.0, error=False, now=i * 0.01)
        assert monitor.breaches_by_vm() == {"bad-vm": 1}
        rows = {r["vm"]: r for r in monitor.summary()}
        assert not rows["bad-vm"]["compliant"]
        assert rows["good-vm"]["compliant"]
        assert rows["good-vm"]["breaches"] == 0

    def test_non_matching_traffic_ignored(self):
        target = SLOTarget(name="t", vm="vm-x", objective=0.9,
                           windows=ONE_WINDOW)
        monitor = SLOMonitor([target])
        for i in range(10):
            monitor.record("vm-y", "f", 0.0, error=True, now=i * 0.01)
        assert not monitor.breached
        assert monitor.summary() == []

    def test_callbacks_invoked(self):
        monitor = SLOMonitor([self.target()])
        seen = []
        monitor.on_breach(seen.append)
        for i in range(5):
            monitor.record("v1", "f", 0.0, error=True, now=i * 0.01)
        assert seen == monitor.events


class TestTargetFiles:
    def test_parse_full_entry(self):
        targets = parse_slo_targets({"targets": [{
            "name": "lat", "vm": "vm-1", "function": "launch*",
            "latency_us": 250, "objective": 0.99,
            "windows": [{"long": 1.0, "short": 0.1,
                         "max_burn_rate": 5.0}],
        }]})
        (target,) = targets
        assert target.latency == pytest.approx(250e-6)
        assert target.objective == 0.99
        assert target.windows[0].max_burn_rate == 5.0

    def test_parse_defaults(self):
        (target,) = parse_slo_targets({"targets": [{"name": "t"}]})
        assert target.vm == "*"
        assert target.latency is None
        assert target.windows  # DEFAULT_WINDOWS

    def test_malformed_rejected(self):
        with pytest.raises(SLOError):
            parse_slo_targets({})
        with pytest.raises(SLOError):
            parse_slo_targets({"targets": []})
        with pytest.raises(SLOError):
            parse_slo_targets({"targets": [{"vm": "anonymous"}]})
        with pytest.raises(SLOError):
            parse_slo_targets({"targets": [{
                "name": "t", "windows": [{"long": 1.0}],
            }]})

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "targets.json"
        path.write_text("{not json")
        with pytest.raises(SLOError):
            load_slo_targets(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(SLOError):
            load_slo_targets(str(path))

    def test_shipped_bench_targets_parse(self):
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "slo_targets.json")
        targets = load_slo_targets(path)
        assert targets and targets[0].name == "request-latency"


def _function_span(span_id, vm_id, start, duration, error=False,
                   name="clFinish"):
    return Span(
        trace_id="t", span_id=span_id, parent_id=None, name=name,
        layer="guest", kind="function", vm_id=vm_id,
        function=name, start=start, end=start + duration,
        attrs={"error": "boom"} if error else {},
    )


class TestEvaluateTrace:
    def test_replays_function_spans_only(self):
        spans = [
            _function_span(1, "v1", 0.0, 1e-5),
            _function_span(2, "v1", 0.1, 1e-5),
            # skipped: op span, unfinished span, container span
            Span("t", 3, None, "dispatch", "router", kind="op",
                 vm_id="v1", start=0.0, end=1e-6),
            Span("t", 4, None, "clFinish", "guest", kind="function",
                 vm_id="v1", start=0.2, end=None),
            Span("t", 5, None, "vm", "guest", kind="vm",
                 vm_id="v1", start=0.0, end=1.0),
        ]
        monitor = evaluate_trace(spans, [SLOTarget(
            name="t", objective=0.9, windows=ONE_WINDOW)])
        (row,) = monitor.summary()
        assert row["total"] == 2
        assert row["good"] == 2

    def test_error_and_slow_spans_breach(self):
        target = SLOTarget(name="t", latency=1e-4, objective=0.9,
                           windows=ONE_WINDOW)
        spans = [
            _function_span(i, "v1", i * 0.01, 1e-2, error=(i % 2 == 0))
            for i in range(8)
        ]
        monitor = evaluate_trace(spans, [target])
        assert monitor.breached
        (row,) = monitor.summary()
        assert row["good"] == 0  # all slow, half errored too


class TestArrivalProcesses:
    def test_poisson_deterministic_and_rated(self):
        a = PoissonArrivals(rate=1000.0, seed=3)
        b = PoissonArrivals(rate=1000.0, seed=3)
        times = a.times(2000)
        assert times == b.times(2000)
        assert times == sorted(times)
        assert PoissonArrivals(rate=1000.0, seed=4).times(2000) != times
        # mean inter-arrival ~ 1/rate
        assert times[-1] / 2000 == pytest.approx(1e-3, rel=0.1)

    def test_poisson_start_offset(self):
        times = PoissonArrivals(rate=10.0, seed=0).times(5, start=100.0)
        assert all(t > 100.0 for t in times)

    def test_bursty_deterministic_sorted(self):
        kwargs = dict(rate=100.0, burst_rate=5000.0, mean_calm=0.05,
                      mean_burst=0.005, seed=11)
        times = BurstyArrivals(**kwargs).times(500)
        assert times == BurstyArrivals(**kwargs).times(500)
        assert times == sorted(times)
        assert len(times) == 500
        # bursts compress inter-arrival spread far beyond Poisson:
        # the min gap comes from the burst state, the max from calm
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) / max(min(gaps), 1e-12) > 100

    def test_diurnal_rate_bounds_and_determinism(self):
        arrivals = DiurnalArrivals(rate=1000.0, period=1.0,
                                   amplitude=0.8, seed=2)
        times = arrivals.times(1000)
        assert times == DiurnalArrivals(rate=1000.0, period=1.0,
                                        amplitude=0.8, seed=2).times(1000)
        assert times == sorted(times)
        assert arrivals.rate_at(0.25) == pytest.approx(1800.0)
        assert arrivals.rate_at(0.75) == pytest.approx(200.0)

    def test_trace_replay(self):
        trace = TraceArrivals([0.0, 1.0, 2.5])
        assert trace.times(2, start=10.0) == [10.0, 11.0]
        with pytest.raises(LoadgenError):
            trace.times(4)
        with pytest.raises(LoadgenError):
            TraceArrivals([1.0, 0.5])

    def test_parameter_validation(self):
        with pytest.raises(LoadgenError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(LoadgenError):
            BurstyArrivals(rate=1.0, burst_rate=0.0, mean_calm=1.0,
                           mean_burst=1.0)
        with pytest.raises(LoadgenError):
            DiurnalArrivals(rate=1.0, period=1.0, amplitude=1.0)


class TestRunOpenLoop:
    def test_latency_is_queueing_plus_service(self):
        session = _FakeSession()
        result = run_open_loop(
            session, _service(0.010),
            TraceArrivals([0.0, 0.005, 0.100]), count=3,
        )
        assert result.offered == 3
        assert result.served == 3
        assert result.shed == 0
        # r2 arrived at 0.005 but the clock was at 0.010: 5ms queueing
        assert result.latency.max == pytest.approx(0.015)
        assert result.latency.count == 3
        assert session.clock.now == pytest.approx(0.110)

    def test_compliance_against_threshold(self):
        result = run_open_loop(
            _FakeSession(), _service(0.010),
            TraceArrivals([0.0, 0.005, 0.100]), count=3,
            slo_latency=0.012,
        )
        assert result.compliant == 2
        assert result.compliant_fraction == pytest.approx(2 / 3)

    def test_admission_sheds_doomed_requests(self):
        monitor = SLOMonitor([SLOTarget(
            name="t", objective=0.5, windows=ONE_WINDOW)])
        result = run_open_loop(
            _FakeSession(), _service(0.010),
            TraceArrivals([0.0, 0.005, 0.100]), count=3,
            admission=AdmissionControl(max_queue_delay=0.002),
            slo_latency=0.012, slo_monitor=monitor,
        )
        assert result.shed == 1
        assert result.served == 2
        assert result.compliant == 2  # the served ones were all fast
        assert result.compliant_fraction == pytest.approx(2 / 3)
        # the shed request reached the monitor as an error
        (row,) = monitor.summary()
        assert row["total"] == 3
        assert row["good"] == 2

    def test_error_status_counted(self):
        def failing(session):
            session.clock.now += 0.001
            return -34  # a nonzero API status

        result = run_open_loop(
            _FakeSession(), failing, TraceArrivals([0.0, 0.1]), count=2,
        )
        assert result.errors == 2
        assert result.served == 0
        assert result.latency.count == 0

    def test_percentile_key_naming(self):
        result = run_open_loop(
            _FakeSession(), _service(0.001),
            TraceArrivals([i * 0.01 for i in range(10)]), count=10,
        )
        keys = result.percentiles((0.5, 0.99, 0.999))
        assert set(keys) == {"p50", "p99", "p99_9"}

    def test_open_loop_against_real_stack(self):
        _, vm = fresh_stack("vm-open")
        env = open_env(vm.library("opencl"))
        data = np.ones(64, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)

        def request(session):
            env.write(mem, data)
            return env.finish()

        result = run_open_loop(
            vm, request, PoissonArrivals(rate=1000.0, seed=5), count=50,
        )
        assert result.served == 50
        assert result.latency.count == 50
        assert result.latency.mean > 0


class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path), capacity=4)
        for i in range(10):
            recorder.note("tick", now=float(i), index=i)
        entries = recorder.entries()
        assert len(entries) == 4
        assert [e["index"] for e in entries] == [6, 7, 8, 9]

    def test_incident_dump_roundtrip(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path), capacity=8)
        recorder.note("before", now=1.0, detail="context")
        path = recorder.incident("worker-crashed", now=2.0, vm_id="v1")
        assert os.path.basename(path).startswith("flightrec-001-")
        assert path.endswith(".jsonl")
        dump = read_dump(path)
        assert dump["header"]["flightrec"] == 1
        assert dump["header"]["reason"] == "worker-crashed"
        assert dump["header"]["vm_id"] == "v1"
        assert [e["what"] for e in dump["entries"]] == ["before"]
        # the ring survives the dump; a second incident gets index 001
        second = recorder.incident("giveup", now=3.0)
        assert "flightrec-002-" in second
        assert len(read_dump(second)["entries"]) == 1

    def test_span_ingest_via_tracer_sink(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.ingest(_function_span(1, "v1", 0.0, 1e-5))
        (entry,) = recorder.entries()
        assert entry["kind"] == "span"
        assert entry["vm"] == "v1"
        assert entry["duration"] == pytest.approx(1e-5)

    def test_noop_by_default(self):
        assert not flightrec.active().enabled
        flightrec.active().note("ignored", now=0.0)
        assert flightrec.active().entries() == []

    def test_record_context_restores(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        with flightrec.record(recorder) as active:
            assert active is recorder
            assert flightrec.active() is recorder
        assert not flightrec.active().enabled


class TestFlightRecorderHooks:
    def test_worker_crash_dumps_incident(self, tmp_path):
        hypervisor = make_hypervisor(apis=("opencl",))
        hypervisor.install_fault_plan(
            FaultPlan(seed=1, crash_on_call=4, crash_vm="victim"))
        victim = hypervisor.create_vm("victim")
        recorder = FlightRecorder(out_dir=str(tmp_path))
        with flightrec.record(recorder):
            with pytest.raises(RemotingError, match="server-lost"):
                open_env(victim.library("opencl"))
        assert recorder.dumps
        dump = read_dump(recorder.dumps[0])
        assert dump["header"]["reason"] == "worker-crashed"
        assert dump["header"]["vm_id"] == "victim"

    def test_giveup_dumps_incident(self, tmp_path):
        hypervisor, vm = fresh_stack()
        env = open_env(vm.library("opencl"))
        data = np.arange(4, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        hypervisor.install_fault_plan(
            FaultPlan(seed=1, drop=1.0),
            retry_policy=RetryPolicy(max_retries=2))
        recorder = FlightRecorder(out_dir=str(tmp_path))
        with flightrec.record(recorder):
            with pytest.raises(RemotingError, match="timeout"):
                env.write(mem, data)
        assert any("giveup" in path for path in recorder.dumps)
        dump = read_dump(recorder.dumps[0])
        assert dump["header"]["vm_id"] == "v1"

    def test_slo_breach_dumps_incident(self, tmp_path):
        monitor = SLOMonitor([SLOTarget(
            name="t", objective=0.9, windows=ONE_WINDOW)])
        recorder = FlightRecorder(out_dir=str(tmp_path))
        with flightrec.record(recorder):
            for i in range(5):
                monitor.record("v1", "f", 0.0, error=True, now=i * 0.01)
        assert monitor.breached
        assert any("slo-breach" in path for path in recorder.dumps)
        header = read_dump(recorder.dumps[0])["header"]
        assert header["target"] == "t"
        assert header["burn_long"] > 3.0


class TestStackSLOIntegration:
    def breach_everything_target(self, vm_id):
        # a threshold no routed command can meet: every reply breaches
        return SLOTarget(name="impossible", vm=vm_id, latency=1e-15,
                         objective=0.9, windows=ONE_WINDOW)

    def test_router_feeds_monitor_and_admin_report(self):
        hypervisor, vm = fresh_stack("vm-slo")
        monitor = SLOMonitor([self.breach_everything_target("vm-slo")])
        hypervisor.install_slo(monitor)
        env = open_env(vm.library("opencl"))
        data = np.ones(16, dtype=np.float32)
        mem = env.buffer(data.nbytes, host=data)
        for _ in range(10):
            env.write(mem, data)
        assert monitor.breached
        report = hypervisor.admin_report()
        assert report["_slo"]["breaches"] == len(monitor.events)
        (row,) = report["_slo"]["targets"]
        assert row["vm"] == "vm-slo"
        assert not row["compliant"]
        assert report["vm-slo"]["slo_breaches"] == len(monitor.events)

    def test_report_has_no_slo_section_without_monitor(self):
        hypervisor, vm = fresh_stack("vm-plain")
        open_env(vm.library("opencl"))
        report = hypervisor.admin_report()
        assert "_slo" not in report
        assert "slo_breaches" not in report["vm-plain"]


def _write_trace(tmp_path, name, duration, count=20, error=False):
    spans = [
        _function_span(i + 1, "vm-t", i * 0.01, duration, error=error)
        for i in range(count)
    ]
    path = tmp_path / name
    write_jsonl(spans, str(path))
    return str(path)


def _write_targets(tmp_path, latency_us=100.0):
    path = tmp_path / "targets.json"
    path.write_text(json.dumps({"targets": [{
        "name": "lat", "vm": "vm-*", "latency_us": latency_us,
        "objective": 0.9,
        "windows": [{"long": 1.0, "short": 0.2, "max_burn_rate": 3.0}],
    }]}))
    return str(path)


class TestCavaSloCLI:
    def test_compliant_trace_exits_zero(self, tmp_path, capsys):
        trace = _write_trace(tmp_path, "ok.jsonl", duration=10e-6)
        targets = _write_targets(tmp_path)
        code = cava_main(["slo", targets, "--trace", trace])
        assert code == 0
        assert "SLO ok" in capsys.readouterr().out

    def test_breach_trace_exits_one(self, tmp_path, capsys):
        trace = _write_trace(tmp_path, "slow.jsonl", duration=5e-3)
        targets = _write_targets(tmp_path)
        code = cava_main(["slo", targets, "--trace", trace])
        assert code == 1
        assert "SLO BREACH" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        trace = _write_trace(tmp_path, "slow.jsonl", duration=5e-3)
        targets = _write_targets(tmp_path)
        assert cava_main(["slo", targets, "--trace", trace,
                          "--json"]) == 1
        result = json.loads(capsys.readouterr().out)
        assert result["breached"] is True
        assert result["breaches"] >= 1
        assert result["events"][0]["vm"] == "vm-t"

    def test_bench_mode_gates(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"rows": [
            {"load_factor": 0.5, "compliant_fraction": 0.99},
            {"load_factor": 1.5, "compliant_fraction": 0.30},
        ]}))
        targets = tmp_path / "targets.json"
        targets.write_text(json.dumps({
            "targets": [{"name": "t"}],
            "bench_gates": [
                {"max_load": 1.0, "min_compliant_fraction": 0.9},
                {"min_load": 1.4, "min_compliant_fraction": 0.4},
            ],
        }))
        code = cava_main(["slo", str(targets), "--bench", str(bench),
                          "--json"])
        assert code == 1
        result = json.loads(capsys.readouterr().out)
        assert [g["pass"] for g in result["gates"]] == [True, False]

    def test_gate_matching_no_rows_fails(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"rows": [
            {"load_factor": 0.5, "compliant_fraction": 0.99},
        ]}))
        targets = tmp_path / "targets.json"
        targets.write_text(json.dumps({
            "targets": [{"name": "t"}],
            "bench_gates": [{"min_load": 3.0,
                             "min_compliant_fraction": 0.1}],
        }))
        assert cava_main(["slo", str(targets),
                          "--bench", str(bench)]) == 1

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        trace = _write_trace(tmp_path, "ok.jsonl", duration=10e-6)
        targets = _write_targets(tmp_path)
        # neither / both modes
        assert cava_main(["slo", targets]) == 2
        assert cava_main(["slo", targets, "--trace", trace,
                          "--bench", trace]) == 2
        # missing and malformed files
        assert cava_main(["slo", str(tmp_path / "absent.json"),
                          "--trace", trace]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert cava_main(["slo", str(bad), "--trace", trace]) == 2
        capsys.readouterr()

    def test_shipped_gate_passes_on_stored_bench(self, capsys):
        base = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks")
        code = cava_main([
            "slo", os.path.join(base, "slo_targets.json"),
            "--bench", os.path.join(base, "BENCH_overload.json"),
        ])
        assert code == 0
        assert "SLO ok" in capsys.readouterr().out


class TestBitIdentity:
    """The SLO/flightrec/histogram machinery costs nothing when off."""

    def test_figure5_reproduces_stored_json_exactly(self):
        from repro.harness import run_figure5

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_figure5.json")
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        rows = run_figure5()
        got = {
            row.name: (row.native.runtime, row.virtualized.runtime)
            for row in rows
        }
        want = {
            row["name"]: (row["native_runtime"], row["virtualized_runtime"])
            for row in stored["rows"]
        }
        assert got == want
