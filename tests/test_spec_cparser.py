"""Unit tests for the mini C header parser."""

import pytest

from repro.spec.cparser import parse_header
from repro.spec.errors import SpecSyntaxError

OPENCL_SNIPPET = """
#ifndef MINI_CL_H
#define MINI_CL_H
#define CL_SUCCESS 0
#define CL_TRUE 1
#define CL_FALSE 0
#define CL_MEM_READ_ONLY 0x4

typedef int cl_int;
typedef unsigned int cl_uint;
typedef unsigned int cl_bool;
typedef unsigned long cl_ulong;
typedef struct _cl_platform_id *cl_platform_id;
typedef struct _cl_mem *cl_mem;

cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id *platforms,
                        cl_uint *num_platforms);
cl_mem clCreateBuffer(cl_mem context, cl_ulong flags, size_t size,
                      void *host_ptr, cl_int *errcode_ret);
#endif
"""


class TestConstants:
    def test_numeric_defines_collected(self):
        info = parse_header(OPENCL_SNIPPET)
        assert info.constants["CL_SUCCESS"] == 0
        assert info.constants["CL_TRUE"] == 1
        assert info.constants["CL_MEM_READ_ONLY"] == 4

    def test_include_guard_define_ignored(self):
        info = parse_header(OPENCL_SNIPPET)
        assert "MINI_CL_H" not in info.constants

    def test_function_like_macro_ignored(self):
        info = parse_header("#define MAX(a,b) ((a)>(b)?(a):(b))\n")
        assert not info.constants

    def test_float_define(self):
        info = parse_header("#define PI 3.14\n")
        assert info.constants["PI"] == pytest.approx(3.14)


class TestTypedefs:
    def test_scalar_typedef(self):
        info = parse_header("typedef int cl_int;")
        assert "cl_int" in info.typedefs
        assert not info.typedefs["cl_int"].is_struct_pointer
        assert info.typedefs["cl_int"].size_bytes == 4

    def test_multiword_typedef(self):
        info = parse_header("typedef unsigned long cl_ulong;")
        assert info.typedefs["cl_ulong"].size_bytes == 8

    def test_struct_pointer_is_handle(self):
        info = parse_header("typedef struct _cl_mem *cl_mem;")
        assert info.typedefs["cl_mem"].is_struct_pointer
        assert info.is_handle_type("cl_mem")
        assert info.typedefs["cl_mem"].size_bytes == 8

    def test_non_handle_queries(self):
        info = parse_header("typedef int cl_int;")
        assert not info.is_handle_type("cl_int")
        assert not info.is_handle_type("unknown")

    def test_sizeof_fallbacks(self):
        info = parse_header("")
        assert info.sizeof("int") == 4
        assert info.sizeof("mystery") == 8


class TestFunctionDecls:
    def test_basic_prototype(self):
        info = parse_header(OPENCL_SNIPPET)
        decl = next(f for f in info.functions if f.name == "clGetPlatformIDs")
        assert str(decl.return_type) == "cl_int"
        names = [n for n, _ in decl.params]
        assert names == ["num_entries", "platforms", "num_platforms"]
        assert decl.params[1][1].pointer_depth == 1

    def test_const_pointer_param(self):
        info = parse_header(
            "typedef struct _cl_event *cl_event;\n"
            "int f(const cl_event *wait_list, unsigned int n);"
        )
        ctype = info.functions[0].params[0][1]
        assert ctype.is_const
        assert ctype.pointer_depth == 1
        assert ctype.base == "cl_event"

    def test_void_param_list(self):
        info = parse_header("int f(void);")
        assert info.functions[0].params == []

    def test_unnamed_params_get_synthetic_names(self):
        info = parse_header("int f(int, float);")
        assert [n for n, _ in info.functions[0].params] == ["arg0", "arg1"]

    def test_array_suffix_becomes_pointer(self):
        info = parse_header("int f(float data[], int n);")
        assert info.functions[0].params[0][1].pointer_depth == 1

    def test_double_pointer(self):
        info = parse_header("int f(char **strings, int n);")
        assert info.functions[0].params[0][1].pointer_depth == 2

    def test_pointer_return_type(self):
        info = parse_header("void *alloc_thing(size_t size);")
        decl = info.functions[0]
        assert decl.return_type.base == "void"
        assert decl.return_type.pointer_depth == 1
        assert decl.name == "alloc_thing"

    def test_malformed_decl_raises(self):
        with pytest.raises(SpecSyntaxError):
            parse_header("int f(int x;")

    def test_missing_semicolon_raises(self):
        with pytest.raises(SpecSyntaxError):
            parse_header("int f(int x)")

    def test_long_param_not_miparsed_as_long_long(self):
        info = parse_header("int f(long foo);")
        name, ctype = info.functions[0].params[0]
        assert name == "foo"
        assert ctype.base == "long"
