"""Unit and property tests for the spec expression engine."""

import pytest
from hypothesis import given, strategies as st

from repro.spec.errors import ExprError
from repro.spec.expr import (
    Binary,
    Evaluator,
    Literal,
    Name,
    SizeOf,
    evaluate,
    parse_expr,
)


class TestParsing:
    def test_literal(self):
        assert evaluate(parse_expr("42"), {}) == 42

    def test_hex_literal(self):
        assert evaluate(parse_expr("0x10"), {}) == 16

    def test_name_lookup(self):
        assert evaluate(parse_expr("size"), {"size": 128}) == 128

    def test_unbound_name_raises(self):
        with pytest.raises(ExprError):
            evaluate(parse_expr("ghost"), {})

    def test_arithmetic_precedence(self):
        assert evaluate(parse_expr("2 + 3 * 4"), {}) == 14

    def test_parentheses(self):
        assert evaluate(parse_expr("(2 + 3) * 4"), {}) == 20

    def test_unary_minus(self):
        assert evaluate(parse_expr("-5 + 10"), {}) == 5

    def test_unary_not(self):
        assert evaluate(parse_expr("!0"), {}) == 1
        assert evaluate(parse_expr("!3"), {}) == 0

    def test_comparison(self):
        env = {"a": 1, "b": 2}
        assert evaluate(parse_expr("a < b"), env) == 1
        assert evaluate(parse_expr("a >= b"), env) == 0
        assert evaluate(parse_expr("a != b"), env) == 1

    def test_logical_short_circuit_style(self):
        env = {"x": 1, "y": 0}
        assert evaluate(parse_expr("x && y"), env) == 0
        assert evaluate(parse_expr("x || y"), env) == 1

    def test_ternary(self):
        env = {"blocking": 1}
        assert evaluate(parse_expr("blocking ? 10 : 20"), env) == 10
        assert evaluate(parse_expr("blocking ? 10 : 20"), {"blocking": 0}) == 20

    def test_sizeof_known_type(self):
        assert evaluate(parse_expr("sizeof(cl_event)"), {}) == 8
        assert evaluate(parse_expr("4 * sizeof(float)"), {}) == 16

    def test_sizeof_unknown_type_raises(self):
        with pytest.raises(ExprError):
            evaluate(parse_expr("sizeof(struct nothing)"), {})

    def test_sizeof_custom_table(self):
        assert evaluate(parse_expr("sizeof(weird)"), {}, {"weird": 3}) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExprError):
            parse_expr("1 + 2 }")

    def test_division_by_zero(self):
        with pytest.raises(ExprError):
            evaluate(parse_expr("1 / 0"), {})

    def test_modulo(self):
        assert evaluate(parse_expr("7 % 3"), {}) == 1

    def test_figure4_condition(self):
        expr = parse_expr("blocking_read == CL_TRUE")
        assert evaluate(expr, {"blocking_read": 1, "CL_TRUE": 1}) == 1
        assert evaluate(expr, {"blocking_read": 0, "CL_TRUE": 1}) == 0


class TestNamesAndSource:
    def test_names_collected(self):
        expr = parse_expr("a * b + sizeof(int) + 3")
        assert expr.names() == {"a", "b"}

    def test_to_source_round_trips(self):
        source = "(a + b) * sizeof(cl_event)"
        expr = parse_expr(source)
        again = parse_expr(expr.to_source())
        env = {"a": 2, "b": 3}
        assert evaluate(expr, env) == evaluate(again, env)

    def test_ternary_names(self):
        expr = parse_expr("c ? x : y")
        assert expr.names() == {"c", "x", "y"}


class TestProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_literal_round_trip(self, value):
        expr = parse_expr(str(value))
        assert evaluate(expr, {}) == value

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_addition_matches_python(self, a, b):
        assert evaluate(parse_expr("a + b"), {"a": a, "b": b}) == a + b

    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
    )
    def test_precedence_matches_python(self, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert evaluate(parse_expr("a + b * c"), env) == a + b * c
        assert evaluate(parse_expr("(a + b) * c"), env) == (a + b) * c

    @given(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]),
           st.integers(-50, 50), st.integers(-50, 50))
    def test_comparisons_match_python(self, op, a, b):
        expected = {
            "<": a < b, ">": a > b, "<=": a <= b,
            ">=": a >= b, "==": a == b, "!=": a != b,
        }[op]
        result = evaluate(parse_expr(f"a {op} b"), {"a": a, "b": b})
        assert bool(result) == expected

    def test_round_trip_source_stable(self):
        expr = parse_expr("n * sizeof(float) + (blocking ? 4 : 0)")
        once = expr.to_source()
        twice = parse_expr(once).to_source()
        assert once == twice


class TestEvaluatorEdgeCases:
    def test_none_env_value_treated_as_zero(self):
        assert evaluate(parse_expr("x + 1"), {"x": None}) == 1

    def test_direct_nodes(self):
        expr = Binary("+", Literal(1), Name("n"))
        assert Evaluator({"n": 2}).evaluate(expr) == 3

    def test_sizeof_node_names_empty(self):
        assert SizeOf("float").names() == set()
