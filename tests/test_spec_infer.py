"""Unit tests for preliminary-spec inference from headers."""

import pytest

from repro.spec.cparser import parse_header
from repro.spec.infer import SizeConvention, infer_preliminary_spec
from repro.spec.model import Direction, RecordKind, SyncMode

HEADER = """
#define CL_SUCCESS 0
#define CL_TRUE 1
typedef int cl_int;
typedef unsigned int cl_uint;
typedef unsigned int cl_bool;
typedef struct _cl_context *cl_context;
typedef struct _cl_mem *cl_mem;
typedef struct _cl_event *cl_event;

cl_int clGetThings(cl_uint num_entries, cl_int *things, cl_uint *num_things);
cl_mem clCreateBuffer(cl_context context, cl_uint flags, size_t size,
                      void *host_ptr, cl_int *errcode_ret);
cl_int clReleaseMemObject(cl_mem memobj);
cl_int clSetKernelArg(cl_mem kernel, cl_uint arg_index, size_t arg_size,
                      const void *arg_value);
cl_int clBuildProgram(cl_mem program, const char *options);
"""


@pytest.fixture()
def spec():
    return infer_preliminary_spec(parse_header(HEADER), "opencl")


class TestTypeInference:
    def test_handle_types_detected(self, spec):
        assert spec.types["cl_mem"].is_handle
        assert spec.types["cl_context"].is_handle
        assert not spec.types["cl_int"].is_handle

    def test_success_constant_attached_to_status_type(self, spec):
        assert spec.types["cl_int"].success_value == "CL_SUCCESS"

    def test_constants_carried_over(self, spec):
        assert spec.constants["CL_TRUE"] == 1


class TestParameterInference:
    def test_handle_scalar_param(self, spec):
        param = spec.function("clReleaseMemObject").param("memobj")
        assert param.is_handle
        assert not param.is_buffer

    def test_const_void_pointer_is_input(self, spec):
        param = spec.function("clSetKernelArg").param("arg_value")
        assert param.direction is Direction.IN

    def test_size_convention_finds_sibling(self, spec):
        param = spec.function("clSetKernelArg").param("arg_value")
        assert param.buffer_size is not None
        assert param.buffer_size.names() == {"arg_size"}

    def test_out_scalar_single_element(self, spec):
        param = spec.function("clCreateBuffer").param("errcode_ret")
        assert param.direction is Direction.OUT
        assert param.buffer_size is not None
        assert param.buffer_is_elements

    def test_const_string_param(self, spec):
        param = spec.function("clBuildProgram").param("options")
        assert param.is_string
        assert param.direction is Direction.IN

    def test_plural_count_convention(self, spec):
        param = spec.function("clGetThings").param("things")
        assert param.direction is Direction.OUT
        # matched via num_{stem}s → num_things
        assert param.buffer_size.names() == {"num_things"}

    def test_all_params_marked_inferred(self, spec):
        func = spec.function("clCreateBuffer")
        assert all(p.inferred for p in func.params)

    def test_uninferable_size_produces_guidance(self):
        header = parse_header("int f(const float *mystery, int unrelated);")
        result = infer_preliminary_spec(header, "x")
        assert any("mystery" in line for line in result.guidance)
        assert result.function("f").param("mystery").buffer_size is None


class TestFunctionInference:
    def test_record_kind_create(self, spec):
        assert spec.function("clCreateBuffer").record_kind is RecordKind.CREATE

    def test_record_kind_destroy(self, spec):
        assert (
            spec.function("clReleaseMemObject").record_kind
            is RecordKind.DESTROY
        )

    def test_record_kind_modify(self, spec):
        assert spec.function("clSetKernelArg").record_kind is RecordKind.MODIFY
        assert spec.function("clBuildProgram").record_kind is RecordKind.MODIFY

    def test_default_sync(self, spec):
        func = spec.function("clSetKernelArg")
        assert func.sync_policy.resolve({}) is SyncMode.SYNC

    def test_preliminary_spec_validates(self, spec):
        assert spec.validate() == []


class TestSizeConvention:
    def test_custom_patterns(self):
        header = parse_header("int f(const float *data, int data_elems);")
        convention = SizeConvention(patterns=("{name}_elems",))
        result = infer_preliminary_spec(header, "x", convention)
        param = result.function("f").param("data")
        assert param.buffer_size.names() == {"data_elems"}

    def test_generic_fallback_single_pointer_only(self):
        header = parse_header("int f(const float *a, const float *b, int size);")
        result = infer_preliminary_spec(parse_header(
            "int g(const float *only, int size);"), "x")
        assert result.function("g").param("only").buffer_size is not None
        two_ptr = infer_preliminary_spec(header, "x")
        assert two_ptr.function("f").param("a").buffer_size is None
