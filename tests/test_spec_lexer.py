"""Unit tests for the shared tokenizer."""

import pytest

from repro.spec.errors import SpecSyntaxError
from repro.spec.lexer import (
    DIRECTIVE,
    EOF,
    IDENT,
    NUMBER,
    PUNCT,
    STRING,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifiers(self):
        assert values("foo _bar baz123") == ["foo", "_bar", "baz123"]

    def test_numbers_decimal(self):
        assert values("0 42 123") == ["0", "42", "123"]

    def test_numbers_hex(self):
        tokens = tokenize("0xFF 0x10")
        assert tokens[0].value == "0xFF"
        assert tokens[1].value == "0x10"

    def test_numbers_with_suffix(self):
        assert values("10UL 5f") == ["10", "5"]

    def test_float_literal(self):
        assert values("3.25") == ["3.25"]

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == STRING
        assert tokens[0].value == "hello world"

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\"c"')
        assert tokens[0].value == 'a\nb"c'

    def test_unterminated_string_raises(self):
        with pytest.raises(SpecSyntaxError):
            tokenize('"abc')

    def test_char_literal_becomes_number(self):
        tokens = tokenize("'A'")
        assert tokens[0].kind == NUMBER
        assert tokens[0].value == str(ord("A"))

    def test_punctuation(self):
        assert values("( ) { } ; , *") == ["(", ")", "{", "}", ";", ",", "*"]

    def test_two_char_operators(self):
        assert values("== != <= >= && ||") == ["==", "!=", "<=", ">=", "&&", "||"]

    def test_unexpected_character(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("@")


class TestCommentsAndDirectives:
    def test_line_comment_stripped(self):
        assert values("foo // comment\nbar") == ["foo", "bar"]

    def test_block_comment_stripped(self):
        assert values("foo /* x\ny */ bar") == ["foo", "bar"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("/* never ends")

    def test_include_directive(self):
        tokens = tokenize("#include <CL/cl.h>\nfoo")
        assert tokens[0].kind == DIRECTIVE
        assert tokens[0].value == "#include <CL/cl.h>"
        assert tokens[1].value == "foo"

    def test_define_directive(self):
        tokens = tokenize("#define CL_SUCCESS 0")
        assert tokens[0].kind == DIRECTIVE
        assert tokens[0].value == "#define CL_SUCCESS 0"

    def test_directive_backslash_continuation(self):
        tokens = tokenize("#define X \\\n 1\nfoo")
        assert tokens[0].kind == DIRECTIVE
        assert "1" in tokens[0].value
        assert tokens[1].value == "foo"


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("ok\n   @")
        except SpecSyntaxError as err:
            assert err.line == 2
        else:
            pytest.fail("expected SpecSyntaxError")

    def test_token_helpers(self):
        tokens = tokenize("foo (")
        assert tokens[0].is_ident("foo")
        assert tokens[0].is_ident()
        assert not tokens[0].is_punct("(")
        assert tokens[1].is_punct("(")
        assert not tokens[1].is_ident()
