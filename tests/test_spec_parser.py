"""Unit tests for the CAvA spec-language parser (Figure 4 syntax)."""

import textwrap

import pytest

from repro.spec import parse_spec, parse_spec_file
from repro.spec.errors import SpecSyntaxError
from repro.spec.model import Direction, RecordKind, SyncMode

FIGURE4 = """
api(opencl);
type(cl_int) { success(CL_SUCCESS); }
type(cl_command_queue) { handle; }
type(cl_mem) { handle; }
type(cl_event) { handle; }

cl_int clEnqueueReadBuffer(
    cl_command_queue command_queue,
    cl_mem buf, cl_bool blocking_read,
    size_t offset, size_t size, void *ptr,
    cl_uint num_events_in_wait_list,
    const cl_event *event_wait_list, cl_event *event) {
  if (blocking_read == CL_TRUE) sync; else async;
  parameter(ptr) { out; buffer(size); }
  parameter(event_wait_list) {
    buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
}
"""


@pytest.fixture()
def figure4_spec():
    spec = parse_spec(FIGURE4)
    spec.constants.setdefault("CL_TRUE", 1.0)
    spec.constants.setdefault("CL_SUCCESS", 0.0)
    return spec


class TestFigure4:
    def test_api_name(self, figure4_spec):
        assert figure4_spec.name == "opencl"

    def test_type_success_annotation(self, figure4_spec):
        assert figure4_spec.types["cl_int"].success_value == "CL_SUCCESS"

    def test_handle_types(self, figure4_spec):
        assert figure4_spec.types["cl_mem"].is_handle
        assert "cl_mem" in figure4_spec.handle_types()

    def test_conditional_sync(self, figure4_spec):
        func = figure4_spec.function("clEnqueueReadBuffer")
        env = {"blocking_read": 1, "CL_TRUE": 1}
        assert func.sync_policy.resolve(env) is SyncMode.SYNC
        env["blocking_read"] = 0
        assert func.sync_policy.resolve(env) is SyncMode.ASYNC

    def test_out_buffer_with_size_expr(self, figure4_spec):
        param = figure4_spec.function("clEnqueueReadBuffer").param("ptr")
        assert param.direction is Direction.OUT
        assert param.buffer_size.names() == {"size"}
        assert not param.buffer_is_elements  # void* sizes are bytes

    def test_const_pointer_inferred_input(self, figure4_spec):
        param = figure4_spec.function("clEnqueueReadBuffer").param(
            "event_wait_list"
        )
        assert param.direction is Direction.IN
        assert param.buffer_is_elements

    def test_element_allocates(self, figure4_spec):
        param = figure4_spec.function("clEnqueueReadBuffer").param("event")
        assert param.element_allocates
        assert param.direction is Direction.OUT
        assert param.buffer_size is not None  # implied single element

    def test_handle_param_inferred_from_type_decl(self, figure4_spec):
        param = figure4_spec.function("clEnqueueReadBuffer").param("buf")
        assert param.is_handle

    def test_success_value_resolution(self, figure4_spec):
        func = figure4_spec.function("clEnqueueReadBuffer")
        assert figure4_spec.success_value_of(func) == 0.0

    def test_spec_validates(self, figure4_spec):
        assert figure4_spec.validate() == []


class TestAnnotations:
    def test_unconditional_async(self):
        spec = parse_spec("int setThing(int kernel, int value) { async; }")
        func = spec.function("setThing")
        assert func.sync_policy.resolve({}) is SyncMode.ASYNC

    def test_consumes_resource(self):
        spec = parse_spec(
            "int copyData(int dst, size_t nbytes) "
            "{ consumes(bus_bytes, nbytes); }"
        )
        func = spec.function("copyData")
        assert "bus_bytes" in func.resources
        assert func.resources["bus_bytes"].names() == {"nbytes"}

    def test_record_annotation(self):
        spec = parse_spec("int makeIt(int ctx) { record(create); }")
        assert spec.function("makeIt").record_kind is RecordKind.CREATE

    def test_norecord_overrides_inference(self):
        spec = parse_spec("int clCreateThing(int ctx) { norecord; }")
        assert spec.function("clCreateThing").record_kind is None

    def test_record_inferred_from_name_without_annotation(self):
        spec = parse_spec("int clCreateThing(int ctx);")
        assert spec.function("clCreateThing").record_kind is RecordKind.CREATE

    def test_unsupported(self):
        spec = parse_spec("int weird(void) { unsupported; }")
        assert spec.function("weird").unsupported

    def test_string_annotation(self):
        spec = parse_spec(
            "int build(int prog, char *opts) { parameter(opts) { string; } }"
        )
        param = spec.function("build").param("opts")
        assert param.is_string

    def test_nullable(self):
        spec = parse_spec(
            "int f(const float *maybe, int maybe_count) "
            "{ parameter(maybe) { nullable; } }"
        )
        assert spec.function("f").param("maybe").nullable

    def test_bytes_override(self):
        spec = parse_spec(
            "int f(const float *data, int n) "
            "{ parameter(data) { buffer(n); bytes; } }"
        )
        assert not spec.function("f").param("data").buffer_is_elements

    def test_inout_direction(self):
        spec = parse_spec(
            "int f(float *data, int data_size) "
            "{ parameter(data) { inout; buffer(data_size); } }"
        )
        assert spec.function("f").param("data").direction is Direction.INOUT

    def test_deallocates(self):
        spec = parse_spec(
            "int release(int obj) { parameter(obj) { handle; deallocates; } }"
        )
        param = spec.function("release").param("obj")
        assert param.element_deallocates


class TestErrors:
    def test_unknown_annotation(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("int f(int x) { frobnicate; }")

    def test_unknown_parameter(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("int f(int x) { parameter(nope) { in; } }")

    def test_unknown_record_kind(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("int f(int x) { record(sideways); }")

    def test_missing_semicolon(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("int f(int x) { sync }")

    def test_unknown_type_annotation(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("type(cl_int) { wat; }")


class TestIncludes:
    def test_include_resolves_relative_to_spec(self, tmp_path):
        header = tmp_path / "mini.h"
        header.write_text(
            "#define OK 0\n"
            "typedef struct _thing *thing;\n"
        )
        spec_path = tmp_path / "mini.cava"
        spec_path.write_text(
            '#include "mini.h"\n'
            "api(mini);\n"
            "int doIt(thing t);\n"
        )
        spec = parse_spec_file(str(spec_path))
        assert spec.constants["OK"] == 0
        assert spec.types["thing"].is_handle
        assert spec.function("doIt").param("t").is_handle

    def test_missing_include_adds_guidance(self):
        spec = parse_spec('#include "nowhere.h"\napi(x);\n')
        assert any("nowhere.h" in line for line in spec.guidance)

    def test_angle_include(self, tmp_path):
        header = tmp_path / "cl.h"
        header.write_text("#define CL_SUCCESS 0\n")
        spec = parse_spec(
            "#include <CL/cl.h>\napi(opencl);\n",
            include_dirs=[str(tmp_path)],
        )
        assert spec.constants["CL_SUCCESS"] == 0


class TestShrinks:
    def test_shrinks_annotation(self):
        spec = parse_spec(
            "int f(float *out_data, int out_data_size, int *produced) "
            "{ parameter(out_data) { out; buffer(out_data_size); "
            "shrinks(produced); } }"
        )
        assert spec.function("f").param("out_data").shrinks_to == "produced"
        assert spec.validate() == []

    def test_shrinks_unknown_target_invalid(self):
        spec = parse_spec(
            "int f(float *out_data, int out_data_size) "
            "{ parameter(out_data) { out; buffer(out_data_size); "
            "shrinks(ghost); } }"
        )
        assert any("ghost" in p for p in spec.validate())

    def test_shrinks_on_input_invalid(self):
        spec = parse_spec(
            "int f(const float *data, int data_size, int *produced) "
            "{ parameter(data) { buffer(data_size); shrinks(produced); } }"
        )
        assert any("not an output" in p for p in spec.validate())
