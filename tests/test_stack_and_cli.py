"""Tests for the deployment helper and the ``cava`` CLI workflow."""

import os

import pytest

from repro.codegen.cli import main as cava_main
from repro.stack import (
    VirtualStack,
    build_stack,
    default_specs_dir,
    load_spec,
    make_hypervisor,
)


class TestStack:
    def test_specs_dir_located(self):
        directory = default_specs_dir()
        assert os.path.isfile(os.path.join(directory, "opencl.cava"))
        assert os.path.isfile(os.path.join(directory, "cl.h"))

    def test_opencl_spec_has_39_functions(self):
        spec = load_spec("opencl")
        assert len(spec.functions) == 39
        assert spec.validate() == []

    def test_mvnc_spec_has_13_functions(self):
        spec = load_spec("mvnc")
        assert len(spec.functions) == 13
        assert spec.validate() == []

    def test_stack_cached(self):
        assert build_stack("opencl") is build_stack("opencl")

    def test_unknown_api_rejected(self):
        with pytest.raises(KeyError):
            build_stack("directx")

    def test_hypervisor_with_both_apis(self):
        hv = make_hypervisor(apis=("opencl", "mvnc"))
        vm = hv.create_vm("vm-both")
        assert vm.library("opencl") is not None
        assert vm.library("mvnc") is not None

    def test_duplicate_vm_rejected(self):
        hv = make_hypervisor(apis=("opencl",))
        hv.create_vm("dup")
        with pytest.raises(ValueError):
            hv.create_vm("dup")

    def test_unknown_transport_rejected(self):
        hv = make_hypervisor(apis=("opencl",))
        with pytest.raises(ValueError):
            hv.create_vm("vm-t", transport="carrier-pigeon")

    def test_destroy_vm(self):
        hv = make_hypervisor(apis=("opencl",))
        vm = hv.create_vm("vm-d")
        vm.library("opencl").clGetPlatformIDs(1, [None], None)
        assert ("vm-d", "opencl") in hv.workers
        hv.destroy_vm("vm-d")
        assert ("vm-d", "opencl") not in hv.workers


class TestVirtualStackFacade:
    def test_build_add_vm_is_ready_to_call(self):
        session = VirtualStack.build("opencl").add_vm("vm0")
        assert session.lib.clGetPlatformIDs(1, [None], None) == 0
        assert session.time > 0.0

    def test_default_api_is_opencl(self):
        stack = VirtualStack.build()
        assert stack.apis == ["opencl"]

    def test_lib_ambiguous_on_multi_api_stack(self):
        stack = VirtualStack.build("opencl", "mvnc")
        session = stack.add_vm("vm-multi")
        with pytest.raises(ValueError, match="pick one"):
            session.lib
        assert session.library("opencl") is not None
        assert session.library("mvnc") is not None

    def test_sessions_are_tracked(self):
        stack = VirtualStack.build("opencl")
        session = stack.add_vm("vm-a")
        assert stack.session("vm-a") is session
        assert session.vm_id == "vm-a"

    def test_session_shutdown_destroys_vm(self):
        stack = VirtualStack.build("opencl")
        session = stack.add_vm("vm-gone")
        session.lib.clGetPlatformIDs(1, [None], None)
        assert ("vm-gone", "opencl") in stack.hypervisor.workers
        session.shutdown()
        assert ("vm-gone", "opencl") not in stack.hypervisor.workers

    def test_make_hypervisor_is_thin_wrapper(self):
        hv = make_hypervisor(apis=("opencl",))
        stack = VirtualStack.build("opencl")
        assert sorted(hv.apis) == sorted(stack.hypervisor.apis)

    def test_router_and_admin_report_exposed(self):
        stack = VirtualStack.build("opencl")
        session = stack.add_vm("vm-adm")
        session.lib.clGetPlatformIDs(1, [None], None)
        assert stack.router is stack.hypervisor.router
        report = stack.admin_report()
        assert "vm-adm" in report


class TestCavaCLI:
    def test_infer_writes_preliminary_spec(self, tmp_path, capsys):
        header = os.path.join(default_specs_dir(), "mvnc.h")
        out = tmp_path / "preliminary.cava"
        code = cava_main(["infer", header, "--api", "mvnc", "-o", str(out)])
        assert code == 0
        text = out.read_text()
        assert "mvncOpenDevice" in text
        assert "api(mvnc);" in text

    def test_infer_to_stdout(self, capsys):
        header = os.path.join(default_specs_dir(), "mvnc.h")
        assert cava_main(["infer", header, "--api", "mvnc"]) == 0
        assert "mvncLoadTensor" in capsys.readouterr().out

    def test_check_shipped_specs(self, capsys):
        for name in ("opencl", "mvnc"):
            spec = os.path.join(default_specs_dir(), f"{name}.cava")
            assert cava_main(["check", spec]) == 0
        assert "spec OK" in capsys.readouterr().out

    def test_check_invalid_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.cava"
        bad.write_text(
            "api(x);\n"
            "int f(float *out_data) "
            "{ parameter(out_data) { out; buffer(ghost); } }\n"
        )
        assert cava_main(["check", str(bad)]) == 1
        assert "ghost" in capsys.readouterr().out

    def test_generate_produces_three_modules(self, tmp_path, capsys):
        spec = os.path.join(default_specs_dir(), "mvnc.cava")
        out_dir = tmp_path / "gen"
        code = cava_main([
            "generate", spec, "--native", "repro.mvnc.api",
            "-o", str(out_dir),
        ])
        assert code == 0
        assert (out_dir / "mvnc_guest.py").exists()
        assert (out_dir / "mvnc_server.py").exists()
        assert (out_dir / "mvnc_routing.py").exists()

    def test_missing_file_reports_error(self, capsys):
        assert cava_main(["check", "/nonexistent.cava"]) == 2
        assert "cava:" in capsys.readouterr().err

    def test_full_workflow_infer_then_generate(self, tmp_path):
        """Figure 2 end-to-end: header → preliminary spec → generate."""
        header = tmp_path / "toy.h"
        header.write_text(
            "#define TOY_SUCCESS 0\n"
            "typedef int toy_status;\n"
            "typedef struct _toy_ctx *toy_ctx;\n"
            "toy_status toyCreate(int flags, toy_ctx *out_ctx);\n"
            "toy_status toyCompute(toy_ctx ctx, const float *data, "
            "int data_size);\n"
            "toy_status toyDestroy(toy_ctx ctx);\n"
        )
        spec_path = tmp_path / "toy.cava"
        assert cava_main(["infer", str(header), "--api", "toy",
                          "-o", str(spec_path)]) == 0
        # splice in the include so handle types resolve on re-parse
        spec_text = spec_path.read_text()
        assert cava_main(["check", str(spec_path)]) == 0
        out_dir = tmp_path / "gen"
        assert cava_main(["generate", str(spec_path), "--native",
                          "toy.native", "-o", str(out_dir)]) == 0
        generated = (out_dir / "toy_guest.py").read_text()
        assert "def toyCreate" in generated
        assert "def toyCompute" in generated


class TestEffortAccounting:
    def test_effort_reports(self):
        from repro.harness.effort import measure_effort

        report = measure_effort("opencl", default_specs_dir(),
                                "repro.opencl.api")
        assert report.functions_total == 39
        assert report.spec_loc < report.generated_loc
        assert report.leverage > 3.0
        assert 0.5 < report.inference_rate <= 1.0

    def test_mvnc_effort(self):
        from repro.harness.effort import measure_effort

        report = measure_effort("mvnc", default_specs_dir(),
                                "repro.mvnc.api")
        assert report.functions_total == 13
        assert report.inference_rate > 0.5

    def test_count_loc_skips_comments(self):
        from repro.harness.effort import count_loc

        assert count_loc("// c\n\nreal();\n# py\nmore();\n") == 2


class TestCavaEffortAndVerifyCLI:
    def test_effort_subcommand(self, capsys):
        assert cava_main(["effort", "mvnc"]) == 0
        out = capsys.readouterr().out
        assert "mvnc" in out
        assert "leverage" in out

    def test_verify_subcommand_ok(self, capsys):
        spec = os.path.join(default_specs_dir(), "qat.cava")
        assert cava_main(["verify", spec]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_verify_subcommand_verbose(self, capsys):
        spec = os.path.join(default_specs_dir(), "mvnc.cava")
        assert cava_main(["verify", spec, "-v"]) == 0
        assert "mvncGetResult" in capsys.readouterr().out

    def test_verify_subcommand_failing(self, tmp_path, capsys):
        bad = tmp_path / "bad.cava"
        bad.write_text(
            "api(x);\n"
            "int f(float *out_data, int out_data_size) {\n"
            "  async;\n"
            "  parameter(out_data) { out; buffer(out_data_size); }\n"
            "}\n"
        )
        assert cava_main(["verify", str(bad)]) == 1
        assert "required outputs" in capsys.readouterr().out


class TestCavaTopFlags:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        from repro.harness.runner import run_virtualized
        from repro.telemetry import Tracer, write_jsonl
        from repro.workloads import KMeansWorkload

        tracer = Tracer()
        run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-top",
                        tracer=tracer)
        path = tmp_path_factory.mktemp("traces") / "top.jsonl"
        return write_jsonl(tracer.all_spans(), str(path))

    def test_top_percentiles_columns(self, trace_file, capsys):
        assert cava_main(["top", trace_file, "--percentiles"]) == 0
        out = capsys.readouterr().out
        for column in ("p50 us", "p99 us", "p999 us"):
            assert column in out

    def test_top_without_flag_has_no_percentiles(self, trace_file,
                                                 capsys):
        assert cava_main(["top", trace_file]) == 0
        assert "p999 us" not in capsys.readouterr().out

    def test_top_vm_filter_matches(self, trace_file, capsys):
        assert cava_main(["top", trace_file, "--vm", "vm-top"]) == 0
        out = capsys.readouterr().out
        assert "vm-top" in out
        assert "1 VM(s)" in out

    def test_top_vm_filter_no_match(self, trace_file, capsys):
        assert cava_main(["top", trace_file, "--vm", "vm-ghost"]) == 0
        assert "no spans for VM 'vm-ghost'" in capsys.readouterr().out

    def test_top_flags_combined(self, trace_file, capsys):
        assert cava_main(["top", trace_file, "--vm", "vm-top",
                          "--percentiles"]) == 0
        out = capsys.readouterr().out
        assert "p99 us" in out
        assert "vm-top" in out
