"""Tests for buffer-granularity memory swapping vs the page baseline."""

import numpy as np
import pytest

from repro.opencl import runtime as rt
from repro.opencl.device import DeviceSpec, SimulatedGPU
from repro.opencl.errors import CLError
from repro.server.swap import ObjectSwapManager, PageSwapManager


def small_session(manager, mem_bytes=1 << 20):
    gpu = SimulatedGPU(DeviceSpec.small_gpu(mem_bytes=mem_bytes))
    return rt.session([gpu], memory_manager=manager)


def make_buffers(sess, count, size):
    ctx = rt.Context(sess, sess.devices)
    queue = rt.CommandQueue(ctx, sess.devices[0])
    return queue, [rt.MemObject(ctx, 0, size, sess.devices[0])
                   for i in range(count)]


class TestObjectSwap:
    def test_oversubscription_does_not_oom(self):
        manager = ObjectSwapManager(capacity_bytes=1 << 20)
        with small_session(manager) as sess:
            # 8 × 256 KiB into 1 MiB of device memory
            queue, mems = make_buffers(sess, 8, 256 * 1024)
            assert manager.stats.evictions >= 4

    def test_without_swap_this_ooms(self):
        with small_session(rt.MemoryManager(), mem_bytes=1 << 20) as sess:
            with pytest.raises(CLError):
                make_buffers(sess, 8, 256 * 1024)

    def test_data_survives_eviction_and_return(self):
        manager = ObjectSwapManager(capacity_bytes=1 << 20)
        with small_session(manager) as sess:
            queue, mems = make_buffers(sess, 2, 256 * 1024)
            rt.enqueue_write(queue, mems[0], 0, 4, b"\x01\x02\x03\x04",
                             blocking=True)
            # force mems[0] out by touching enough other data
            _, extra = make_buffers(sess, 4, 256 * 1024)
            assert not mems[0].resident
            payload, _ = rt.enqueue_read(queue, mems[0], 0, 4, blocking=True)
            assert payload == b"\x01\x02\x03\x04"
            assert mems[0].resident

    def test_swap_in_charges_time(self):
        manager = ObjectSwapManager(capacity_bytes=1 << 20)
        with small_session(manager) as sess:
            queue, mems = make_buffers(sess, 8, 256 * 1024)
            target = mems[0]
            assert not target.resident
            before = sess.clock.now
            rt.enqueue_read(queue, target, 0, 4, blocking=True)
            assert sess.clock.now - before >= \
                sess.devices[0].copy_cost(256 * 1024)

    def test_lru_victim_selection(self):
        manager = ObjectSwapManager(capacity_bytes=3 * 256 * 1024)
        with small_session(manager) as sess:
            queue, mems = make_buffers(sess, 3, 256 * 1024)
            # touch 0 and 1 so 2 is LRU... then allocate one more
            rt.enqueue_read(queue, mems[0], 0, 4, blocking=True)
            rt.enqueue_read(queue, mems[1], 0, 4, blocking=True)
            rt.enqueue_read(queue, mems[2], 0, 4, blocking=True)
            rt.enqueue_read(queue, mems[1], 0, 4, blocking=True)
            rt.enqueue_read(queue, mems[0], 0, 4, blocking=True)
            make_buffers(sess, 1, 256 * 1024)
            assert not mems[2].resident
            assert mems[0].resident

    def test_buffer_larger_than_capacity_fails(self):
        manager = ObjectSwapManager(capacity_bytes=1024)
        with small_session(manager) as sess:
            ctx = rt.Context(sess, sess.devices)
            with pytest.raises(CLError):
                rt.MemObject(ctx, 0, 4096, sess.devices[0])

    def test_free_releases_residency(self):
        manager = ObjectSwapManager(capacity_bytes=1 << 20)
        with small_session(manager) as sess:
            queue, mems = make_buffers(sess, 2, 256 * 1024)
            mems[0].release()
            assert mems[0] not in manager._resident


class TestPageSwapBaseline:
    def test_page_granularity_many_ops(self):
        object_manager = ObjectSwapManager(capacity_bytes=1 << 20)
        page_manager = PageSwapManager(capacity_bytes=1 << 20,
                                       page_bytes=4096)
        for manager in (object_manager, page_manager):
            with small_session(manager) as sess:
                queue, mems = make_buffers(sess, 8, 256 * 1024)
                for mem in mems:  # touch everything → thrash
                    rt.enqueue_read(queue, mem, 0, 4, blocking=True)
        assert page_manager.stats.total_ops > \
            object_manager.stats.total_ops * 10

    def test_object_granularity_lower_stall(self):
        object_manager = ObjectSwapManager(capacity_bytes=1 << 20)
        page_manager = PageSwapManager(capacity_bytes=1 << 20,
                                       page_bytes=4096)
        for manager in (object_manager, page_manager):
            with small_session(manager) as sess:
                queue, mems = make_buffers(sess, 8, 256 * 1024)
                for _ in range(3):
                    for mem in mems:
                        rt.enqueue_read(queue, mem, 0, 4, blocking=True)
        assert object_manager.stats.stall_seconds < \
            page_manager.stats.stall_seconds

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            PageSwapManager(page_bytes=0)

    def test_bytes_accounted_equally(self):
        object_manager = ObjectSwapManager(capacity_bytes=1 << 20)
        page_manager = PageSwapManager(capacity_bytes=1 << 20)
        for manager in (object_manager, page_manager):
            with small_session(manager) as sess:
                queue, mems = make_buffers(sess, 8, 256 * 1024)
                rt.enqueue_read(queue, mems[0], 0, 4, blocking=True)
        assert object_manager.stats.bytes_in == page_manager.stats.bytes_in


class TestSwapUnderForwarding:
    def test_guest_workload_survives_tiny_device(self):
        """A guest sees no OOM on an oversubscribed device (the paper's
        'avoids exposing out-of-memory conditions' property)."""
        from repro.stack import make_hypervisor
        from repro.opencl.device import DeviceSpec, SimulatedGPU
        from repro.workloads import NWWorkload

        hv = make_hypervisor(
            apis=("opencl",),
            gpu_factory=lambda: SimulatedGPU(
                DeviceSpec.small_gpu(mem_bytes=192 * 1024)
            ),
            memory_manager_factory=lambda: ObjectSwapManager(),
        )
        vm = hv.create_vm("vm-tight")
        # nw at n=128 needs ~66KB score + 64KB similarity + slack
        result = NWWorkload(scale=0.5).run(vm.library("opencl"))
        assert result.verified
