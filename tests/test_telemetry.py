"""Tests for the cross-layer tracing/metrics subsystem."""

import json

import pytest

from repro.harness.runner import run_virtualized
from repro.remoting.codec import Command, Reply, decode_message, encode_message
from repro.telemetry import (
    LAYERS,
    MetricsRegistry,
    NOOP,
    Span,
    Tracer,
    TracerError,
    breakdown,
    load_trace,
    perfetto_trace,
    read_jsonl,
    self_times,
    spans_from_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry import tracer as tele
from repro.vclock import VirtualClock
from repro.workloads import KMeansWorkload


class TestNoopDefault:
    def test_active_defaults_to_noop(self):
        assert tele.active() is NOOP
        assert not NOOP.enabled

    def test_noop_operations_return_none(self):
        assert NOOP.start_span("x", 0.0) is None
        assert NOOP.record_span("x", 0.0, 1.0) is None
        assert NOOP.current() is None
        assert NOOP.all_spans() == []

    def test_use_restores_previous(self):
        tracer = Tracer()
        with tele.use(tracer):
            assert tele.active() is tracer
        assert tele.active() is NOOP


class TestTracer:
    def test_stack_nesting_and_inheritance(self):
        tracer = Tracer()
        outer = tracer.start_span("call", 0.0, kind="function",
                                  vm_id="vm1", api="opencl",
                                  function="call")
        inner = tracer.record_span("marshal", 0.0, 1.0)
        assert inner.parent_id == outer.span_id
        assert inner.vm_id == "vm1"
        assert inner.api == "opencl"
        assert inner.function == "call"
        tracer.end_span(outer, 2.0)
        assert [s.name for s in tracer.spans] == ["marshal", "call"]

    def test_explicit_parent_crosses_the_wire(self):
        tracer = Tracer()
        root = tracer.record_span("guest", 0.0, 1.0)
        host = tracer.record_span("dispatch", 0.5, 0.9,
                                  parent_id=root.span_id)
        assert host.parent_id == root.span_id

    def test_double_end_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("x", 0.0)
        tracer.end_span(span, 1.0)
        with pytest.raises(TracerError):
            tracer.end_span(span, 2.0)

    def test_containers_finalized_by_all_spans(self):
        tracer = Tracer()
        vm = tracer.container("vm1", now=0.0)
        api = tracer.container("vm1", "opencl", now=0.0)
        assert api.parent_id == vm.span_id
        tracer.record_span("op", 0.0, 3.0, vm_id="vm1")
        spans = tracer.all_spans()
        assert vm in spans and api in spans
        assert vm.end == 3.0

    def test_self_times_exclude_children(self):
        tracer = Tracer()
        parent = tracer.start_span("parent", 0.0, layer="server")
        tracer.record_span("child", 1.0, 3.0, layer="device")
        tracer.end_span(parent, 4.0)
        own = self_times(tracer.spans)
        assert own[parent.span_id] == pytest.approx(2.0)
        shares = breakdown(tracer.spans, lambda s: s.layer)
        assert shares["server"] == pytest.approx(2.0)
        assert shares["device"] == pytest.approx(2.0)


class TestWirePropagation:
    def test_command_trace_fields_round_trip(self):
        command = Command(seq=7, vm_id="vm1", api="a", function="f",
                          trace_id="t1", span_id=42)
        decoded = decode_message(encode_message(command))
        assert decoded.trace_id == "t1"
        assert decoded.span_id == 42

    def test_reply_span_id_round_trips(self):
        reply = Reply(seq=7, span_id=9)
        assert decode_message(encode_message(reply)).span_id == 9

    def test_untraced_wire_encoding_unchanged(self):
        """With tracing off the ids stay None and the wire dict carries
        no trace key at all — encoded byte counts (and thus per-byte
        modeled costs) are identical to an uninstrumented build."""
        command = Command(seq=7, vm_id="vm1", api="a", function="f")
        assert "tr" not in command.to_wire_dict()
        assert "tr" not in Reply(seq=7).to_wire_dict()
        decoded = decode_message(encode_message(command))
        assert decoded.trace_id is None and decoded.span_id is None


class TestEndToEndTrace:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer(metrics=MetricsRegistry())
        measurement = run_virtualized(KMeansWorkload(scale=0.1),
                                      vm_id="vm-kmeans", tracer=tracer)
        return tracer, measurement

    def test_all_layers_present(self, traced_run):
        tracer, _ = traced_run
        layers = {s.layer for s in tracer.all_spans()}
        assert set(LAYERS) <= layers
        assert len(layers & set(LAYERS)) >= 5

    def test_span_tree_reaches_device(self, traced_run):
        tracer, _ = traced_run
        spans = tracer.all_spans()
        children = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)

        def layers_under(span, acc):
            acc.add(span.layer)
            for child in children.get(span.span_id, []):
                layers_under(child, acc)
            return acc

        roots = [s for s in spans if s.kind == "function"]
        assert roots, "guest stubs must open function spans"
        kernel_roots = [r for r in roots
                        if r.name == "clEnqueueNDRangeKernel"]
        assert kernel_roots
        for root in kernel_roots:
            reached = layers_under(root, set())
            assert "device" in reached, (
                f"call {root.name} never reached the device layer"
            )
            assert {"guest", "transport", "router", "server"} <= reached

    def test_function_spans_cover_the_run(self, traced_run):
        """The guest's virtual time is fully attributed: root function
        spans are contiguous and sum to the reported runtime."""
        tracer, measurement = traced_run
        roots = [s for s in tracer.all_spans() if s.kind == "function"]
        total = sum(s.duration for s in roots)
        assert total == pytest.approx(measurement.runtime, rel=1e-9)

    def test_metrics_registry_attribution(self, traced_run):
        tracer, measurement = traced_run
        telemetry = tracer.metrics.vm("vm-kmeans")
        assert telemetry.calls == (
            measurement.calls_sync + measurement.calls_async
        )
        kernel = telemetry.functions["clEnqueueNDRangeKernel"]
        assert kernel.calls > 0
        assert kernel.async_calls + kernel.sync_calls == kernel.calls
        assert telemetry.errors == 0
        for layer in LAYERS:
            assert telemetry.layer_spans.get(layer, 0) > 0

    def test_perfetto_export_loads_and_round_trips(self, traced_run,
                                                   tmp_path):
        tracer, _ = traced_run
        spans = tracer.all_spans()
        path = write_perfetto(spans, str(tmp_path / "trace.json"))
        with open(path, "r", encoding="utf-8") as handle:
            document = json.loads(handle.read())
        categories = {e["cat"] for e in document["traceEvents"]
                      if e.get("ph") == "X"}
        assert len(categories & set(LAYERS)) >= 5
        # one pid per VM plus the host pid, one tid per layer
        pids = {e["pid"] for e in document["traceEvents"]}
        assert len(pids) == 2
        reloaded = spans_from_perfetto(document)
        assert len(reloaded) == len(spans)
        original = {s.span_id: s for s in spans}
        for span in reloaded:
            source = original[span.span_id]
            assert span.parent_id == source.parent_id
            assert span.duration == pytest.approx(source.duration,
                                                  abs=1e-9)

    def test_jsonl_export_is_lossless(self, traced_run, tmp_path):
        tracer, _ = traced_run
        spans = tracer.all_spans()
        path = write_jsonl(spans, str(tmp_path / "trace.jsonl"))
        reloaded = read_jsonl(path)
        assert len(reloaded) == len(spans)
        original = {s.span_id: s for s in spans}
        for span in reloaded:
            source = original[span.span_id]
            assert span.parent_id == source.parent_id
            assert span.start == source.start
            assert span.end == source.end
            assert span.attrs == source.attrs
        assert load_trace(path)[0].trace_id == spans[0].trace_id

    def test_absorb_router_subsumes_vm_metrics(self, traced_run):
        tracer, _ = traced_run
        registry = MetricsRegistry.from_spans(tracer.all_spans())

        class FakeRouterMetrics:
            rejected = 3
            rate_delay = 0.25
            resources = {"bus_bytes": 128.0}

        registry.absorb_router({"vm-kmeans": FakeRouterMetrics()})
        telemetry = registry.vm("vm-kmeans")
        assert telemetry.rejected == 3
        assert telemetry.rate_delay == 0.25
        assert telemetry.resources["bus_bytes"] == 128.0
        assert telemetry.calls > 0  # span-derived counters still there


class TestZeroCostWhenOff:
    def test_noop_default_is_bit_identical(self):
        """Installing and removing a tracer leaves untraced runs exactly
        as they were — the Figure 5 numbers cannot move."""
        baseline = run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-a")
        run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-b",
                        tracer=Tracer())
        again = run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-c")
        assert baseline.runtime == again.runtime
        assert baseline.accounts == again.accounts

    def test_tracing_observer_cost_is_priced_and_small(self):
        """With tracing on, the propagated (trace_id, span_id) really
        rides the wire, so the modeled cost moves — honestly, and only
        by the few extra bytes per command."""
        untraced = run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-u")
        traced = run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-t",
                                 tracer=Tracer())
        assert traced.runtime != untraced.runtime
        assert traced.runtime == pytest.approx(untraced.runtime,
                                               rel=1e-3)


class TestClockEventOptIn:
    def test_events_off_by_default(self):
        clock = VirtualClock("c")
        clock.advance(1.0, "a")
        assert clock.events == []

    def test_record_events_constructor_opt_in(self):
        clock = VirtualClock("c", record_events=True)
        clock.advance(1.0, "a")
        clock.advance(2.0, "b")
        assert clock.events == [(1.0, "a"), (3.0, "b")]
        clock.clear_events()
        assert clock.events == []

    def test_tracing_context_restores_opt_in(self):
        clock = VirtualClock("c", record_events=True)
        with clock.tracing():
            clock.advance(1.0, "a")
        clock.advance(1.0, "b")  # still recording: ctor opt-in persists
        assert clock.events == [(1.0, "a"), (2.0, "b")]


class TestTelemetryCli:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        tracer = Tracer()
        run_virtualized(KMeansWorkload(scale=0.1), vm_id="vm-cli",
                        tracer=tracer)
        path = tmp_path_factory.mktemp("traces") / "run.jsonl"
        return write_jsonl(tracer.all_spans(), str(path))

    def test_cava_trace_breakdown(self, trace_file):
        from repro.telemetry.cli import run_trace

        output = run_trace(trace_file)
        assert "clEnqueueNDRangeKernel" in output
        assert "vm-cli" in output
        for layer in LAYERS:
            assert layer in output

    def test_cava_trace_filters(self, trace_file):
        from repro.telemetry.cli import run_trace

        output = run_trace(trace_file, function="clEnqueueNDRangeKernel")
        body = [line for line in output.splitlines() if "vm-cli" in line]
        assert body
        assert all("clEnqueueNDRangeKernel" in line for line in body)

    def test_cava_top_summary(self, trace_file):
        from repro.telemetry.cli import run_top

        output = run_top(trace_file)
        assert "vm-cli" in output
        assert "top function" in output

    def test_cli_entrypoint(self, trace_file, capsys):
        from repro.codegen.cli import main

        assert main(["trace", trace_file]) == 0
        assert main(["top", trace_file]) == 0
        out = capsys.readouterr().out
        assert "vm-cli" in out

    def test_cli_rejects_malformed_trace(self, tmp_path, capsys):
        from repro.codegen.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not a span": true}\n[1,2,3\n')
        assert main(["trace", str(bad)]) == 2


class TestPerfettoFormat:
    def test_native_device_spans_land_on_host_pid(self):
        tracer = Tracer()
        tracer.record_span("device.compute", 0.0, 1.0, layer="device")
        document = perfetto_trace(tracer.all_spans())
        names = {e["args"]["name"] for e in document["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"host"}


def _span(span_id, start, end, parent_id=None, name="op",
          layer="guest", kind="op", vm_id="v1"):
    return Span(trace_id="t", span_id=span_id, parent_id=parent_id,
                name=name, layer=layer, kind=kind, vm_id=vm_id,
                start=start, end=end)


class TestSelfTimeEdgeCases:
    def test_overlapping_children_clip_to_zero(self):
        # children together cover more than the parent: self time is 0,
        # never negative
        spans = [
            _span(1, 0.0, 1.0),
            _span(2, 0.0, 0.8, parent_id=1),
            _span(3, 0.3, 1.0, parent_id=1),
        ]
        own = self_times(spans)
        assert own[1] == 0.0
        assert own[2] == pytest.approx(0.8)
        assert own[3] == pytest.approx(0.7)

    def test_orphan_parent_id_is_harmless(self):
        # a child pointing at a span that is not in the set (cross-wire
        # parent, truncated trace) keeps its full duration
        spans = [_span(1, 0.0, 0.5, parent_id=999)]
        assert self_times(spans) == {1: pytest.approx(0.5)}

    def test_unfinished_spans_excluded(self):
        spans = [
            _span(1, 0.0, 1.0),
            _span(2, 0.2, None, parent_id=1),  # still open
        ]
        own = self_times(spans)
        assert 2 not in own
        assert own[1] == pytest.approx(1.0)  # open child charges nothing

    def test_breakdown_skips_containers(self):
        spans = [
            _span(1, 0.0, 10.0, kind="vm"),
            _span(2, 0.0, 10.0, kind="api", parent_id=1),
            _span(3, 0.0, 1.0, kind="function", parent_id=2),
            _span(4, 0.25, 0.75, parent_id=3, layer="transport"),
        ]
        shares = breakdown(spans, lambda s: s.layer)
        assert shares == {
            "guest": pytest.approx(0.5),
            "transport": pytest.approx(0.5),
        }

    def test_breakdown_empty_input(self):
        assert breakdown([], lambda s: s.layer) == {}


class TestAbsorbIdempotency:
    class FakeRouterMetrics:
        def __init__(self):
            self.rejected = 3
            self.rate_delay = 0.25
            self.server_lost = 1
            self.xfer_hits = 5
            self.xfer_misses = 2
            self.xfer_bytes_elided = 1024
            self.resources = {"bus_bytes": 128.0}

    class FakeRuntime:
        api_name = "opencl"

        def __init__(self):
            self.retries = 4
            self.giveups = 1

    def test_absorb_router_twice_counts_once(self):
        registry = MetricsRegistry()
        source = {"v1": self.FakeRouterMetrics()}
        registry.absorb_router(source)
        registry.absorb_router(source)  # e.g. two admin_report() calls
        telemetry = registry.vm("v1")
        assert telemetry.rejected == 3
        assert telemetry.rate_delay == pytest.approx(0.25)
        assert telemetry.server_lost == 1
        assert telemetry.xfer_hits == 5
        assert telemetry.resources["bus_bytes"] == pytest.approx(128.0)

    def test_absorb_router_folds_only_growth(self):
        registry = MetricsRegistry()
        metrics = self.FakeRouterMetrics()
        registry.absorb_router({"v1": metrics})
        metrics.rejected += 2
        metrics.resources["bus_bytes"] += 64.0
        registry.absorb_router({"v1": metrics})
        telemetry = registry.vm("v1")
        assert telemetry.rejected == 5
        assert telemetry.resources["bus_bytes"] == pytest.approx(192.0)

    def test_absorb_runtime_twice_counts_once(self):
        registry = MetricsRegistry()
        runtime = self.FakeRuntime()
        registry.absorb_runtime("v1", runtime)
        registry.absorb_runtime("v1", runtime)
        telemetry = registry.vm("v1")
        assert telemetry.retries == 4
        assert telemetry.giveups == 1
        runtime.retries += 3
        registry.absorb_runtime("v1", runtime)
        assert telemetry.retries == 7

    def test_absorb_runtime_per_api_sources(self):
        registry = MetricsRegistry()

        class OtherRuntime(self.FakeRuntime):
            api_name = "mvnc"

        registry.absorb_runtime("v1", self.FakeRuntime())
        registry.absorb_runtime("v1", OtherRuntime())
        # distinct (vm, api) sources both count
        assert registry.vm("v1").retries == 8

    def test_absorb_slo_idempotent(self):
        from repro.telemetry.slo import (BurnRateWindow, SLOMonitor,
                                         SLOTarget)

        monitor = SLOMonitor([SLOTarget(
            name="t", objective=0.9,
            windows=(BurnRateWindow(1.0, 0.2, 3.0),))])
        for i in range(5):
            monitor.record("v1", "f", 0.0, error=True, now=i * 0.01)
        assert monitor.breached
        registry = MetricsRegistry()
        registry.absorb_slo(monitor)
        registry.absorb_slo(monitor)
        assert registry.vm("v1").slo_breaches == len(monitor.events)
