"""Tests for the dynamic-language extension: TPU silo + pyfront."""

import numpy as np
import pytest

from repro.codegen.pyfront import (
    Handle,
    InBuffer,
    NewHandle,
    OutBuffer,
    OutScalar,
    spec_from_module,
)
from repro.codegen.verify import verify_spec
from repro.remoting.buffers import OutBox
from repro.spec.errors import SpecSemanticError
from repro.spec.model import RecordKind
from repro.stack import load_spec, make_hypervisor
from repro.tpu import api
from repro.tpu.device import SimulatedTPU, TPUDeviceSpec
from repro.tpu.graphs import (
    OP_ADD,
    OP_MATMUL,
    OP_RELU,
    OP_SOFTMAX,
    OP_REDUCE_SUM,
    GraphError,
    TPUGraph,
)
from repro.workloads.tpu_mlp import TPUMLPWorkload


class TestDeviceModel:
    def test_matmul_cost_pads_to_tiles(self):
        tpu = SimulatedTPU()
        tiny = tpu.matmul_cost(1, 1, 1)
        full_tile = tpu.matmul_cost(128, 128, 128)
        assert tiny == full_tile  # padding waste

    def test_matmul_cost_scales_with_tiles(self):
        tpu = SimulatedTPU()
        assert tpu.matmul_cost(256, 128, 128) == pytest.approx(
            2 * tpu.matmul_cost(128, 128, 128)
        )

    def test_step_serialization(self):
        tpu = SimulatedTPU()
        first = tpu.execute_step(1e-3, not_before=0.0)
        second = tpu.execute_step(1e-3, not_before=0.0)
        assert second == pytest.approx(first + 1e-3 +
                                       tpu.spec.step_overhead)


class TestGraphs:
    def make_graph(self):
        return TPUGraph(device=SimulatedTPU())

    def test_matmul_shapes_checked(self):
        graph = self.make_graph()
        a = graph.placeholder(4, 8)
        b = graph.constant(np.zeros((9, 2), dtype=np.float32))
        with pytest.raises(GraphError):
            graph.binary(OP_MATMUL, a, b)

    def test_add_broadcast_row_vector(self):
        graph = self.make_graph()
        a = graph.placeholder(4, 8)
        bias = graph.constant(np.ones((1, 8), dtype=np.float32))
        node = graph.binary(OP_ADD, a, bias)
        assert graph.nodes_shape(node) == (4, 8)

    def test_run_requires_compile(self):
        graph = self.make_graph()
        a = graph.placeholder(2, 2)
        with pytest.raises(GraphError):
            graph.run({a: np.zeros((2, 2))}, a)

    def test_execution_matches_numpy(self):
        graph = self.make_graph()
        x = graph.placeholder(3, 4)
        w = graph.constant(np.arange(8, dtype=np.float32).reshape(4, 2))
        y = graph.unary(OP_SOFTMAX, graph.binary(OP_MATMUL, x, w))
        graph.compile()
        feed = np.random.default_rng(0).normal(size=(3, 4)).astype(
            np.float32)
        got = graph.run({x: feed}, y)
        logits = feed @ np.arange(8, dtype=np.float32).reshape(4, 2)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        assert np.allclose(got, exp / exp.sum(axis=1, keepdims=True),
                           atol=1e-5)

    def test_reduce_sum_shape(self):
        graph = self.make_graph()
        x = graph.placeholder(3, 4)
        node = graph.unary(OP_REDUCE_SUM, x)
        assert graph.nodes_shape(node) == (3, 1)

    def test_unfed_placeholder_rejected(self):
        graph = self.make_graph()
        x = graph.placeholder(2, 2)
        y = graph.placeholder(2, 2)
        node = graph.binary(OP_ADD, x, y)
        graph.compile()
        with pytest.raises(GraphError):
            graph.run({x: np.zeros((2, 2))}, node)


class TestPyFront:
    def test_tpu_spec_from_module(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert len(spec.functions) == 11
        assert spec.validate() == []
        assert verify_spec(spec).ok

    def test_handle_params_detected(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert spec.function("tpuCreateGraph").param(
            "device_handle").is_handle
        assert spec.function("tpuCreateGraph").param(
            "graph_handle").element_allocates

    def test_outbuffer_shrinks_to_produced(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert spec.function("tpuRun").param("out_data").shrinks_to == \
            "produced"

    def test_record_overrides_applied(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert spec.function("tpuConstant").record_kind is RecordKind.MODIFY
        assert spec.function("tpuRun").record_kind is None

    def test_deallocates_applied(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert spec.function("tpuDestroyGraph").param(
            "graph_handle").element_deallocates

    def test_module_helpers_excluded(self):
        spec = spec_from_module(api, "tpu", "tpu")
        assert "tpu_session" not in spec.functions

    def test_inbuffer_without_size_sibling_rejected(self):
        class FakeModule:
            __name__ = "fake"

            @staticmethod
            def fkDoIt(data: InBuffer) -> int:
                return 0

        with pytest.raises(SpecSemanticError, match="data_size"):
            spec_from_module(FakeModule, "fake", "fk")

    def test_unsupported_annotation_rejected(self):
        class FakeModule:
            __name__ = "fake"

            @staticmethod
            def fkDoIt(data: dict) -> int:
                return 0

        with pytest.raises(SpecSemanticError, match="unsupported"):
            spec_from_module(FakeModule, "fake", "fk")

    def test_empty_module_rejected(self):
        class FakeModule:
            __name__ = "fake"

        with pytest.raises(SpecSemanticError):
            spec_from_module(FakeModule, "fake", "fk")


class TestWorkload:
    def test_native_mlp(self):
        with api.tpu_session():
            result = TPUMLPWorkload(steps=3).run(api)
        assert result.verified, result.detail

    def test_forwarded_mlp(self):
        hv = make_hypervisor(apis=("tpu",))
        vm = hv.create_vm("vm-tpu")
        result = TPUMLPWorkload(steps=3).run(vm.library("tpu"))
        assert result.verified, result.detail

    def test_forwarding_overhead_small(self):
        from repro.vclock import VirtualClock

        workload = TPUMLPWorkload(steps=8)
        clock = VirtualClock("tpu-native")
        with api.tpu_session(clock=clock):
            assert workload.run(api).verified
        native = clock.now

        hv = make_hypervisor(apis=("tpu",))
        vm = hv.create_vm("vm-tpu-f")
        assert workload.run(vm.library("tpu")).verified
        ratio = vm.clock.now / native
        assert 1.0 <= ratio < 1.1, ratio

    def test_load_spec_integration(self):
        spec = load_spec("tpu")
        assert spec.name == "tpu"
        assert "tpuRun" in spec.functions

    def test_migration_of_tpu_graph(self):
        """Dynamic-API state also migrates by record/replay."""
        hv = make_hypervisor(apis=("tpu",))
        vm = hv.create_vm("vm-tpu-m")
        tp = vm.library("tpu")
        device = OutBox()
        assert tp.tpuOpenDevice(device) == api.TPU_OK
        graph = OutBox()
        assert tp.tpuCreateGraph(device.value, graph) == api.TPU_OK
        x = OutBox()
        assert tp.tpuPlaceholder(graph.value, 2, 2, x) == api.TPU_OK
        w = np.eye(2, dtype=np.float32) * 3
        wnode = OutBox()
        assert tp.tpuConstant(graph.value, w, w.nbytes, 2, 2,
                              wnode) == api.TPU_OK
        y = OutBox()
        assert tp.tpuBinaryOp(graph.value, OP_MATMUL, x.value, wnode.value,
                              y) == api.TPU_OK
        flops = OutBox()
        assert tp.tpuCompile(graph.value, flops) == api.TPU_OK

        report = hv.migrate_vm("vm-tpu-m", "tpu")
        assert report.replayed_calls >= 5

        feed = np.ones((2, 2), dtype=np.float32)
        out = np.zeros((2, 2), dtype=np.float32)
        produced = OutBox()
        assert tp.tpuRun(graph.value, x.value, feed, feed.nbytes, y.value,
                         out, out.nbytes, produced) == api.TPU_OK
        assert np.allclose(out, feed @ w)
