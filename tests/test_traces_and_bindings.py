"""Tests for trace extraction and the native-session binders."""

import pytest

from repro.harness.traces import extract_device_trace, trace_summary
from repro.opencl.device import SimulatedGPU
from repro.server.bindings import private_device, shared_devices
from repro.stack import make_hypervisor
from repro.workloads import GaussianWorkload, LavaMDWorkload, NWWorkload


class TestTraceExtraction:
    def test_trace_covers_device_busy_time(self):
        items = extract_device_trace(GaussianWorkload(scale=0.2))
        summary = trace_summary(items)
        assert summary["commands"] > 50
        assert summary["busy"] > 0
        assert 0 < summary["intensity"] <= 1.0

    def test_trace_durations_positive(self):
        items = extract_device_trace(NWWorkload(scale=0.1))
        assert all(item.duration > 0 for item in items)
        assert all(item.think_time >= 0 for item in items)

    def test_trace_reflects_workload_shape(self):
        chatty = trace_summary(extract_device_trace(NWWorkload(scale=0.2)))
        coarse = trace_summary(
            extract_device_trace(LavaMDWorkload(scale=0.5))
        )
        assert chatty["commands"] > 10 * coarse["commands"]
        assert coarse["mean_duration"] > chatty["mean_duration"]

    def test_tracing_device_records_tuples(self):
        gpu = SimulatedGPU(trace=True)
        gpu.execute(1e-3, 0.0, "kernel")
        gpu.execute(2e-3, 0.0, "h2d_copy")
        assert gpu.trace == [(0.0, 1e-3, "kernel"),
                             (1e-3, 3e-3, "h2d_copy")]

    def test_non_tracing_device_stores_nothing(self):
        gpu = SimulatedGPU()
        gpu.execute(1e-3, 0.0)
        assert gpu.trace is None

    def test_failed_workload_rejected(self):
        class Broken:
            name = "broken"

            def run(self, cl):
                from repro.workloads.base import WorkloadResult

                return WorkloadResult("broken", {}, False)

        with pytest.raises(ValueError, match="verification"):
            extract_device_trace(Broken())


class TestDeviceFactories:
    def test_shared_devices_returns_same_list(self):
        devices = [SimulatedGPU(), SimulatedGPU()]
        factory = shared_devices(devices)
        assert factory() == devices
        assert factory()[0] is devices[0]

    def test_private_device_fresh_each_call(self):
        factory = private_device(SimulatedGPU)
        first = factory()
        second = factory()
        assert first[0] is not second[0]

    def test_shared_gpus_hypervisor_consolidates(self):
        """With shared devices, both VMs' work lands on one timeline."""
        gpu = SimulatedGPU()
        hv = make_hypervisor(apis=("opencl",), shared_gpus=[gpu])
        vm_a = hv.create_vm("vm-a")
        vm_b = hv.create_vm("vm-b")
        assert GaussianWorkload(scale=0.1).run(
            vm_a.library("opencl")).verified
        ops_after_a = sum(gpu.op_counts.values())
        assert GaussianWorkload(scale=0.1).run(
            vm_b.library("opencl")).verified
        assert sum(gpu.op_counts.values()) > ops_after_a
        worker_a = hv.worker("vm-a", "opencl")
        worker_b = hv.worker("vm-b", "opencl")
        assert worker_a.native_session.devices[0] is \
            worker_b.native_session.devices[0]
