"""Unit tests for the pluggable transports."""

import pytest

from repro.remoting.codec import Command, Reply, decode_message, encode_message
from repro.transport.base import Transport, TransportError
from repro.transport.inproc import InProcTransport
from repro.transport.network import NetworkTransport
from repro.transport.ring import RingTransport


class EchoRouter:
    """Minimal router double: replies success at arrival time."""

    def __init__(self):
        self.delivered = []

    def deliver(self, wire, arrival, source=None):
        command = decode_message(wire)
        self.delivered.append((command, arrival))
        return encode_message(
            Reply(seq=command.seq, return_value=0, complete_time=arrival)
        )


def make_command(payload=b""):
    return Command(seq=1, vm_id="vm", api="x", function="f",
                   in_buffers={"data": payload} if payload else {})


class TestDeliveryMechanics:
    def test_round_trip_through_wire_format(self):
        router = EchoRouter()
        transport = InProcTransport(router)
        result = transport.deliver(make_command(b"abc"), guest_now=1.0)
        assert isinstance(result.reply, Reply)
        assert result.reply.return_value == 0
        command, arrival = router.delivered[0]
        assert command.function == "f"
        assert command.in_buffers["data"] == b"abc"
        assert arrival > 1.0

    def test_sent_at_includes_send_cost(self):
        router = EchoRouter()
        transport = InProcTransport(router, latency=10e-6)
        result = transport.deliver(make_command(), guest_now=0.0)
        assert result.sent_at >= 10e-6

    def test_async_uses_enqueue_cost(self):
        router = EchoRouter()
        transport = InProcTransport(router, latency=10e-6)
        sync = transport.deliver(make_command(), 0.0, asynchronous=False)
        async_ = transport.deliver(make_command(), 0.0, asynchronous=True)
        assert async_.sent_at < sync.sent_at

    def test_metrics_counted(self):
        router = EchoRouter()
        transport = InProcTransport(router)
        transport.deliver(make_command(b"x" * 100), 0.0)
        assert transport.messages == 1
        assert transport.tx_bytes > 100
        assert transport.rx_bytes > 0


class TestInProc:
    def test_cost_linear_in_bytes(self):
        transport = InProcTransport(EchoRouter())
        assert transport.send_cost(10_000) > transport.send_cost(0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            InProcTransport(EchoRouter(), latency=-1)


class TestRing:
    def test_small_message_single_doorbell(self):
        ring = RingTransport(EchoRouter(), slot_bytes=4096)
        cost_small = ring.send_cost(100)
        cost_one_slot = ring.send_cost(4000)
        assert cost_small == pytest.approx(
            cost_one_slot - 3900 * ring.copy_byte_cost
        )

    def test_large_message_extra_doorbells(self):
        ring = RingTransport(EchoRouter(), slot_bytes=4096, slots=4096)
        per_byte = ring.copy_byte_cost
        small = ring.send_cost(4096) - 4096 * per_byte
        big = ring.send_cost(4096 * 512) - 4096 * 512 * per_byte
        assert big > small

    def test_oversized_message_uses_sideband(self):
        ring = RingTransport(EchoRouter(), slot_bytes=64, slots=4)
        in_ring = ring.send_cost(64 * 4)
        sideband = ring.send_cost(64 * 5)
        # side-band pays extra doorbells and a pinning premium per byte
        assert sideband > in_ring
        per_byte_sideband = (ring.send_cost(64 * 50) - sideband) / (64 * 45)
        assert per_byte_sideband > ring.copy_byte_cost

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            RingTransport(EchoRouter(), slot_bytes=0)

    def test_capacity(self):
        ring = RingTransport(EchoRouter(), slot_bytes=64, slots=4)
        assert ring.capacity_bytes == 256


class TestNetwork:
    def test_higher_latency_than_inproc(self):
        net = NetworkTransport(EchoRouter())
        local = InProcTransport(EchoRouter())
        assert net.send_cost(0) > local.send_cost(0)

    def test_packetization(self):
        net = NetworkTransport(EchoRouter(), mtu=1000)
        one_packet = net.send_cost(900)
        many_packets = net.send_cost(9000)
        extra_packets = 9 - 1
        assert many_packets - one_packet >= \
            extra_packets * net.per_packet_cost

    def test_bandwidth_required_positive(self):
        with pytest.raises(ValueError):
            NetworkTransport(EchoRouter(), bandwidth=0)


class TestAbstractBase:
    def test_base_costs_not_implemented(self):
        transport = Transport(EchoRouter())
        with pytest.raises(NotImplementedError):
            transport.send_cost(0)
        with pytest.raises(NotImplementedError):
            transport.recv_cost(0)

    def test_non_reply_result_rejected(self):
        class BadRouter:
            def deliver(self, wire, arrival, source=None):
                return encode_message(make_command())

        transport = InProcTransport(BadRouter())
        with pytest.raises(TransportError):
            transport.deliver(make_command(), 0.0)
