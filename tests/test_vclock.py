"""Unit tests for the virtual clock and cost model."""

import pytest

from repro.vclock import ClockError, CostModel, Stopwatch, VirtualClock, merge_max


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now == 0.0

    def test_custom_start(self):
        clock = VirtualClock(start=5.0)
        assert clock.now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(start=-1.0)

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now == 1.5
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        assert clock.advance(0.0) == 0.0

    def test_accounting_by_category(self):
        clock = VirtualClock()
        clock.advance(1.0, "transport")
        clock.advance(2.0, "device")
        clock.advance(0.5, "transport")
        assert clock.account("transport") == pytest.approx(1.5)
        assert clock.account("device") == pytest.approx(2.0)
        assert clock.account("missing") == 0.0

    def test_accounts_returns_copy(self):
        clock = VirtualClock()
        clock.advance(1.0, "x")
        snapshot = clock.accounts()
        snapshot["x"] = 99.0
        assert clock.account("x") == 1.0

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0
        assert clock.account("wait") == 3.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0

    def test_fork_inherits_time(self):
        clock = VirtualClock()
        clock.advance(2.0)
        child = clock.fork("child")
        assert child.now == 2.0
        child.advance(1.0)
        assert clock.now == 2.0  # independent afterwards

    def test_tracing_records_events(self):
        clock = VirtualClock()
        with clock.tracing() as events:
            clock.advance(1.0, "a")
            clock.advance(2.0, "b")
        assert events == [(1.0, "a"), (3.0, "b")]
        clock.advance(1.0, "c")
        assert len(events) == 2  # tracing stopped


class TestCostModel:
    def test_forward_cost_monotone_in_bytes(self):
        model = CostModel()
        assert model.forward_cost(1000) > model.forward_cost(0)

    def test_forward_includes_router(self):
        model = CostModel()
        assert model.forward_cost(0) - model.return_cost(0) == pytest.approx(
            model.router_cost
        )

    def test_negative_bytes_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.forward_cost(-1)
        with pytest.raises(ValueError):
            model.return_cost(-1)

    def test_scaled_multiplies_remoting_costs(self):
        model = CostModel()
        doubled = model.scaled(2.0)
        assert doubled.transport_latency == pytest.approx(
            2 * model.transport_latency
        )
        assert doubled.native_call_overhead == model.native_call_overhead

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().scaled(-1.0)


class TestStopwatchAndMerge:
    def test_stopwatch_measures_interval(self):
        clock = VirtualClock()
        watch = Stopwatch(clock).start()
        clock.advance(2.5)
        assert watch.elapsed() == pytest.approx(2.5)

    def test_stopwatch_requires_start(self):
        with pytest.raises(ClockError):
            Stopwatch(VirtualClock()).elapsed()

    def test_merge_max(self):
        a = VirtualClock()
        b = VirtualClock()
        a.advance(1.0)
        b.advance(4.0)
        assert merge_max(a, b) == 4.0

    def test_merge_max_empty_rejected(self):
        with pytest.raises(ClockError):
            merge_max()
