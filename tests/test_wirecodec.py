"""The WireCodec boundary: frames, buffer donation, codec selection.

Three layers of the zero-copy data path:

* :class:`WireFrame` — vectored frames whose payload segments alias
  caller memory, priced by :func:`len` without materialization;
* :class:`WireBuffer` — the buffer-donation contract (who may touch
  the memory, and the loud :class:`BufferContractError` when a caller
  hands over memory the encoder cannot splice);
* codec selection — ``VirtualStack.build(codec=...)`` threading one
  :class:`WireCodec` through hypervisor, router, and transports, with
  the specialized fast path producing the *same virtual-time results*
  as the interpreted baseline (the figure-5 bit-identity property).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.remoting.buffers import (
    BufferContractError,
    WireBuffer,
    as_byte_view,
    read_bytes,
)
from repro.remoting.codec import Command
from repro.remoting.speccodec import SpecializedCodec
from repro.remoting.wire import (
    InterpretedCodec,
    WireCodec,
    WireFrame,
    frame_bytes,
)
from repro.stack import VirtualStack, build_stack, resolve_codec
from repro.transport.base import Transport


# ---------------------------------------------------------------------------
# WireFrame
# ---------------------------------------------------------------------------

class TestWireFrame:

    def test_len_sums_segments_without_joining(self):
        payload = memoryview(b"\x01" * 300)
        frame = WireFrame([b"head", payload, bytearray(b"tail")])
        assert len(frame) == 4 + 300 + 4
        assert frame._joined is None  # pricing did not materialize

    def test_join_concatenates_once_and_caches(self):
        frame = WireFrame([b"ab", memoryview(b"cd"), bytearray(b"ef")])
        joined = frame.join()
        assert joined == b"abcdef"
        assert frame.join() is joined
        assert bytes(frame) == b"abcdef"

    def test_single_segment_fast_path(self):
        frame = WireFrame([b"solo"])
        assert frame.join() == b"solo"
        assert len(frame) == 4

    def test_frame_bytes_normalizes_every_frame_shape(self):
        for shape in (b"xyz", bytearray(b"xyz"), memoryview(b"xyz"),
                      WireFrame([b"x", b"yz"])):
            assert frame_bytes(shape) == b"xyz"


# ---------------------------------------------------------------------------
# WireBuffer — the donation contract
# ---------------------------------------------------------------------------

class TestWireBuffer:

    def test_bytes_donation_is_read_only_view(self):
        source = b"\x07" * 64
        buf = WireBuffer(source)
        view = buf.view()
        assert view.readonly
        assert view.obj is source
        assert bytes(buf) == source
        assert len(buf) == buf.nbytes == 64

    def test_contiguous_ndarray_donates_zero_copy(self):
        array = np.arange(16, dtype=np.float32)
        buf = WireBuffer(array)
        assert buf.nbytes == array.nbytes
        assert bytes(buf) == array.tobytes()

    def test_non_contiguous_ndarray_is_a_contract_error(self):
        strided = np.arange(16, dtype=np.float32)[::2]
        with pytest.raises(BufferContractError):
            WireBuffer(strided)
        # the contract error is still a ValueError for old handlers
        with pytest.raises(ValueError):
            WireBuffer(strided)

    def test_non_buffer_is_a_contract_error(self):
        with pytest.raises(BufferContractError):
            WireBuffer(["not", "bytes"])

    def test_release_makes_lingering_use_fail_loudly(self):
        buf = WireBuffer(bytearray(b"live"))
        buf.release()
        with pytest.raises(BufferContractError):
            buf.view()
        with pytest.raises(BufferContractError):
            buf.nbytes
        assert repr(buf) == "WireBuffer(<released>)"

    def test_rewrapping_aliases_the_same_memory(self):
        inner = WireBuffer(b"shared")
        outer = WireBuffer(inner)
        assert outer.view().obj is inner.view().obj

    def test_read_bytes_accepts_wire_buffers(self):
        assert read_bytes(WireBuffer(b"payload")) == b"payload"
        assert read_bytes(WireBuffer(b"payload"), limit=3) == b"pay"

    def test_as_byte_view_rejects_read_only_targets(self):
        with pytest.raises(BufferContractError):
            as_byte_view(memoryview(b"frozen"))
        locked = np.arange(4, dtype=np.float32)
        locked.flags.writeable = False
        with pytest.raises(BufferContractError):
            as_byte_view(locked)

    def test_as_byte_view_rejects_strided_arrays(self):
        # reshape(-1) on a strided array copies: the write-back would
        # land in a temporary and vanish
        with pytest.raises(BufferContractError):
            as_byte_view(np.arange(16, dtype=np.float32)[::2])


# ---------------------------------------------------------------------------
# codec selection
# ---------------------------------------------------------------------------

class TestResolveCodec:

    def test_instance_passes_through(self):
        codec = InterpretedCodec()
        assert resolve_codec(codec, []) is codec

    def test_interpreted_by_name(self):
        assert isinstance(resolve_codec("interpreted", []),
                          InterpretedCodec)

    def test_specialized_default_loads_generated_tables(self):
        stack = build_stack("opencl")
        for selector in (None, "specialized"):
            codec = resolve_codec(selector, [stack])
            assert isinstance(codec, SpecializedCodec)
            assert codec.snapshot()["functions"] > 0

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError):
            resolve_codec("turbo", [])

    def test_transport_defaults_to_router_codec(self):
        stack = VirtualStack.build("opencl")
        session = stack.add_vm("vm-codec")
        router = stack.hypervisor.router
        assert isinstance(router.codec, SpecializedCodec)
        transport = session.vm.driver.transport
        assert isinstance(transport, Transport)
        assert transport.codec is router.codec

    def test_transport_codec_override(self):
        stack = VirtualStack.build("opencl", codec="interpreted")
        assert isinstance(stack.hypervisor.router.codec, InterpretedCodec)


# ---------------------------------------------------------------------------
# stack equivalence: fast path vs interpreted baseline
# ---------------------------------------------------------------------------

def _vector_add(codec):
    from tests.test_end_to_end import full_vector_add

    stack = VirtualStack.build("opencl", codec=codec)
    session = stack.add_vm("vm-eq")
    cl = session.vm.library("opencl")
    a, b, c = full_vector_add(cl)
    return stack, session, (a + b, c)


class TestStackEquivalence:

    def test_specialized_matches_interpreted_end_to_end(self):
        fast_stack, fast_session, (expect_f, got_f) = \
            _vector_add("specialized")
        slow_stack, slow_session, (expect_s, got_s) = \
            _vector_add("interpreted")
        np.testing.assert_allclose(got_f, expect_f)
        np.testing.assert_allclose(got_s, expect_s)
        # virtual time is bit-identical: the codec changes how frames
        # are assembled, never what they cost or what they say
        assert fast_session.vm.time == slow_session.vm.time

    def test_workload_rides_the_fast_path(self):
        stack, session, _ = _vector_add("specialized")
        snap = stack.hypervisor.router.codec.snapshot()
        assert snap["fast_encodes"] > 0
        assert snap["fast_decodes"] > 0
        assert snap["fallback_encodes"] == 0
        assert snap["fallback_decodes"] == 0

    def test_figure5_sample_bit_identical(self):
        """The figure-5 measurement is invariant under codec choice."""
        from repro.harness import run_virtualized
        from repro.stack import make_hypervisor
        from repro.workloads import GaussianWorkload

        fast = run_virtualized(
            GaussianWorkload(scale=0.25), vm_id="vm-f",
            hypervisor=make_hypervisor(apis=("opencl",),
                                       codec="specialized"))
        slow = run_virtualized(
            GaussianWorkload(scale=0.25), vm_id="vm-s",
            hypervisor=make_hypervisor(apis=("opencl",),
                                       codec="interpreted"))
        assert fast.runtime == slow.runtime
        assert fast.calls_sync == slow.calls_sync
        assert fast.calls_async == slow.calls_async


# ---------------------------------------------------------------------------
# hint-less decoding (callers without a reply_to stay correct)
# ---------------------------------------------------------------------------

class TestHintlessDecode:

    def test_specialized_reply_decode_without_hint(self):
        codec = SpecializedCodec()
        codec.register_module(build_stack("opencl").codec_module)
        command = Command(seq=5, vm_id="vm-0", api="opencl",
                          function="clFinish",
                          handles={"queue": 7})
        from repro.remoting.codec import Reply

        reply = Reply(seq=5, return_value=0, complete_time=1.0)
        wire = codec.encode_reply(reply, reply_to=command)
        assert codec.decode_reply(wire) == reply
        assert codec.decode_reply(wire, reply_to=command) == reply

    def test_abstract_base_refuses(self):
        codec = WireCodec()
        with pytest.raises(NotImplementedError):
            codec.encode_command(None)
