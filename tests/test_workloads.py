"""Workload correctness: native, forwarded, and cross-mode equivalence.

Workloads run at reduced scale here — the benchmarks run them at full
scale.  Every workload must verify against its pure-numpy reference in
both modes, and produce *identical* outputs in both (the bug-for-bug
compatibility the guest library must preserve).
"""

import numpy as np
import pytest

from repro.opencl import api as cl_api
from repro.opencl import session
from repro.stack import VirtualStack
from repro.workloads import (
    OPENCL_WORKLOADS,
    BFSWorkload,
    GaussianWorkload,
    InceptionWorkload,
    KMeansWorkload,
    NWWorkload,
)

SMALL = 0.06  # scale factor keeping per-test wall time low


@pytest.fixture(scope="module")
def forwarded_cl():
    return VirtualStack.build("opencl").add_vm("vm-workloads").lib


@pytest.mark.parametrize("workload_cls", OPENCL_WORKLOADS,
                         ids=lambda c: c.name)
class TestAllWorkloads:
    def test_native_verifies(self, workload_cls):
        workload = workload_cls(scale=SMALL)
        with session():
            result = workload.run(cl_api)
        assert result.verified, result.detail

    def test_forwarded_verifies(self, workload_cls, forwarded_cl):
        workload = workload_cls(scale=SMALL)
        result = workload.run(forwarded_cl)
        assert result.verified, result.detail


class TestCrossModeEquivalence:
    @pytest.mark.parametrize("workload_cls",
                             [BFSWorkload, GaussianWorkload, NWWorkload],
                             ids=lambda c: c.name)
    def test_identical_outputs(self, workload_cls, forwarded_cl):
        workload = workload_cls(scale=SMALL)
        with session():
            native = workload.run(cl_api)
        forwarded = workload.run(forwarded_cl)
        for key, value in native.outputs.items():
            assert np.array_equal(value, forwarded.outputs[key]), key


class TestDeterminism:
    def test_same_seed_same_result(self, forwarded_cl):
        first = KMeansWorkload(scale=SMALL, seed=7).run(forwarded_cl)
        second = KMeansWorkload(scale=SMALL, seed=7).run(forwarded_cl)
        assert np.array_equal(first.outputs["membership"],
                              second.outputs["membership"])

    def test_different_seed_different_graph(self):
        a = BFSWorkload(scale=SMALL, seed=1)
        b = BFSWorkload(scale=SMALL, seed=2)
        assert not np.array_equal(a.reference()["cost"],
                                  b.reference()["cost"])

    def test_reference_is_cached(self):
        workload = GaussianWorkload(scale=SMALL)
        assert workload.reference() is workload.reference()


class TestInception:
    def test_native_inception(self):
        from repro.mvnc import api as mvnc_api
        from repro.mvnc.api import ncs_session

        workload = InceptionWorkload(batch=2)
        with ncs_session():
            result = workload.run(mvnc_api)
        assert result.verified, result.detail

    def test_graph_is_deep(self):
        workload = InceptionWorkload()
        kinds = [layer.kind for layer in workload.graph_def.layers]
        assert kinds.count("inception_block") >= 3
        assert "softmax" in kinds

    def test_scale_parameter_respected(self):
        small = BFSWorkload(scale=0.01)
        large = BFSWorkload(scale=1.0)
        assert small.n < large.n


class TestSobelImagePath:
    """clCreateImage exercised natively and through the stack."""

    def test_native_sobel(self):
        from repro.workloads.sobel import SobelWorkload

        with session():
            result = SobelWorkload(scale=0.25).run(cl_api)
        assert result.verified, result.detail

    def test_forwarded_sobel(self, forwarded_cl):
        from repro.workloads.sobel import SobelWorkload

        result = SobelWorkload(scale=0.25).run(forwarded_cl)
        assert result.verified, result.detail

    def test_image_host_ptr_opaque_over_stack(self, forwarded_cl):
        """The spec marks image host_ptr unsupported: non-None must fail
        loudly at the guest boundary, not silently truncate."""
        import numpy as np
        from repro.guest.library import RemotingError
        from repro.opencl import types as t
        from repro.remoting.buffers import OutBox
        from repro.workloads.base import open_env, close_env

        env = open_env(forwarded_cl)
        try:
            err = OutBox()
            with pytest.raises(RemotingError):
                forwarded_cl.clCreateImage(
                    env.context, t.CL_MEM_COPY_HOST_PTR, t.CL_R, t.CL_FLOAT,
                    8, 8, np.zeros(64, dtype=np.float32), err,
                )
        finally:
            close_env(env)
