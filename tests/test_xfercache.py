"""Transfer cache: codec forms, store semantics, router resolution.

The contract under test (``repro.remoting.xfercache`` +
``repro.server.xferstore`` + the router's resolution pre-pass): a
cached ref only ever resolves to exactly the bytes the guest would have
sent — a miss yields ``NeedBytes`` and a retransmission, never stale
data — and with the policy disarmed the wire and every virtual-time
result are bit-identical to the uncached stack.
"""

import json
import os

import numpy as np
import pytest

from repro.guest.library import RemotingError
from repro.remoting.codec import (
    CodecError,
    Command,
    NeedBytes,
    Reply,
    decode_message,
    encode_message,
)
from repro.remoting.xfercache import (
    CachePolicy,
    CachedRef,
    TransferCache,
    digest_payload,
)
from repro.server.xferstore import TransferStore
from repro.stack import make_hypervisor
from repro.workloads import BFSWorkload
from repro.workloads.base import open_env


def fresh_stack(vm_id="v1", cache_policy=None, transport="inproc"):
    hypervisor = make_hypervisor(apis=("opencl",))
    vm = hypervisor.create_vm(vm_id, transport=transport,
                              cache_policy=cache_policy)
    return hypervisor, vm


PAYLOAD = bytes(range(256)) * 16  # 4 KiB, above the default min_bytes


class TestCodec:
    def test_cached_ref_roundtrip(self):
        digest = digest_payload(PAYLOAD)
        command = Command(
            seq=7, vm_id="v", api="opencl", function="clEnqueueWriteBuffer",
            cached_refs={"ptr": [digest, len(PAYLOAD), "buf"]},
        )
        decoded = decode_message(encode_message(command))
        assert decoded.cached_refs == {"ptr": [digest, len(PAYLOAD), "buf"]}

    def test_no_refs_means_no_wire_key(self):
        """An empty refs dict adds zero bytes — cache-off bit identity."""
        with_field = Command(seq=1, vm_id="v", api="a", function="f",
                             cached_refs={})
        without = Command(seq=1, vm_id="v", api="a", function="f")
        assert encode_message(with_field) == encode_message(without)

    @pytest.mark.parametrize("ref", [
        "not-a-list",
        [b"x" * 16],                       # missing size and kind
        [b"", 10, "buf"],                  # empty digest
        [b"x" * 65, 10, "buf"],            # digest too long
        ["nope", 10, "buf"],               # digest not bytes
        [b"x" * 16, -1, "buf"],            # negative size
        [b"x" * 16, True, "buf"],          # bool masquerading as int
        [b"x" * 16, 10, "blob"],           # unknown kind
    ])
    def test_malformed_refs_rejected(self, ref):
        command = Command(seq=1, vm_id="v", api="a", function="f",
                          cached_refs={"p": ref})
        wire = encode_message(command)
        with pytest.raises(CodecError):
            decode_message(wire)

    def test_ref_and_literal_for_same_param_rejected(self):
        command = Command(
            seq=1, vm_id="v", api="a", function="f",
            in_buffers={"p": b"literal"},
            cached_refs={"p": [b"x" * 16, 7, "buf"]},
        )
        with pytest.raises(CodecError):
            decode_message(encode_message(command))

    def test_need_bytes_roundtrip(self):
        digest = digest_payload(PAYLOAD)
        message = NeedBytes(seq=3, missing=[[3, "ptr", digest]],
                            complete_time=1.5e-6)
        decoded = decode_message(encode_message(message))
        assert isinstance(decoded, NeedBytes)
        assert decoded.seq == 3
        assert decoded.missing == [[3, "ptr", digest]]
        assert decoded.complete_time == 1.5e-6

    @pytest.mark.parametrize("missing", [
        [],                                 # a NeedBytes must name misses
        ["oops"],
        [[1, "p"]],                         # truncated entry
        [["one", "p", b"x" * 16]],          # seq not an int
        [[1, 2, b"x" * 16]],                # param not a str
        [[1, "p", "digest"]],               # digest not bytes
    ])
    def test_malformed_need_bytes_rejected(self, missing):
        message = NeedBytes(seq=1, missing=[[1, "p", b"x" * 16]],
                            complete_time=0.0)
        wire = encode_message(message)
        good = NeedBytes(seq=1, missing=missing, complete_time=0.0)
        with pytest.raises(CodecError):
            decode_message(encode_message(good))
        assert decode_message(wire)  # the well-formed one still decodes


class TestCachePolicy:
    def test_defaults_are_armed_and_shared(self):
        policy = CachePolicy()
        assert policy.enabled and policy.shared_index
        assert policy.min_bytes <= policy.max_entry_bytes

    @pytest.mark.parametrize("kwargs", [
        {"min_bytes": 0},
        {"max_entry_bytes": 0},
        {"capacity_bytes": 0},
        {"capacity_entries": 0},
        {"min_bytes": 2048, "max_entry_bytes": 1024},
        {"digest_byte_cost": -1.0},
        {"probe_cost": -1.0},
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CachePolicy(**kwargs)


class TestTransferStore:
    def make(self, **kwargs):
        defaults = dict(capacity_bytes=1 << 16, capacity_entries=8,
                        min_bytes=16)
        defaults.update(kwargs)
        return TransferStore("vm-t", **defaults)

    def test_insert_computes_digest_itself(self):
        store = self.make()
        digest = store.insert(PAYLOAD)
        assert digest == digest_payload(PAYLOAD)
        assert store.get(digest) == PAYLOAD

    def test_oversize_payload_refused_not_churned(self):
        store = self.make(capacity_bytes=1024)
        store.insert(b"a" * 512)
        assert store.insert(b"b" * 2048) is None
        assert len(store) == 1  # the resident entry survived

    def test_lru_eviction_by_bytes(self):
        store = self.make(capacity_bytes=1024)
        first = store.insert(b"a" * 512)
        second = store.insert(b"b" * 512)
        store.get(first)  # refresh: second is now least-recent
        store.insert(b"c" * 512)
        assert store.has(first)
        assert not store.has(second)
        assert store.stats.evictions == 1

    def test_lru_eviction_by_entries(self):
        store = self.make(capacity_entries=2)
        digests = [store.insert(bytes([i]) * 32) for i in range(3)]
        assert not store.has(digests[0])
        assert store.has(digests[1]) and store.has(digests[2])

    def test_has_does_not_touch_lru_or_counters(self):
        store = self.make(capacity_bytes=1024)
        first = store.insert(b"a" * 512)
        store.insert(b"b" * 512)
        store.has(first)  # a probe is not a use
        store.insert(b"c" * 512)
        assert not store.has(first)
        assert store.stats.hits == 0 and store.stats.misses == 0

    def test_shed_frees_at_least_requested(self):
        store = self.make()
        for i in range(4):
            store.insert(bytes([i]) * 100)
        freed = store.shed(150)
        assert freed >= 150
        assert store.stats.shed_bytes == freed
        assert len(store) == 2

    def test_clear_bumps_generation(self):
        store = self.make()
        store.insert(PAYLOAD)
        store.clear("worker lost: test")
        assert len(store) == 0
        assert store.bytes_used == 0
        assert store.generation == 1
        assert store.stats.clears == ["worker lost: test"]

    def test_swap_pressure_sheds_the_store(self):
        from repro.opencl.device import SimulatedGPU
        from repro.server.swap import ObjectSwapManager

        store = self.make()
        for i in range(4):
            store.insert(bytes([i]) * 1000)
        manager = ObjectSwapManager(capacity_bytes=4096)
        store.attach_to_swap(manager)
        gpu = SimulatedGPU()

        class Mem:
            def __init__(self, size):
                self.size = size
                self.last_access = 0.0
                self.resident = False
                self.device = gpu

        manager.on_alloc(Mem(3000))
        manager.on_alloc(Mem(3000))  # shortfall: listeners notified
        assert store.stats.shed_bytes >= 2000
        assert len(store) < 4


class TestTransferCache:
    def test_shared_index_requires_store(self):
        with pytest.raises(ValueError):
            TransferCache(CachePolicy(shared_index=True))

    def test_eligibility_window(self):
        policy = CachePolicy(min_bytes=1024, max_entry_bytes=4096,
                             shared_index=False)
        cache = TransferCache(policy)
        assert not cache.eligible(1023)
        assert cache.eligible(1024)
        assert cache.eligible(4096)
        assert not cache.eligible(4097)

    def test_local_index_learns_and_forgets(self):
        cache = TransferCache(CachePolicy(shared_index=False, min_bytes=16))
        ref, _, digest = cache.consider("p", PAYLOAD, "buf")
        assert ref is None and digest == digest_payload(PAYLOAD)
        cache.note_delivered(digest, len(PAYLOAD))
        ref, _, _ = cache.consider("p", PAYLOAD, "buf")
        assert isinstance(ref, CachedRef)
        assert ref.digest == digest and ref.kind == "buf"
        cache.forget([digest])
        ref, _, _ = cache.consider("p", PAYLOAD, "buf")
        assert ref is None

    def test_shared_index_probes_the_store(self):
        store = TransferStore("vm-s", capacity_bytes=1 << 16,
                              capacity_entries=8, min_bytes=16)
        cache = TransferCache(CachePolicy(min_bytes=16), store=store)
        ref, _, _ = cache.consider("p", PAYLOAD, "buf")
        assert ref is None  # the store has never seen it
        store.insert(PAYLOAD)
        ref, _, _ = cache.consider("p", PAYLOAD, "buf")
        assert ref is not None and ref.size == len(PAYLOAD)


class TestRouterResolution:
    """Drive the router's resolution pre-pass with hand-built frames."""

    def stack(self):
        return fresh_stack(cache_policy=CachePolicy(min_bytes=64))

    def command(self, vm, digest, size, seq=900, kind="buf"):
        return Command(
            seq=seq, vm_id=vm.vm_id, api="opencl",
            function="clEnqueueWriteBuffer",
            cached_refs={"ptr": [digest, size, kind]},
        )

    def test_miss_answers_need_bytes_and_executes_nothing(self):
        hypervisor, vm = self.stack()
        digest = digest_payload(PAYLOAD)
        command = self.command(vm, digest, len(PAYLOAD))
        answer = decode_message(hypervisor.router.deliver(
            encode_message(command), arrival=0.0, source=vm.vm_id))
        assert isinstance(answer, NeedBytes)
        assert answer.missing == [[command.seq, "ptr", digest]]
        metrics = hypervisor.router.metrics_for(vm.vm_id)
        assert metrics.xfer_misses == 1
        assert metrics.commands == 0  # nothing was routed

    def test_size_mismatch_is_a_miss_not_stale_bytes(self):
        hypervisor, vm = self.stack()
        store = hypervisor.xfer_stores[vm.vm_id]
        digest = store.insert(PAYLOAD)
        command = self.command(vm, digest, len(PAYLOAD) + 1)
        answer = decode_message(hypervisor.router.deliver(
            encode_message(command), arrival=0.0, source=vm.vm_id))
        assert isinstance(answer, NeedBytes)

    def test_refs_without_armed_store_rejected(self):
        hypervisor, vm = fresh_stack()  # no cache policy, no store
        command = self.command(vm, digest_payload(PAYLOAD), len(PAYLOAD))
        answer = decode_message(hypervisor.router.deliver(
            encode_message(command), arrival=0.0, source=vm.vm_id))
        assert isinstance(answer, Reply)
        assert answer.error and "transfer store" in answer.error

    def test_claimed_size_over_payload_cap_rejected(self):
        hypervisor, vm = self.stack()
        too_big = hypervisor.router.max_payload_bytes + 1
        command = self.command(vm, digest_payload(PAYLOAD), too_big)
        answer = decode_message(hypervisor.router.deliver(
            encode_message(command), arrival=0.0, source=vm.vm_id))
        assert isinstance(answer, Reply)
        assert answer.error

    def test_str_ref_resolves_to_scalar(self):
        hypervisor, vm = self.stack()
        store = hypervisor.xfer_stores[vm.vm_id]
        source = "__kernel void k() {}" * 16
        digest = store.insert(source.encode("utf-8"))
        raw = source.encode("utf-8")
        command = self.command(vm, digest, len(raw), kind="str")
        # resolution happens before routing; the routed function will
        # fail (no such handle args) but the scalar must be restored
        hypervisor.router.deliver(encode_message(command), arrival=0.0,
                                  source=vm.vm_id)
        metrics = hypervisor.router.metrics_for(vm.vm_id)
        assert metrics.xfer_hits == 1

    def test_non_utf8_str_ref_rejected(self):
        hypervisor, vm = self.stack()
        store = hypervisor.xfer_stores[vm.vm_id]
        raw = b"\xff\xfe" * 64
        digest = store.insert(raw)
        command = self.command(vm, digest, len(raw), kind="str")
        answer = decode_message(hypervisor.router.deliver(
            encode_message(command), arrival=0.0, source=vm.vm_id))
        assert isinstance(answer, Reply)
        assert answer.error

    def test_router_seeds_store_from_full_payloads(self):
        hypervisor, vm = self.stack()
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        env.write(buffer, data)
        store = hypervisor.xfer_stores[vm.vm_id]
        assert store.has(digest_payload(data.tobytes()))


class TestEndToEnd:
    def test_shared_index_workload_elides_and_verifies(self):
        hypervisor, vm = fresh_stack(cache_policy=CachePolicy(min_bytes=64))
        env = open_env(vm.library("opencl"))
        data = np.arange(8192, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        for _ in range(4):
            env.write(buffer, data)
        got = env.read(buffer, data.nbytes, dtype=np.uint8)
        assert bytes(got) == data.tobytes()
        metrics = hypervisor.router.metrics_for(vm.vm_id)
        assert metrics.xfer_hits == 3  # first send seeds, rest hit
        assert metrics.xfer_misses == 0
        assert metrics.xfer_bytes_elided == 3 * data.nbytes

    def test_local_index_heals_across_worker_restart(self):
        policy = CachePolicy(shared_index=False, min_bytes=64)
        hypervisor, vm = fresh_stack(cache_policy=policy)
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        env.write(buffer, data)
        env.write(buffer, data)
        cache = vm.xfer_cache
        assert cache.elided_payloads == 1 and cache.retransmits == 0

        hypervisor._on_worker_lost(vm.vm_id, "opencl", "test kill")
        hypervisor.restart_worker(vm.vm_id, "opencl")
        env = open_env(vm.library("opencl"))
        buffer = env.buffer(data.nbytes)
        # the guest still believes the digest is known: the ref misses
        # (the fresh store is empty) and heals via one retransmission
        env.write(buffer, data)
        assert cache.retransmits == 1
        got = env.read(buffer, data.nbytes, dtype=np.uint8)
        assert bytes(got) == data.tobytes()
        # the heal re-learned the digest: the next send hits again
        env.write(buffer, data)
        assert hypervisor.router.metrics_for(vm.vm_id).xfer_hits >= 2

    def test_second_need_bytes_surfaces_typed_error(self):
        from repro.remoting.codec import NeedBytes as NB
        from repro.transport.base import DeliveryResult

        policy = CachePolicy(shared_index=False, min_bytes=64)
        hypervisor, vm = fresh_stack(cache_policy=policy)
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        env.write(buffer, data)
        env.write(buffer, data)  # digest learned, next send elides

        inner = vm.driver.transport

        class AlwaysNeedBytes:
            def __getattr__(self, name):
                return getattr(inner, name)

            def deliver(self, command, guest_now, asynchronous=False):
                needed = NB(seq=command.seq,
                            missing=[[command.seq, "ptr", b"x" * 16]],
                            complete_time=guest_now + 1e-6)
                return DeliveryResult(
                    reply=Reply(seq=command.seq,
                                complete_time=needed.complete_time),
                    sent_at=guest_now, completed_at=needed.complete_time,
                    reply_cost=0.0, need_bytes=needed,
                )

        vm.driver.transport = AlwaysNeedBytes()
        try:
            with pytest.raises(RemotingError,
                               match="NeedBytes again"):
                env.write(buffer, data)
        finally:
            vm.driver.transport = inner

    def test_admin_report_exposes_store_only_when_armed(self):
        hypervisor, vm = fresh_stack(cache_policy=CachePolicy(min_bytes=64))
        plain = hypervisor.create_vm("v-plain")
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        env.write(buffer, data)
        env.write(buffer, data)
        report = hypervisor.admin_report()
        assert report[vm.vm_id]["xfer"]["hits"] == 1
        assert report[vm.vm_id]["xfer"]["store"]["entries"] >= 1
        assert "xfer" not in report[plain.vm_id]

    def test_registry_absorbs_xfer_counters(self):
        from repro.telemetry.metrics import MetricsRegistry

        hypervisor, vm = fresh_stack(cache_policy=CachePolicy(min_bytes=64))
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        env.write(buffer, data)
        env.write(buffer, data)
        registry = MetricsRegistry()
        registry.absorb_router(hypervisor.router.metrics)
        telemetry = registry.vm(vm.vm_id)
        assert telemetry.xfer_hits == 1
        assert telemetry.xfer_bytes_elided == data.nbytes

    def test_hit_and_miss_spans_recorded(self):
        from repro.telemetry import Tracer
        from repro.telemetry import tracer as tele

        policy = CachePolicy(shared_index=False, min_bytes=64)
        hypervisor, vm = fresh_stack(cache_policy=policy)
        env = open_env(vm.library("opencl"))
        data = np.arange(4096, dtype=np.uint8)
        buffer = env.buffer(data.nbytes)
        tracer = Tracer()
        with tele.use(tracer):
            env.write(buffer, data)
            env.write(buffer, data)       # hit
            hypervisor.xfer_stores[vm.vm_id].clear("test")
            env.write(buffer, data)       # miss + retransmit
        names = {span.name for span in tracer.spans}
        assert "xfer.hit" in names
        assert "xfer.miss" in names
        assert "xfer.retransmit" in names


class TestBitIdentity:
    """With the cache disarmed, nothing anywhere may move."""

    def run_one(self, cache_policy):
        hypervisor, vm = fresh_stack(cache_policy=cache_policy,
                                     transport="ring")
        result = BFSWorkload(scale=0.06).run(vm.library("opencl"))
        vm.flush()
        assert result.verified
        return (vm.clock.now, vm.driver.transport.tx_bytes,
                vm.driver.transport.rx_bytes, vm.clock.accounts())

    def test_disabled_policy_bit_identical_to_no_policy(self):
        baseline = self.run_one(None)
        disabled = self.run_one(CachePolicy(enabled=False))
        assert disabled == baseline

    def test_figure5_reproduces_stored_json_exactly(self):
        """The default-config stack reproduces BENCH_figure5.json bit
        for bit — the cache code's existence costs nothing."""
        from repro.harness import run_figure5

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_figure5.json")
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        rows = run_figure5()
        got = {
            row.name: (row.native.runtime, row.virtualized.runtime)
            for row in rows
        }
        want = {
            row["name"]: (row["native_runtime"], row["virtualized_runtime"])
            for row in stored["rows"]
        }
        assert got == want
