"""Property suite: the transfer cache can never serve stale bytes.

Hypothesis drives arbitrary interleavings of guest buffer writes,
guest-side data mutations, store evictions (capacity and swap-pressure
sheds), and worker restarts, and asserts the two load-bearing
invariants on every generated schedule:

* **Never stale** — after any schedule, reading a device buffer back
  returns exactly the bytes the guest held *at the moment of the last
  write*, mutations, evictions and crashes notwithstanding.  The cache
  may only ever change how bytes travel, not which bytes arrive.
* **Never slower** — with the default (shared-index, free-digest)
  policy, end-to-end virtual time with the cache armed is less than or
  equal to the uncached run of the identical schedule.

The example count scales with ``CAVA_XFER_EXAMPLES`` (default 25; the
CI xfercache job runs 1000) so the same file serves as both a quick
tier-1 check and the deep soak.
"""

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.remoting.xfercache import CachePolicy
from repro.stack import make_hypervisor
from repro.workloads.base import open_env

EXAMPLES = int(os.environ.get("CAVA_XFER_EXAMPLES", "25"))

SLOTS = 3
SIZES = (64, 512, 2048)  # straddles a min_bytes of 256: some payloads
                         # are eligible for elision, some never are


@st.composite
def schedules(draw):
    """An interleaving of writes, mutations, evictions and restarts."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, SLOTS - 1)),
            st.tuples(st.just("mutate"), st.integers(0, SLOTS - 1),
                      st.integers(0, 4095)),
            st.tuples(st.just("shed"), st.integers(1, 4096)),
            st.tuples(st.just("restart")),
        ),
        min_size=1, max_size=24,
    ))
    # a tiny store forces real capacity evictions on some schedules
    capacity = draw(st.sampled_from([4096, 1 << 20]))
    return ops, capacity


class _Harness:
    """One guest VM running a schedule against real device buffers."""

    def __init__(self, cache_policy):
        self.hypervisor = make_hypervisor(apis=("opencl",))
        self.vm = self.hypervisor.create_vm("vm-prop",
                                            cache_policy=cache_policy)
        self.arrays = [bytearray(((s + 7 * i) % 256 for s in range(size)))
                       for i, size in enumerate(SIZES)]
        #: slot -> bytes the server must hold (set at send time)
        self.model = {}
        self._open()

    def _open(self):
        self.env = open_env(self.vm.library("opencl"))
        self.buffers = [self.env.buffer(size) for size in SIZES]

    def write(self, slot):
        data = np.frombuffer(bytes(self.arrays[slot]), dtype=np.uint8)
        self.env.write(self.buffers[slot], data)
        # the invariant's right-hand side: guest bytes at send time
        self.model[slot] = bytes(self.arrays[slot])

    def mutate(self, slot, position):
        array = self.arrays[slot]
        array[position % len(array)] = (array[position % len(array)] + 1) % 256

    def shed(self, nbytes):
        store = self.hypervisor.xfer_stores.get(self.vm.vm_id)
        if store is not None:
            store.shed(nbytes)

    def restart(self):
        self.hypervisor._on_worker_lost(self.vm.vm_id, "opencl",
                                        "schedule restart")
        self.hypervisor.restart_worker(self.vm.vm_id, "opencl")
        # handles into the dead worker are gone: rebuild the device
        # state, which re-sends every array (possibly via stale refs
        # that must heal through NeedBytes)
        self.model.clear()
        self._open()
        for slot in range(SLOTS):
            self.write(slot)

    def apply(self, op):
        if op[0] == "write":
            self.write(op[1])
        elif op[0] == "mutate":
            self.mutate(op[1], op[2])
        elif op[0] == "shed":
            self.shed(op[1])
        else:
            self.restart()

    def observed(self):
        """What the server actually holds, slot by slot."""
        return {
            slot: bytes(self.env.read(self.buffers[slot], len(expected),
                                      dtype=np.uint8))
            for slot, expected in sorted(self.model.items())
        }


def run_schedule(ops, cache_policy):
    harness = _Harness(cache_policy)
    for op in ops:
        harness.apply(op)
        # the never-stale invariant must hold at *every* prefix of the
        # schedule, not just at the end
        assert harness.observed() == harness.model
    return harness


class TestNeverStale:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(schedules())
    def test_shared_index_serves_exact_send_time_bytes(self, schedule):
        ops, capacity = schedule
        policy = CachePolicy(min_bytes=256, capacity_bytes=capacity,
                             capacity_entries=4)
        run_schedule(ops, policy)

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(schedules())
    def test_local_index_heals_stale_beliefs(self, schedule):
        """The local-index guest *will* carry wrong beliefs across
        evictions and restarts; every one must surface as a NeedBytes
        retransmission, never as wrong bytes."""
        ops, capacity = schedule
        policy = CachePolicy(min_bytes=256, capacity_bytes=capacity,
                             capacity_entries=4, shared_index=False)
        harness = run_schedule(ops, policy)
        cache = harness.vm.xfer_cache
        # bookkeeping sanity: every retransmission healed a real miss
        metrics = harness.hypervisor.router.metrics_for("vm-prop")
        assert cache.retransmits == metrics.xfer_misses


class TestNeverSlower:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(schedules())
    def test_cached_virtual_time_bounded_by_uncached(self, schedule):
        ops, capacity = schedule
        uncached = run_schedule(ops, None)
        cached = run_schedule(
            ops, CachePolicy(min_bytes=256, capacity_bytes=capacity,
                             capacity_entries=4))
        assert cached.observed() == uncached.observed()
        assert cached.vm.clock.now <= uncached.vm.clock.now
